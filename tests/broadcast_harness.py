"""Shared harness for the AtomicBroadcast conformance and property suites.

Builds an N-node cluster of one consensus kernel — ``zab`` (primary-backup
broadcast), ``raft`` (leader election + log matching) or ``pbft``
(Byzantine three-phase ordering) — over the simulated network, records
every delivery per node, and checks the AtomicBroadcast contract:

* **total order**: each node's delivered stamps strictly increase;
* **prefix agreement**: any two nodes' delivered sequences are prefixes
  of one another (compared as (zxid, payload) pairs, so a payload
  delivered under two different stamps is also a violation);
* **convergence**: after faults heal, all live nodes hold identical
  delivered sequences.

The PBFT kernel rides a thin adapter (:class:`PbftBroadcast`) giving
BftPeer the AtomicBroadcast surface: ``propose`` multicasts a request to
all replicas (the PBFT client model), delivery stamps are minted from
the agreed execution sequence, and a snapshot protocol mirroring the
DepSpace server's state transfer repairs replicas that missed executed
slots (PBFT peers delete executed slots, so a gap can only be healed by
a snapshot).

The harness also hosts :func:`run_random_interleaving` — the seeded
random proposer/crash/partition driver shared by the property suite and
the Raft teeth tests.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.broadcast import NotLeaderError, make_zxid
from repro.depspace.bft import BftConfig, BftPeer, BftRequest, RequestId
from repro.raft import RaftConfig, RaftPeer
from repro.raft.peer import RaftRecord
from repro.sim import Environment, Network
from repro.zk.zab import ZabConfig, ZabPeer

KERNELS = ("zab", "raft", "pbft")


# ---------------------------------------------------------------------------
# PBFT adapter
# ---------------------------------------------------------------------------


@dataclass
class SnapRequest:
    """Recovering replica probes a donor for executed state."""
    exec_seq: int


@dataclass
class SnapResponse:
    exec_seq: int
    view: int
    entries: List[RaftRecord]
    executed_ids: List[RequestId] = field(default_factory=list)


class PbftBroadcast:
    """AtomicBroadcast surface over a BftPeer.

    ``propose`` follows the PBFT client model — the request is multicast
    to all replicas, any of which relays it to the primary — so it works
    from any node and returns 0 (the stamp is minted at delivery, from
    the agreed execution sequence). ``leadership_epoch`` is ``view + 1``:
    views count from 0, epochs from 1, and a view change fences exactly
    like a Zab epoch bump or a Raft term bump.
    """

    def __init__(self, env: Environment, node_id: str,
                 replica_ids: List[str], send, deliver,
                 config: Optional[BftConfig] = None):
        self.env = env
        self.node_id = node_id
        self.replica_ids = list(replica_ids)
        self._send = send
        self._deliver = deliver
        self.peer = BftPeer(env, node_id, replica_ids, send=send,
                            execute=self._execute,
                            config=config
                            or BftConfig(status_interval_ms=200.0))
        self.peer.on_gap = self._on_gap
        #: delivered records in the agreed order (swapped wholesale by a
        #: snapshot install, like the DepSpace server's spaces).
        self.log: List[RaftRecord] = []
        self.committed_zxid = 0
        self.snapshots_installed = 0
        self.violation: Optional[str] = None
        self._seq = 0
        self._state_synced = True
        self._resync_generation = 0

    # -- introspection ---------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self.peer.is_primary

    @property
    def leadership_epoch(self) -> int:
        return self.peer.view + 1

    @property
    def last_zxid(self) -> int:
        return self.log[-1].zxid if self.log else 0

    def sync_barrier(self) -> int:
        return self.committed_zxid

    # -- propose / deliver -----------------------------------------------

    def propose(self, txn, meta=None) -> int:
        self._seq += 1
        request = BftRequest(RequestId(self.node_id, self._seq), (txn, meta))
        for replica in self.replica_ids:
            if replica == self.node_id:
                self.peer.on_request(request)
            else:
                self._send(replica, request)
        return 0

    def _execute(self, request: BftRequest, ts: float) -> None:
        txn, meta = request.op
        # The execution sequence is agreed across replicas, so the stamp
        # is too (unlike the view a slot happened to commit in).
        record = RaftRecord(make_zxid(1, self.peer._exec_seq), txn, meta)
        self.log.append(record)
        self.committed_zxid = record.zxid
        self._deliver(record)

    # -- message plumbing --------------------------------------------------

    def handle(self, src: str, msg: object) -> bool:
        if isinstance(msg, BftRequest):
            self.peer.on_request(msg)
            return True
        if isinstance(msg, SnapRequest):
            self._on_snap_request(src, msg)
            return True
        if isinstance(msg, SnapResponse):
            self._on_snap_response(src, msg)
            return True
        return self.peer.handle(src, msg)

    # -- crash / recovery --------------------------------------------------

    def crash(self) -> None:
        self.peer.crash()

    def recover(self) -> None:
        self.peer.recover()
        # Chase a snapshot unconditionally: we may have missed executed
        # slots, which peers have deleted and will never re-send.
        self._state_synced = True
        self._on_gap(self.peer._exec_seq)

    # -- state transfer (mirrors DsReplica's resync loop) ------------------

    def _on_gap(self, seq: int) -> None:
        if not self._state_synced:
            return  # a resync loop is already chasing a snapshot
        self._state_synced = False
        self._resync_generation += 1
        self.env.process(self._resync_loop(self._resync_generation))

    def _resync_loop(self, generation: int):
        donors = [r for r in self.replica_ids if r != self.node_id]
        i = 0
        while (self.peer._alive and not self._state_synced
               and generation == self._resync_generation):
            self._send(donors[i % len(donors)],
                       SnapRequest(self.peer._exec_seq))
            i += 1
            yield self.env.timeout(100.0)

    def _on_snap_request(self, src: str, msg: SnapRequest) -> None:
        if not self.peer.exec_truthful:
            return  # our own exec_seq overstates applied state
        self._send(src, SnapResponse(self.peer._exec_seq, self.peer.view,
                                     list(self.log),
                                     list(self.peer._executed_ids)))

    def _on_snap_response(self, src: str, msg: SnapResponse) -> None:
        peer = self.peer
        behind = msg.exec_seq < peer._exec_seq
        if behind or (msg.exec_seq == peer._exec_seq and peer.exec_truthful):
            if peer.exec_truthful:
                self._state_synced = True
            return
        # The donor's history must extend ours — a snapshot that rewrites
        # an already-delivered prefix is a safety violation, not a repair.
        mine = [(r.zxid, r.txn) for r in self.log]
        theirs = [(r.zxid, r.txn) for r in msg.entries[:len(mine)]]
        if mine != theirs:
            self.violation = (f"{self.node_id}: snapshot from {src} "
                              f"rewrites the delivered prefix")
        self.log = list(msg.entries)
        self.committed_zxid = self.last_zxid
        peer._exec_seq = msg.exec_seq
        peer._executed_ids = set(msg.executed_ids)
        peer._next_seq = max(peer._next_seq, peer._exec_seq)
        if msg.view > peer.view:
            peer.view = msg.view
            peer._proposed_ids = set()
            peer._next_seq = peer._exec_seq
        for rid in list(peer._pending):
            if rid in peer._executed_ids:
                del peer._pending[rid]
        peer._stall_exec_seq = -1
        peer.exec_truthful = True
        peer._slots = {s: sl for s, sl in peer._slots.items()
                       if s > peer._exec_seq}
        self.snapshots_installed += 1
        self._state_synced = True
        peer._execute_ready()


# ---------------------------------------------------------------------------
# Cluster
# ---------------------------------------------------------------------------


class Endpoint:
    """One node: a kernel instance plus its recorded deliveries."""

    def __init__(self, node_id: str):
        self.node_id = node_id
        self.kernel = None  # set by the cluster right after construction
        self.alive = True
        self._delivered: List[object] = []

    def record(self, record) -> None:
        self._delivered.append(record)

    def delivered_records(self) -> List[object]:
        if isinstance(self.kernel, PbftBroadcast):
            # The adapter's log *is* the delivered sequence; a snapshot
            # install swaps it wholesale (callback appends would
            # misrepresent the post-install history).
            return list(self.kernel.log)
        return list(self._delivered)

    def delivered(self) -> List[tuple]:
        """Delivered (zxid, payload) pairs, barrier no-ops filtered."""
        return [(r.zxid, r.txn) for r in self.delivered_records()
                if r.txn is not None]

    def payloads(self) -> List[object]:
        return [txn for _zxid, txn in self.delivered()]


class BroadcastCluster:
    """An N-node cluster of one kernel over the simulated network."""

    def __init__(self, kernel: str, n: Optional[int] = None, seed: int = 0,
                 raft_peer_cls=RaftPeer,
                 raft_config: Optional[RaftConfig] = None,
                 zab_config: Optional[ZabConfig] = None,
                 bft_config: Optional[BftConfig] = None):
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}")
        if n is None:
            n = 4 if kernel == "pbft" else 3
        self.kernel = kernel
        self.env = Environment()
        self.net = Network(self.env, seed=seed)
        self.node_ids = [f"n{i}" for i in range(n)]
        self.endpoints: Dict[str, Endpoint] = {}
        #: (src, dst, msg) for every message handled; enabled on demand.
        self.msg_log: List[tuple] = []
        self.record_messages = False

        for node_id in self.node_ids:
            endpoint = Endpoint(node_id)
            send = (lambda dst, msg, _src=node_id:
                    self.net.send(_src, dst, msg))
            if kernel == "zab":
                endpoint.kernel = ZabPeer(
                    self.env, node_id, self.node_ids, send=send,
                    deliver=endpoint.record,
                    config=zab_config or ZabConfig())
            elif kernel == "raft":
                endpoint.kernel = raft_peer_cls(
                    self.env, node_id, self.node_ids, send=send,
                    deliver=endpoint.record,
                    config=raft_config or RaftConfig(seed=seed))
            else:
                endpoint.kernel = PbftBroadcast(
                    self.env, node_id, self.node_ids, send=send,
                    deliver=endpoint.record, config=bft_config)
            self.endpoints[node_id] = endpoint
            self.net.register(node_id, self._handler(endpoint))
        if kernel in ("zab", "raft"):
            for endpoint in self.endpoints.values():
                endpoint.kernel.bootstrap(self.node_ids[0])

    def _handler(self, endpoint: Endpoint):
        def handle(src, msg):
            if self.record_messages:
                self.msg_log.append((src, endpoint.node_id, msg))
            endpoint.kernel.handle(src, msg)
        return handle

    # -- driving -----------------------------------------------------------

    def run(self, ms: float) -> None:
        self.env.run(until=self.env.now + ms)

    def alive_endpoints(self) -> List[Endpoint]:
        return [e for e in self.endpoints.values() if e.alive]

    def leader(self) -> Optional[Endpoint]:
        for endpoint in self.alive_endpoints():
            if endpoint.kernel.is_leader:
                return endpoint
        return None

    def await_leader(self, max_ms: float = 30_000.0,
                     step_ms: float = 50.0) -> Optional[Endpoint]:
        deadline = self.env.now + max_ms
        while self.env.now < deadline:
            endpoint = self.leader()
            if endpoint is not None:
                return endpoint
            self.run(step_ms)
        return self.leader()

    def try_propose(self, value, meta=None) -> bool:
        """Propose via the current leader; False if there is none.

        For PBFT the request is multicast from any live replica (the
        client model); leaderless windows still accept proposals, which
        execute once a primary (re-)emerges.
        """
        if self.kernel == "pbft":
            for endpoint in self.alive_endpoints():
                endpoint.kernel.propose(value, meta)
                return True
            return False
        endpoint = self.leader()
        if endpoint is None:
            return False
        try:
            endpoint.kernel.propose(value, meta)
        except NotLeaderError:
            return False
        return True

    # -- faults ------------------------------------------------------------

    def crash(self, node_id: str) -> None:
        self.net.crash(node_id)
        self.endpoints[node_id].kernel.crash()
        self.endpoints[node_id].alive = False

    def recover(self, node_id: str) -> None:
        self.net.recover(node_id)
        self.endpoints[node_id].kernel.recover()
        self.endpoints[node_id].alive = True

    def partition(self, group: List[str]) -> None:
        others = [n for n in self.node_ids if n not in group]
        self.net.partition(group, others)

    def heal(self) -> None:
        self.net.heal()

    # -- contract checks ---------------------------------------------------

    def check_safety(self) -> Optional[str]:
        """Total order + prefix agreement over every node (crashed nodes
        hold a frozen, still-legal prefix). None when clean."""
        sequences = {}
        for endpoint in self.endpoints.values():
            delivered = endpoint.delivered()
            zxids = [z for z, _ in delivered]
            if any(b <= a for a, b in zip(zxids, zxids[1:])):
                return (f"{endpoint.node_id}: delivered stamps not "
                        f"strictly increasing: {zxids}")
            sequences[endpoint.node_id] = delivered
            adapter_violation = getattr(endpoint.kernel, "violation", None)
            if adapter_violation:
                return adapter_violation
        for (a, sa), (b, sb) in itertools.combinations(
                sequences.items(), 2):
            k = min(len(sa), len(sb))
            if sa[:k] != sb[:k]:
                i = next(i for i in range(k) if sa[i] != sb[i])
                return (f"prefix disagreement between {a} and {b} at "
                        f"position {i}: {sa[i]!r} vs {sb[i]!r}")
        return None

    def converged(self) -> bool:
        payload_lists = [e.payloads() for e in self.alive_endpoints()]
        return all(p == payload_lists[0] for p in payload_lists)

    def settle(self, max_ms: float = 20_000.0,
               step_ms: float = 500.0) -> Optional[str]:
        """Run until all live nodes agree (or the deadline passes).

        Returns a violation/divergence description, or None on clean
        convergence."""
        deadline = self.env.now + max_ms
        while self.env.now < deadline:
            self.run(step_ms)
            violation = self.check_safety()
            if violation:
                return violation
            if self.converged():
                return None
        if not self.converged():
            lengths = {e.node_id: len(e.payloads())
                       for e in self.alive_endpoints()}
            return f"no convergence after {max_ms}ms: lengths {lengths}"
        return None


# ---------------------------------------------------------------------------
# Seeded random interleavings
# ---------------------------------------------------------------------------

_ACTIONS = ("propose", "propose", "propose", "crash", "recover",
            "partition", "heal", "settle")


def run_random_interleaving(kernel: str, seed: int, steps: int = 24,
                            n: Optional[int] = None,
                            raft_peer_cls=RaftPeer,
                            raft_config: Optional[RaftConfig] = None,
                            with_delays: bool = False,
                            settle_ms: float = 25_000.0) -> Optional[str]:
    """One seeded random proposer/crash/partition interleaving.

    Returns a violation description (prefix disagreement, stamp
    regression, an internal safety assertion, or failure to converge
    after all faults heal) or None for a clean run. The honest kernels
    must return None for every seed; the teeth mutants must not.

    ``with_delays`` adds transient message-delay windows to the fault
    mix (a slow link, not a dead one): protocol replies from an earlier
    election can then land during a later one — exactly the staleness
    the vote-counting teeth need to be reachable.
    """
    cluster = BroadcastCluster(kernel, n=n, seed=seed,
                               raft_peer_cls=raft_peer_cls,
                               raft_config=raft_config)
    rng = random.Random(f"broadcast-interleaving/{kernel}/{seed}")
    actions = _ACTIONS + (("lag", "unlag") if with_delays else ())
    counter = 0
    down: Optional[str] = None
    cut = False
    lagged = False
    try:
        for _step in range(steps):
            action = rng.choice(actions)
            if action == "propose":
                counter += 1
                cluster.try_propose(f"v{counter}")
            elif action == "crash" and down is None:
                down = rng.choice(cluster.node_ids)
                cluster.crash(down)
            elif action == "recover" and down is not None:
                cluster.recover(down)
                down = None
            elif action == "partition" and not cut:
                cluster.partition([rng.choice(cluster.node_ids)])
                cut = True
            elif action == "heal" and cut:
                cluster.heal()
                cut = False
            elif action == "lag" and not lagged:
                cluster.net.add_delay_rule(
                    extra_ms=rng.uniform(250.0, 900.0),
                    dst=rng.choice(cluster.node_ids))
                lagged = True
            elif action == "unlag" and lagged:
                cluster.net.clear_rules()
                lagged = False
            cluster.run(rng.uniform(80.0, 350.0))
            violation = cluster.check_safety()
            if violation:
                return violation
        cluster.heal()
        cluster.net.clear_rules()
        if down is not None:
            cluster.recover(down)
        # Fresh proposals force lagging replicas to notice and resync.
        for _ in range(2):
            endpoint = cluster.await_leader(8_000.0)
            if endpoint is not None:
                counter += 1
                cluster.try_propose(f"v{counter}")
            cluster.run(400.0)
        return cluster.settle(settle_ms)
    except AssertionError as exc:
        # An internal safety assertion (e.g. truncation below the commit
        # index) is a violation surfacing early, not a harness error.
        return f"internal safety assertion: {exc}"
