"""Unit tests for the simulated network and size estimation."""

import dataclasses

import pytest

from repro.sim import (MESSAGE_HEADER_BYTES, Environment, LatencyModel,
                       Network, estimate_size)


@dataclasses.dataclass
class Ping:
    payload: bytes


def make_net(jitter=0.0, **kwargs):
    env = Environment()
    net = Network(env, latency=LatencyModel(jitter_ms=jitter), **kwargs)
    return env, net


def test_message_delivery_and_latency():
    env, net = make_net()
    inbox = []
    net.register("b", lambda src, msg: inbox.append((env.now, src, msg)))
    net.send("a", "b", Ping(b"x"))
    env.run()
    assert len(inbox) == 1
    when, src, msg = inbox[0]
    assert src == "a"
    assert msg.payload == b"x"
    assert when > 0.0


def test_latency_scales_with_size():
    env, net = make_net()
    times = []
    net.register("b", lambda src, msg: times.append(env.now))
    net.send("a", "b", Ping(b""))
    env.run()
    small = times[-1]

    env2, net2 = make_net()
    times2 = []
    net2.register("b", lambda src, msg: times2.append(env2.now))
    net2.send("a", "b", Ping(b"x" * 100_000))
    env2.run()
    assert times2[-1] > small


def test_bytes_billed_to_sender():
    env, net = make_net()
    net.register("b", lambda src, msg: None)
    billed = net.send("a", "b", Ping(b"abcd"))
    assert billed == net.bytes_sent["a"]
    assert billed >= MESSAGE_HEADER_BYTES + 4
    assert net.msgs_sent["a"] == 1
    env.run()
    assert net.bytes_received["b"] == billed


def test_bytes_billed_even_when_dropped():
    env, net = make_net()
    net.register("b", lambda src, msg: None)
    net.crash("b")
    billed = net.send("a", "b", Ping(b"abcd"))
    assert billed > 0
    env.run()
    assert net.bytes_received["b"] == 0


def test_crashed_node_receives_nothing():
    env, net = make_net()
    inbox = []
    net.register("b", lambda src, msg: inbox.append(msg))
    net.crash("b")
    net.send("a", "b", Ping(b""))
    env.run()
    assert inbox == []
    net.recover("b")
    net.send("a", "b", Ping(b""))
    env.run()
    assert len(inbox) == 1


def test_crash_mid_flight_drops_message():
    env, net = make_net()
    inbox = []
    net.register("b", lambda src, msg: inbox.append(msg))
    net.send("a", "b", Ping(b""))
    net.crash("b")  # message is in flight; receiver crashes before delivery
    env.run()
    assert inbox == []


def test_partition_blocks_both_directions():
    env, net = make_net()
    inbox_a, inbox_b = [], []
    net.register("a", lambda src, msg: inbox_a.append(msg))
    net.register("b", lambda src, msg: inbox_b.append(msg))
    net.partition(["a"], ["b"])
    net.send("a", "b", Ping(b""))
    net.send("b", "a", Ping(b""))
    env.run()
    assert inbox_a == [] and inbox_b == []
    net.heal()
    net.send("a", "b", Ping(b""))
    env.run()
    assert len(inbox_b) == 1


def test_broadcast_bills_sum():
    env, net = make_net()
    for node in ("b", "c", "d"):
        net.register(node, lambda src, msg: None)
    total = net.broadcast("a", ["b", "c", "d"], Ping(b"zz"))
    assert total == net.bytes_sent["a"]
    assert net.msgs_sent["a"] == 3


def test_duplicate_registration_rejected():
    _env, net = make_net()
    net.register("a", lambda src, msg: None)
    with pytest.raises(ValueError):
        net.register("a", lambda src, msg: None)


def test_send_to_unknown_node_is_silent():
    env, net = make_net()
    net.send("a", "ghost", Ping(b""))
    env.run()  # no exception


def test_drop_probability_deterministic_per_seed():
    def count_delivered(seed):
        env = Environment()
        net = Network(env, latency=LatencyModel(jitter_ms=0.0), seed=seed)
        inbox = []
        net.register("b", lambda src, msg: inbox.append(msg))
        net.drop_probability = 0.5
        for _ in range(100):
            net.send("a", "b", Ping(b""))
        env.run()
        return len(inbox)

    first = count_delivered(7)
    assert first == count_delivered(7)
    assert 0 < first < 100


class TestEstimateSize:
    def test_primitives(self):
        assert estimate_size(None) == 1
        assert estimate_size(True) == 1
        assert estimate_size(12345) == 8
        assert estimate_size(1.5) == 8
        assert estimate_size(b"abc") == 7
        assert estimate_size("abc") == 7

    def test_unicode_counts_encoded_bytes(self):
        assert estimate_size("é") == 4 + 2

    def test_containers_sum_elements(self):
        assert estimate_size([1, 2]) == 4 + 16
        assert estimate_size({"k": 1}) == 4 + (4 + 1) + 8

    def test_dataclass_sums_fields(self):
        assert estimate_size(Ping(b"abc")) == 2 + 7

    def test_wire_size_override(self):
        class Sized:
            def wire_size(self):
                return 1000

        assert estimate_size(Sized()) == 1000

    def test_nested(self):
        msg = {"ops": [Ping(b"a"), Ping(b"bb")]}
        assert estimate_size(msg) > 0
