"""Shared helpers for recipe tests — re-exported from the bench package."""

from repro.bench.systems import (EXTENSIBLE, SYSTEMS, make_coords,
                                 make_ensemble, run_all)

__all__ = ["SYSTEMS", "EXTENSIBLE", "make_ensemble", "make_coords", "run_all"]
