"""End-to-end tests for EXTENSIBLE ZOOKEEPER."""

import pytest

from repro.core import ExtensionRejectedError
from repro.ezk import EzkEnsemble
from repro.zk import ZkError

COUNTER_EXT = '''
class CounterIncrement(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/ctr-increment")]

    def handle_operation(self, request, local):
        c = int(local.read("/ctr"))
        local.update("/ctr", str(c + 1).encode())
        return c + 1
'''

QUEUE_EXT = '''
class QueueRemove(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/queue/head")]

    def handle_operation(self, request, local):
        objs = local.sub_objects("/queue")
        if len(objs) == 0:
            return None
        head = objs[0]
        local.delete(head.object_id)
        return head.data
'''

CRASHY_EXT = '''
class Crashy(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/crashy")]

    def handle_operation(self, request, local):
        local.create("/partial-write")
        return 1 // 0
'''

EVENT_EXT = '''
class OnDelete(Extension):
    def event_subscriptions(self):
        return [EventSubscription(("deleted",), "/watched/*")]

    def handle_event(self, event, local):
        name = event.object_id.split("/")[-1]
        local.create("/tombstones/" + name)
'''


@pytest.fixture
def ensemble():
    ens = EzkEnsemble(n_replicas=3, seed=5)
    ens.start()
    return ens


def run(ensemble, *gens):
    procs = [ensemble.env.process(g) for g in gens]
    return [ensemble.env.run(until=p) for p in procs]


def connected(ensemble, **kwargs):
    client = ensemble.client(**kwargs)

    def go():
        yield from client.connect()
        return client

    return run(ensemble, go())[0]


class TestRegistration:
    def test_register_creates_data_object(self, ensemble):
        client = connected(ensemble)

        def scenario():
            path = yield from client.register_extension("ctr", COUNTER_EXT)
            stat = yield from client.exists("/em/ctr")
            return path, stat

        path, stat = run(ensemble, scenario())[0]
        assert path == "/em/ctr"
        assert stat is not None

    def test_registration_reaches_every_replica(self, ensemble):
        client = connected(ensemble)

        def scenario():
            yield from client.register_extension("ctr", COUNTER_EXT)
            yield ensemble.env.timeout(50.0)

        run(ensemble, scenario())
        for binding in ensemble.bindings:
            assert binding.manager.names() == ["ctr"]

    def test_bad_extension_rejected_and_not_registered(self, ensemble):
        client = connected(ensemble)

        def scenario():
            try:
                yield from client.register_extension("bad", "import os\n")
            except ExtensionRejectedError:
                pass
            else:
                return "accepted"
            stat = yield from client.exists("/em/bad")
            return stat

        assert run(ensemble, scenario())[0] is None
        for binding in ensemble.bindings:
            assert binding.manager.names() == []

    def test_deregister_removes_everywhere(self, ensemble):
        client = connected(ensemble)

        def scenario():
            yield from client.register_extension("ctr", COUNTER_EXT)
            yield from client.deregister_extension("ctr")
            yield ensemble.env.timeout(50.0)

        run(ensemble, scenario())
        for binding in ensemble.bindings:
            assert binding.manager.names() == []


class TestOperationExtensions:
    def test_counter_increment_single_rpc(self, ensemble):
        client = connected(ensemble)

        def scenario():
            yield from client.create("/ctr", b"0")
            yield from client.register_extension("ctr-inc", COUNTER_EXT)
            values = []
            for _ in range(5):
                value = yield from client.get_data("/ctr-increment")
                values.append(value)
            actual, _stat = yield from client.get_data("/ctr")
            return values, actual

        values, actual = run(ensemble, scenario())[0]
        assert values == [1, 2, 3, 4, 5]
        assert actual == b"5"

    def test_extension_result_piggybacked(self, ensemble):
        # The reply value is the extension's return value, not node data.
        client = connected(ensemble)

        def scenario():
            yield from client.create("/ctr", b"41")
            yield from client.register_extension("ctr-inc", COUNTER_EXT)
            value = yield from client.get_data("/ctr-increment")
            return value

        assert run(ensemble, scenario())[0] == 42

    def test_unacked_client_gets_plain_read(self, ensemble):
        owner = connected(ensemble)
        stranger = connected(ensemble)

        def scenario():
            yield from owner.create("/ctr", b"0")
            yield from owner.register_extension("ctr-inc", COUNTER_EXT)
            # The stranger's read is NOT intercepted: /ctr-increment does
            # not exist as a node, so it sees NoNode.
            try:
                yield from stranger.get_data("/ctr-increment")
            except ZkError as exc:
                return exc.code

        assert run(ensemble, scenario())[0] == "NO_NODE"

    def test_acknowledge_enables_extension(self, ensemble):
        owner = connected(ensemble)
        friend = connected(ensemble)

        def scenario():
            yield from owner.create("/ctr", b"0")
            yield from owner.register_extension("ctr-inc", COUNTER_EXT)
            yield from friend.acknowledge_extension("ctr-inc")
            value = yield from friend.get_data("/ctr-increment")
            return value

        assert run(ensemble, scenario())[0] == 1

    def test_multi_txn_applies_at_all_replicas(self, ensemble):
        client = connected(ensemble)

        def scenario():
            yield from client.create("/ctr", b"0")
            yield from client.register_extension("ctr-inc", COUNTER_EXT)
            yield from client.get_data("/ctr-increment")
            yield ensemble.env.timeout(50.0)

        run(ensemble, scenario())
        assert ensemble.trees_consistent()
        for server in ensemble.servers:
            assert server.tree.get_data("/ctr")[0] == b"1"

    def test_queue_extension_atomic_remove(self, ensemble):
        client = connected(ensemble)

        def scenario():
            yield from client.create("/queue", b"")
            yield from client.register_extension("q-remove", QUEUE_EXT)
            yield from client.create("/queue/e-", b"first", sequential=True)
            yield from client.create("/queue/e-", b"second", sequential=True)
            head1 = yield from client.get_data("/queue/head")
            head2 = yield from client.get_data("/queue/head")
            head3 = yield from client.get_data("/queue/head")
            return head1, head2, head3

        head1, head2, head3 = run(ensemble, scenario())[0]
        assert head1 == b"first"
        assert head2 == b"second"
        assert head3 is None

    def test_crashing_extension_leaves_no_partial_state(self, ensemble):
        client = connected(ensemble)

        def scenario():
            yield from client.register_extension("crashy", CRASHY_EXT)
            try:
                yield from client.get_data("/crashy")
            except ZkError as exc:
                code = exc.code
            else:
                code = "no-error"
            partial = yield from client.exists("/partial-write")
            return code, partial

        code, partial = run(ensemble, scenario())[0]
        assert code == "EXTENSION_CRASHED"
        assert partial is None


class TestEventExtensions:
    def test_event_extension_runs_on_delete(self, ensemble):
        client = connected(ensemble)

        def scenario():
            yield from client.create("/watched", b"")
            yield from client.create("/tombstones", b"")
            yield from client.create("/watched/a", b"")
            yield from client.register_extension("on-del", EVENT_EXT)
            yield from client.delete("/watched/a")
            yield ensemble.env.timeout(100.0)
            return (yield from client.exists("/tombstones/a"))

        assert run(ensemble, scenario())[0] is not None

    def test_event_extension_state_replicated(self, ensemble):
        client = connected(ensemble)

        def scenario():
            yield from client.create("/watched", b"")
            yield from client.create("/tombstones", b"")
            yield from client.create("/watched/b", b"")
            yield from client.register_extension("on-del", EVENT_EXT)
            yield from client.delete("/watched/b")
            yield ensemble.env.timeout(100.0)

        run(ensemble, scenario())
        for server in ensemble.servers:
            assert server.tree.exists("/tombstones/b") is not None

    def test_notification_suppressed_for_acked_clients(self, ensemble):
        watcher = connected(ensemble)
        events = []
        watcher.watch_callbacks.append(lambda n: events.append(n))

        def scenario():
            yield from watcher.create("/watched", b"")
            yield from watcher.create("/tombstones", b"")
            yield from watcher.create("/watched/c", b"")
            yield from watcher.register_extension("on-del", EVENT_EXT)
            yield from watcher.get_data("/watched/c", watch=True)
            yield from watcher.delete("/watched/c")
            yield ensemble.env.timeout(100.0)

        run(ensemble, scenario())
        # The deletion notification was suppressed by the event extension.
        assert not any(e.event_type == "NODE_DELETED" for e in events)


class TestRecovery:
    def test_extensions_survive_replica_recovery(self, ensemble):
        client = connected(ensemble, replica="ezk0")

        def scenario():
            yield from client.create("/ctr", b"0")
            yield from client.register_extension("ctr-inc", COUNTER_EXT)
            ensemble.server("ezk2").crash()
            yield from client.get_data("/ctr-increment")
            ensemble.server("ezk2").recover()
            yield ensemble.env.timeout(2000.0)

        run(ensemble, scenario())
        assert ensemble.binding("ezk2").manager.names() == ["ctr-inc"]

    def test_extension_usable_after_leader_failover(self, ensemble):
        client = connected(ensemble, replica="ezk1")

        def scenario():
            yield from client.create("/ctr", b"0")
            yield from client.register_extension("ctr-inc", COUNTER_EXT)
            yield from client.get_data("/ctr-increment")
            ensemble.server("ezk0").crash()  # the leader
            yield ensemble.env.timeout(1500.0)
            value = yield from client.get_data("/ctr-increment")
            return value

        assert run(ensemble, scenario())[0] == 2
