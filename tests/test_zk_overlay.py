"""Unit tests for the copy-on-write tree overlay (prep view / EZK proxy)."""

import pytest

from repro.zk import (BadVersionError, DataTree, NodeExistsError, NoNodeError,
                      NotEmptyError, TreeOverlay)
from repro.zk.txn import CreateTxn, DeleteTxn, SetDataTxn


@pytest.fixture
def base():
    tree = DataTree()
    tree.create("/a", b"base")
    tree.create("/a/x")
    tree.create("/q")
    return tree


def test_reads_fall_through(base):
    view = TreeOverlay(base)
    assert view.get_data("/a")[0] == b"base"
    assert view.get_children("/a") == ["x"]
    assert view.exists("/missing") is None
    assert not view.dirty


def test_write_does_not_touch_base(base):
    view = TreeOverlay(base)
    view.set_data("/a", b"new")
    assert view.get_data("/a")[0] == b"new"
    assert base.get_data("/a")[0] == b"base"


def test_create_visible_to_overlay_reads(base):
    view = TreeOverlay(base)
    view.create("/a/y", b"fresh")
    assert view.get_data("/a/y")[0] == b"fresh"
    assert view.get_children("/a") == ["x", "y"]
    assert "/a/y" not in base


def test_delete_hides_node(base):
    view = TreeOverlay(base)
    view.delete("/a/x")
    assert view.exists("/a/x") is None
    assert view.get_children("/a") == []
    assert base.exists("/a/x") is not None


def test_delete_then_recreate(base):
    view = TreeOverlay(base)
    view.delete("/a/x")
    view.create("/a/x", b"again")
    assert view.get_data("/a/x")[0] == b"again"
    assert view.txns == [DeleteTxn("/a/x"), CreateTxn("/a/x", b"again", None)]


def test_txn_recording_order(base):
    view = TreeOverlay(base)
    view.create("/a/y", b"1")
    view.set_data("/a", b"2")
    view.delete("/a/x")
    kinds = [type(txn) for txn in view.txns]
    assert kinds == [CreateTxn, SetDataTxn, DeleteTxn]


def test_version_checks_respect_overlay_writes(base):
    view = TreeOverlay(base)
    view.set_data("/a", b"v1")  # version -> 1
    with pytest.raises(BadVersionError):
        view.set_data("/a", b"v2", version=0)
    view.set_data("/a", b"v2", version=1)


def test_sequential_create_uses_overlay_counter(base):
    view = TreeOverlay(base)
    first = view.create("/q/e-", sequential=True)
    second = view.create("/q/e-", sequential=True)
    assert first.endswith("0000000000")
    assert second.endswith("0000000001")
    # Base counter untouched.
    assert base.create("/q/e-", sequential=True).endswith("0000000000")


def test_create_duplicate_of_base_node_rejected(base):
    view = TreeOverlay(base)
    with pytest.raises(NodeExistsError):
        view.create("/a/x")


def test_delete_with_overlay_children_rejected(base):
    view = TreeOverlay(base)
    view.create("/q/child")
    with pytest.raises(NotEmptyError):
        view.delete("/q")


def test_delete_missing_raises(base):
    view = TreeOverlay(base)
    with pytest.raises(NoNodeError):
        view.delete("/ghost")


def test_create_under_deleted_parent_rejected(base):
    view = TreeOverlay(base)
    view.delete("/a/x")
    view.delete("/a")
    with pytest.raises(NoNodeError):
        view.create("/a/z")


def test_replaying_txns_onto_base_matches_overlay(base):
    """The overlay's txn list, applied to the base, reproduces its view."""
    from repro.zk.server import _apply_txn_to_tree

    view = TreeOverlay(base)
    view.create("/a/y", b"1")
    view.set_data("/a/y", b"2")
    view.delete("/a/x")
    view.create("/q/e-", b"", sequential=True)

    expected_children = view.get_children("/a")
    for txn in view.txns:
        _apply_txn_to_tree(base, txn, zxid=1, now=0.0)
    assert base.get_data("/a/y")[0] == b"2"
    assert base.get_children("/a") == expected_children
    assert base.exists("/q/e-0000000000") is not None


def test_touched_paths(base):
    view = TreeOverlay(base)
    view.set_data("/a", b"z")
    assert "/a" in view.touched_paths()
