"""Shape-level assertions for the paper's headline claims (§6).

These are scaled-down versions of the benchmark sweeps (fewer clients,
shorter windows) so the core claims stay guarded by the fast test
suite; the full figures live under benchmarks/.
"""

import pytest

from repro.bench import (run_counter_workload, run_election_workload,
                         run_queue_workload, run_regular_op_latency)

N = 20           # clients
WINDOW = 200.0   # simulated ms


@pytest.fixture(scope="module")
def counter_results():
    return {
        kind: run_counter_workload(kind, N, warmup_ms=50.0,
                                   measure_ms=WINDOW)
        for kind in ("zk", "ezk", "ds", "eds")
    }


class TestCounterClaims:
    def test_extensions_win_by_an_order_of_magnitude(self, counter_results):
        r = counter_results
        assert r["ezk"].throughput_ops > 8 * r["zk"].throughput_ops
        assert r["eds"].throughput_ops > 8 * r["ds"].throughput_ops

    def test_ezk_outperforms_eds(self, counter_results):
        # §6.1.1: EZK reaches higher counter throughput than EDS.
        assert (counter_results["ezk"].throughput_ops
                > counter_results["eds"].throughput_ops)

    def test_extension_latency_in_low_milliseconds(self, counter_results):
        assert counter_results["ezk"].mean_latency_ms < 5.0
        assert counter_results["eds"].mean_latency_ms < 8.0

    def test_traditional_retry_amplification(self, counter_results):
        # The root cause the paper identifies: tries per success grow
        # with contention.
        assert counter_results["zk"].extra["tries_per_success"] > 3.0
        assert counter_results["ds"].extra["tries_per_success"] > 3.0


class TestQueueClaims:
    @pytest.fixture(scope="class")
    def queue_results(self):
        return {
            kind: run_queue_workload(kind, N, warmup_ms=50.0,
                                     measure_ms=WINDOW)
            for kind in ("zk", "ezk", "ds", "eds")
        }

    def test_factors(self, queue_results):
        r = queue_results
        assert r["ezk"].throughput_ops > 4 * r["zk"].throughput_ops
        assert r["eds"].throughput_ops > 4 * r["ds"].throughput_ops

    def test_bft_clients_send_more_data(self, queue_results):
        # Request multicast to 3f+1 replicas (§6.1.2).
        assert (queue_results["eds"].client_kb_per_op
                > 3 * queue_results["ezk"].client_kb_per_op)

    def test_extension_cost_contention_independent(self, queue_results):
        solo = run_queue_workload("ezk", 1, warmup_ms=50.0,
                                  measure_ms=WINDOW)
        assert (queue_results["ezk"].client_kb_per_op
                < 1.5 * solo.client_kb_per_op)


class TestElectionClaims:
    def test_signaling_latency_lower_with_extensions(self):
        zk = run_election_workload("zk", N, warmup_ms=50.0,
                                   measure_ms=WINDOW)
        ezk = run_election_workload("ezk", N, warmup_ms=50.0,
                                    measure_ms=WINDOW)
        # §6.1.4: the extra confirmation RPC costs the traditional
        # client real signaling latency.
        assert (ezk.extra["signaling_latency_ms"]
                < zk.extra["signaling_latency_ms"])
        assert ezk.throughput_ops > zk.throughput_ops


class TestOverheadClaim:
    def test_regular_clients_unaffected(self):
        base = run_regular_op_latency("zk", measure_ms=WINDOW)
        extensible = run_regular_op_latency("ezk", measure_ms=WINDOW)
        for key in ("regular_read_ms", "regular_write_ms"):
            ratio = extensible.extra[key] / base.extra[key]
            assert 0.95 < ratio < 1.05  # §6.2: negligible (<0.4%)
