"""End-to-end tests: clients against a BFT-replicated DepSpace ensemble."""

import pytest

from repro.depspace import (ANY, AccessControl, AccessDeniedError, DsEnsemble,
                            Policy, Prefix, deny_ops)


@pytest.fixture
def ensemble():
    ens = DsEnsemble(f=1, seed=3)
    ens.start()
    return ens


def run(ensemble, *generators):
    procs = [ensemble.env.process(gen) for gen in generators]
    results = []
    for proc in procs:
        results.append(ensemble.env.run(until=proc))
    return results


class TestBasicOps:
    def test_out_and_rdp(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.out("config", b"value")
            return (yield from client.rdp("config", ANY))

        assert run(ensemble, scenario())[0] == ("config", b"value")

    def test_rdp_none_when_empty(self, ensemble):
        client = ensemble.client()

        def scenario():
            return (yield from client.rdp("ghost", ANY))

        assert run(ensemble, scenario())[0] is None

    def test_inp_takes(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.out("job", 1)
            first = yield from client.inp("job", ANY)
            second = yield from client.inp("job", ANY)
            return first, second

        first, second = run(ensemble, scenario())[0]
        assert first == ("job", 1)
        assert second is None

    def test_cas_semantics(self, ensemble):
        client = ensemble.client()

        def scenario():
            created = yield from client.cas(("ctr", ANY), ("ctr", 0))
            duplicate = yield from client.cas(("ctr", ANY), ("ctr", 9))
            return created, duplicate

        created, duplicate = run(ensemble, scenario())[0]
        assert created is True
        assert duplicate is False

    def test_replace_atomic(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.out("ctr", 10)
            old = yield from client.replace(("ctr", ANY), ("ctr", 11))
            now = yield from client.rdp("ctr", ANY)
            return old, now

        old, now = run(ensemble, scenario())[0]
        assert old == ("ctr", 10)
        assert now == ("ctr", 11)

    def test_rdall_with_prefix(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.out("/q/a", b"1")
            yield from client.out("/q/b", b"2")
            yield from client.out("/other", b"3")
            return (yield from client.rdall(Prefix("/q/"), ANY))

        result = run(ensemble, scenario())[0]
        assert result == [("/q/a", b"1"), ("/q/b", b"2")]

    def test_named_spaces_are_isolated(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.out("k", 1, space="alpha")
            in_alpha = yield from client.rdp("k", ANY, space="alpha")
            in_main = yield from client.rdp("k", ANY)
            return in_alpha, in_main

        in_alpha, in_main = run(ensemble, scenario())[0]
        assert in_alpha == ("k", 1)
        assert in_main is None


class TestBlocking:
    def test_rd_blocks_until_out(self, ensemble):
        reader = ensemble.client()
        writer = ensemble.client()
        log = []

        def blocked():
            log.append(("waiting", ensemble.env.now))
            value = yield from reader.rd("gate", ANY)
            log.append(("woke", ensemble.env.now))
            return value

        def opener():
            yield ensemble.env.timeout(80.0)
            yield from writer.out("gate", b"open")

        value = run(ensemble, blocked(), opener())[0]
        assert value == ("gate", b"open")
        assert log[1][1] >= 80.0

    def test_in_blocks_and_takes_once(self, ensemble):
        taker1 = ensemble.client()
        taker2 = ensemble.client()
        writer = ensemble.client()
        got = []

        def taker(client):
            value = yield from client.in_("item", ANY)
            got.append(value)

        def producer():
            yield ensemble.env.timeout(50.0)
            yield from writer.out("item", 1)
            yield ensemble.env.timeout(50.0)
            yield from writer.out("item", 2)

        run(ensemble, taker(taker1), taker(taker2), producer())
        assert sorted(got) == [("item", 1), ("item", 2)]

    def test_rd_returns_immediately_when_present(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.out("here", b"")
            before = ensemble.env.now
            yield from client.rd("here", ANY)
            return ensemble.env.now - before

        assert run(ensemble, scenario())[0] < 10.0


class TestReplication:
    def test_replicas_converge(self, ensemble):
        client = ensemble.client()

        def scenario():
            for i in range(15):
                yield from client.out("item", i)
            yield from client.inp("item", 0)
            yield from client.replace(("item", 1), ("item", 100))
            yield ensemble.env.timeout(100.0)

        run(ensemble, scenario())
        assert ensemble.spaces_consistent()

    def test_byzantine_reply_is_masked(self, ensemble):
        ensemble.replica("ds3").byzantine = True
        client = ensemble.client()

        def scenario():
            yield from client.out("truth", 42)
            return (yield from client.rdp("truth", ANY))

        assert run(ensemble, scenario())[0] == ("truth", 42)

    def test_one_crashed_replica_tolerated(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.out("pre", 1)
            ensemble.replica("ds2").crash()
            yield from client.out("post", 2)
            return (yield from client.rdp("post", ANY))

        assert run(ensemble, scenario())[0] == ("post", 2)

    def test_primary_crash_triggers_view_change(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.out("pre", 1)
            ensemble.replica("ds0").crash()  # view-0 primary
            value = yield from client.out("post", 2)
            return value

        assert run(ensemble, scenario())[0] is True
        live_views = {r.bft.view for r in ensemble.replicas if r._alive}
        assert max(live_views) >= 1

    def test_recovered_replica_catches_up(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.out("a", 1)
            ensemble.replica("ds2").crash()
            for i in range(5):
                yield from client.out("while-down", i)
            ensemble.replica("ds2").recover()
            yield ensemble.env.timeout(2000.0)
            yield from client.out("after", 9)
            yield ensemble.env.timeout(500.0)

        run(ensemble, scenario())
        recovered = ensemble.replica("ds2")
        assert recovered.space().rdp(("after", ANY)) is not None


class TestLeasesEndToEnd:
    def test_lease_expires_when_client_dies(self, ensemble):
        owner = ensemble.client()
        observer = ensemble.client()

        def scenario():
            yield from owner.out("/clients/owner", b"", lease_ms=500.0)
            owner.kill()
            yield ensemble.env.timeout(2000.0)
            # Another request forces the deterministic purge.
            return (yield from observer.rdp("/clients/owner", ANY))

        assert run(ensemble, scenario())[0] is None

    def test_lease_renewed_while_alive(self, ensemble):
        owner = ensemble.client()
        observer = ensemble.client()

        def scenario():
            yield from owner.out("/clients/owner", b"", lease_ms=500.0)
            yield ensemble.env.timeout(3000.0)  # renewals keep it alive
            return (yield from observer.rdp("/clients/owner", ANY))

        assert run(ensemble, scenario())[0] is not None


class TestLayers:
    def test_policy_enforced_at_all_replicas(self, ensemble):
        for replica in ensemble.replicas:
            replica.set_policy("main", Policy([deny_ops("inp")]))
        client = ensemble.client()

        def scenario():
            yield from client.out("x", 1)
            try:
                yield from client.inp("x", ANY)
            except Exception as exc:
                return type(exc).__name__
            return "allowed"

        assert run(ensemble, scenario())[0] == "PolicyViolationError"

    def test_acl_enforced(self, ensemble):
        for replica in ensemble.replicas:
            replica.set_acl("main", AccessControl(writers={"vip"}))
        client = ensemble.client()

        def scenario():
            try:
                yield from client.out("x", 1)
            except AccessDeniedError:
                return "denied"
            return "allowed"

        assert run(ensemble, scenario())[0] == "denied"

    def test_client_sends_to_all_replicas(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.out("x", 1)

        run(ensemble, scenario())
        # One logical request -> n messages billed to the client.
        assert ensemble.net.msgs_sent[client.node_id] >= 4
