"""Unit tests for ZooKeeper-side components: watches, sessions, resources."""

import pytest

from repro.sim import Environment, FifoResource
from repro.zk.sessions import HeartbeatTracker, SessionTable
from repro.zk.watches import EventType, WatchManager


class TestWatchManager:
    def test_data_watch_fires_once(self):
        manager = WatchManager()
        manager.add_data_watch("/a", session_id=1)
        fired = manager.trigger("/a", EventType.NODE_DATA_CHANGED)
        assert [(sid, e.path) for sid, e in fired] == [(1, "/a")]
        assert manager.trigger("/a", EventType.NODE_DATA_CHANGED) == []

    def test_multiple_watchers_all_notified_sorted(self):
        manager = WatchManager()
        for sid in (3, 1, 2):
            manager.add_data_watch("/a", sid)
        fired = manager.trigger("/a", EventType.NODE_DELETED)
        assert [sid for sid, _e in fired] == [1, 2, 3]

    def test_child_watch_independent_of_data_watch(self):
        manager = WatchManager()
        manager.add_data_watch("/a", 1)
        manager.add_child_watch("/a", 2)
        assert manager.trigger_children("/a")[0][0] == 2
        assert manager.trigger("/a", EventType.NODE_CREATED)[0][0] == 1

    def test_remove_session_drops_watches(self):
        manager = WatchManager()
        manager.add_data_watch("/a", 1)
        manager.add_child_watch("/b", 1)
        manager.add_data_watch("/a", 2)
        manager.remove_session(1)
        assert manager.data_watchers("/a") == {2}
        assert manager.child_watchers("/b") == set()

    def test_trigger_unwatched_path_is_empty(self):
        assert WatchManager().trigger("/x", EventType.NODE_CREATED) == []


class TestSessionTable:
    def test_create_close(self):
        table = SessionTable()
        table.create(7, 1000.0, "client-a")
        assert 7 in table
        closed = table.close(7)
        assert closed.closed
        assert 7 not in table

    def test_close_unknown_returns_none(self):
        assert SessionTable().close(99) is None

    def test_snapshot_restore(self):
        table = SessionTable()
        table.create(1, 500.0, "a")
        table.create(2, 800.0, "b")
        clone = SessionTable()
        clone.restore(table.snapshot())
        assert clone.ids() == [1, 2]
        assert clone.get(2).timeout_ms == 800.0


class TestHeartbeatTracker:
    def test_expiry_after_silence(self):
        tracker = HeartbeatTracker()
        tracker.track(1, timeout_ms=100.0, now=0.0)
        assert tracker.expired(now=50.0) == []
        assert tracker.expired(now=101.0) == [1]

    def test_touch_defers_expiry(self):
        tracker = HeartbeatTracker()
        tracker.track(1, timeout_ms=100.0, now=0.0)
        tracker.touch(1, now=90.0)
        assert tracker.expired(now=150.0) == []
        assert tracker.expired(now=191.0) == [1]

    def test_touch_untracked_is_noop(self):
        tracker = HeartbeatTracker()
        tracker.touch(9, now=1.0)
        assert tracker.expired(now=1000.0) == []

    def test_forget(self):
        tracker = HeartbeatTracker()
        tracker.track(1, timeout_ms=10.0, now=0.0)
        tracker.forget(1)
        assert tracker.expired(now=1000.0) == []


class TestFifoResource:
    def test_serial_execution(self):
        env = Environment()
        cpu = FifoResource(env)
        finished = []
        for i, cost in enumerate((5.0, 3.0, 2.0)):
            cpu.submit(cost).add_callback(
                lambda _e, i=i: finished.append((i, env.now)))
        env.run()
        assert finished == [(0, 5.0), (1, 8.0), (2, 10.0)]

    def test_busy_accounting(self):
        env = Environment()
        cpu = FifoResource(env)
        cpu.submit(4.0)
        cpu.submit(6.0)
        env.run()
        assert cpu.busy_ms == 10.0
        assert cpu.items_served == 2
        assert cpu.utilization(20.0) == 0.5
        assert cpu.utilization(5.0) == 1.0  # clamped

    def test_queue_length(self):
        env = Environment()
        cpu = FifoResource(env)
        cpu.submit(5.0)
        cpu.submit(5.0)
        assert cpu.queue_length == 2
        env.run()
        assert cpu.queue_length == 0

    def test_negative_cost_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            FifoResource(env).submit(-1.0)

    def test_value_passthrough(self):
        env = Environment()
        cpu = FifoResource(env)
        seen = []
        cpu.submit(1.0, value="payload").add_callback(
            lambda e: seen.append(e.value))
        env.run()
        assert seen == ["payload"]


class TestStats:
    def test_latency_percentiles(self):
        from repro.sim import LatencyRecorder
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(now=10.0, latency_ms=float(value))
        assert recorder.mean == pytest.approx(50.5)
        assert recorder.median == 50.0
        assert recorder.p99 == 99.0
        assert recorder.percentile(100.0) == 100.0

    def test_warmup_discards(self):
        from repro.sim import LatencyRecorder
        recorder = LatencyRecorder(warmup_until=100.0)
        recorder.record(now=50.0, latency_ms=999.0)
        recorder.record(now=150.0, latency_ms=1.0)
        assert recorder.count == 1
        assert recorder.mean == 1.0

    def test_empty_recorder_is_nan(self):
        import math
        from repro.sim import LatencyRecorder
        recorder = LatencyRecorder()
        assert math.isnan(recorder.mean)
        assert math.isnan(recorder.p99)

    def test_interval_throughput_window(self):
        from repro.sim import IntervalThroughput
        window = IntervalThroughput(100.0, 600.0)
        window.record(now=50.0)     # before: ignored
        window.record(now=100.0)    # inclusive start
        window.record(now=599.9)
        window.record(now=600.0)    # exclusive end: ignored
        assert window.completed == 2
        assert window.ops_per_second == pytest.approx(4.0)

    def test_bad_window_rejected(self):
        from repro.sim import IntervalThroughput
        with pytest.raises(ValueError):
            IntervalThroughput(5.0, 5.0)
