"""Cross-kernel determinism: calendar-queue and heap kernels must deliver
identically ordered event streams.

The calendar queue (repro.sim._calqueue) is a performance replacement for
the heapq kernel, not a semantic one: replay lines from the chaos
explorer and the committed figure JSONs must not depend on which kernel
ran them. These tests pin that equivalence at three levels — a synthetic
event soup engineered to hit bucket boundaries, a full protocol workload,
and the wallclock driver.
"""

from __future__ import annotations

import random

import pytest

from repro.sim import Environment, Interrupted
from repro.sim._calqueue import DEFAULT_BUCKET_MS

KERNELS = ("heap", "calendar")


def _soup_trace(kernel: str, seed: int, n_procs: int = 40,
                horizon: float = 400.0) -> list:
    """Run a randomized process soup and record every wakeup.

    Delays are drawn to stress the calendar queue's corner cases:
    zero-delay wakeups (the imm deque), exact bucket-width multiples
    (floating-point bucket boundaries), sub-bucket jitter (intra-bucket
    ordering), and far-future timers (cold buckets), plus events
    succeeded from other processes and interrupts.
    """
    env = Environment(kernel=kernel)
    rng = random.Random(seed)
    trace = []
    gates = [env.event() for _ in range(n_procs)]

    def proc(env, me):
        my_rng = random.Random(seed * 1000 + me)
        for step in range(30):
            roll = my_rng.random()
            if roll < 0.15:
                delay = 0.0
            elif roll < 0.35:
                delay = my_rng.randrange(1, 40) * DEFAULT_BUCKET_MS
            elif roll < 0.8:
                delay = my_rng.random() * 2.0
            elif roll < 0.95:
                delay = 50.0 + my_rng.random() * 100.0
            else:
                delay = 3000.0
            try:
                yield env.timeout(delay)
            except Interrupted:
                trace.append(("intr", me, step, env.now))
                continue
            trace.append(("wake", me, step, env.now))
            if my_rng.random() < 0.1:
                gate = gates[my_rng.randrange(n_procs)]
                if not gate.triggered:
                    gate.succeed((me, step))

    def watcher(env, me):
        try:
            value = yield gates[me]
            trace.append(("gate", me, value, env.now))
        except Interrupted:
            trace.append(("gate-intr", me, env.now))

    procs = [env.process(proc(env, i)) for i in range(n_procs)]
    for i in range(n_procs):
        env.process(watcher(env, i))

    def chaos_monkey(env):
        while True:
            yield env.timeout(7.0 + rng.random() * 11.0)
            victim = procs[rng.randrange(n_procs)]
            if victim.is_alive:
                victim.interrupt("poke")

    env.process(chaos_monkey(env))
    env.run(until=horizon)
    trace.append(("events", env.events_processed))
    return trace


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_event_soup_streams_identical(seed):
    assert _soup_trace("heap", seed) == _soup_trace("calendar", seed)


def test_soup_with_step_and_peek_identical():
    """Single-stepping interleaved with run() must also agree."""
    def stepped(kernel):
        env = Environment(kernel=kernel)
        log = []

        def ticker(env, period, tag):
            while True:
                yield env.timeout(period)
                log.append((tag, env.now))

        env.process(ticker(env, 0.05, "a"))    # exactly one bucket width
        env.process(ticker(env, 0.07, "b"))
        env.process(ticker(env, 1.0, "c"))
        for _ in range(200):
            log.append(("peek", env.peek()))
            env.step()
        env.run(until=30.0)
        log.append(("done", env.now, env.events_processed))
        return log

    assert stepped("heap") == stepped("calendar")


@pytest.mark.parametrize("system", ["zk", "ezk"])
def test_protocol_workload_identical_across_kernels(system, monkeypatch):
    """A full ensemble workload produces the same result on both kernels."""
    from repro.bench.workload import run_queue_workload

    results = {}
    for kernel in KERNELS:
        monkeypatch.setenv("REPRO_SIM_KERNEL", kernel)
        results[kernel] = run_queue_workload(
            system, n_clients=8, warmup_ms=50.0, measure_ms=300.0)
    heap, cal = results["heap"], results["calendar"]
    assert heap == cal


@pytest.mark.parametrize("kernel", KERNELS)
def test_environment_kernel_override_beats_env_var(kernel, monkeypatch):
    other = "calendar" if kernel == "heap" else "heap"
    monkeypatch.setenv("REPRO_SIM_KERNEL", other)
    env = Environment(kernel=kernel)
    assert env.kernel == kernel


def test_unknown_kernel_rejected(monkeypatch):
    with pytest.raises(ValueError):
        Environment(kernel="btree")
    monkeypatch.setenv("REPRO_SIM_KERNEL", "btree")
    with pytest.raises(ValueError):
        Environment()
