"""Chaos checker tests: unit histories plus a live end-to-end "teeth" test.

The unit tests feed hand-built histories to each checker and assert
that genuine violations are flagged while in-doubt operations widen
the allowed envelope instead of producing false alarms.

The teeth test seeds a real consistency bug — a follower that serves
reads without the session-consistency zxid parking — into a running
ensemble and shows the counter checker catches the stale read, with a
control run proving the unbroken server passes the same workload.
"""

from __future__ import annotations

import pytest

from repro.bench.systems import make_chaos_ensemble
from repro.chaos import (CounterModel, History, OpRecord, RecordingCoord,
                         RegisterModel, check_barrier_history,
                         check_counter_history, check_election_history,
                         check_linearizable, check_queue_history)
from repro.recipes import ZkCoordClient
from repro.recipes.counter import TraditionalSharedCounter
from repro.zk.server import ZkServer


def op(proc, name, arg=None, status="ok", result=None, t0=0.0, t1=1.0,
       key=""):
    return OpRecord(proc, name, key, arg, status, result, t0, t1)


# ---------------------------------------------------------------------------
# counter invariants
# ---------------------------------------------------------------------------


def test_counter_accepts_clean_history():
    ops = [op("c0", "inc", result=1), op("c1", "inc", result=2),
           op("c0", "final-read", result=2)]
    assert check_counter_history(ops).ok


def test_counter_flags_duplicate_results():
    ops = [op("c0", "inc", result=1), op("c1", "inc", result=1),
           op("c0", "final-read", result=2)]
    verdict = check_counter_history(ops)
    assert not verdict.ok and "duplicate" in verdict.reason


def test_counter_flags_lost_increment():
    ops = [op("c0", "inc", result=1), op("c1", "inc", result=2),
           op("c0", "final-read", result=1)]
    verdict = check_counter_history(ops)
    assert not verdict.ok


def test_counter_in_doubt_widens_envelope():
    # One inc's reply was lost: final may be 1 or 2, never 3.
    base = [op("c0", "inc", result=1),
            op("c1", "inc", status="fail", result=None)]
    assert check_counter_history(base + [op("c0", "final-read",
                                            result=1)]).ok
    assert check_counter_history(base + [op("c0", "final-read",
                                            result=2)]).ok
    assert not check_counter_history(base + [op("c0", "final-read",
                                                result=3)]).ok


# ---------------------------------------------------------------------------
# queue invariants
# ---------------------------------------------------------------------------


def test_queue_accepts_clean_history():
    ops = [op("c0", "add", arg=b"a"), op("c1", "add", arg=b"b"),
           op("c0", "remove", result=b"a"),
           op("c1", "drain-remove", result=b"b")]
    assert check_queue_history(ops).ok


def test_queue_flags_double_dequeue():
    ops = [op("c0", "add", arg=b"a"),
           op("c0", "remove", result=b"a"),
           op("c1", "remove", result=b"a")]
    verdict = check_queue_history(ops)
    assert not verdict.ok and "more times" in verdict.reason


def test_queue_in_doubt_add_excuses_double_dequeue():
    # The first add attempt timed out but landed anyway; its retry
    # enqueued a second copy — dequeuing both is legitimate, a third
    # dequeue is not.
    ops = [op("c0", "add", arg=b"a", status="fail"),
           op("c0", "add", arg=b"a"),
           op("c1", "remove", result=b"a"),
           op("c2", "remove", result=b"a")]
    assert check_queue_history(ops).ok
    ops.append(op("c0", "drain-remove", result=b"a"))
    assert not check_queue_history(ops).ok


def test_queue_flags_invented_element():
    ops = [op("c0", "add", arg=b"a"), op("c0", "remove", result=b"ghost")]
    verdict = check_queue_history(ops)
    assert not verdict.ok and "never added" in verdict.reason


def test_queue_flags_lost_element():
    ops = [op("c0", "add", arg=b"a"), op("c1", "add", arg=b"b"),
           op("c0", "drain-remove", result=b"a")]
    verdict = check_queue_history(ops)
    assert not verdict.ok and "lost" in verdict.reason


def test_queue_in_doubt_remove_excuses_missing_element():
    # The remove that consumed b"b" never got its reply back.
    ops = [op("c0", "add", arg=b"a"), op("c1", "add", arg=b"b"),
           op("c0", "remove", result=b"a"),
           op("c1", "remove", status="fail", result=None)]
    assert check_queue_history(ops).ok


# ---------------------------------------------------------------------------
# barrier / election invariants
# ---------------------------------------------------------------------------


def test_barrier_accepts_gated_round():
    ops = [op("c0", "enter", key="0", t0=0.0, t1=5.0),
           op("c1", "enter", key="0", t0=1.0, t1=5.1),
           op("c2", "enter", key="0", t0=2.0, t1=5.2)]
    assert check_barrier_history(ops, threshold=3).ok


def test_barrier_flags_early_release():
    # c0 passed at t=1.5, before the third arrival at t=2.0.
    ops = [op("c0", "enter", key="0", t0=0.0, t1=1.5),
           op("c1", "enter", key="0", t0=1.0, t1=5.1),
           op("c2", "enter", key="0", t0=2.0, t1=5.2)]
    verdict = check_barrier_history(ops, threshold=3)
    assert not verdict.ok and "before" in verdict.reason


def test_election_accepts_sequential_reigns():
    ops = [op("c0", "lead", t0=0.0, t1=1.0),
           op("c0", "abdicate", t0=5.0, t1=6.0),
           op("c1", "lead", t0=5.5, t1=7.0),
           op("c1", "abdicate", t0=9.0, t1=9.5)]
    assert check_election_history(ops).ok


def test_election_flags_overlapping_reigns():
    ops = [op("c0", "lead", t0=0.0, t1=1.0),
           op("c1", "lead", t0=2.0, t1=3.0),
           op("c0", "abdicate", t0=5.0, t1=6.0),
           op("c1", "abdicate", t0=7.0, t1=8.0)]
    verdict = check_election_history(ops)
    assert not verdict.ok and "overlap" in verdict.reason


# ---------------------------------------------------------------------------
# Wing & Gong linearizability
# ---------------------------------------------------------------------------


def test_linearizable_register_accepts_concurrent_overlap():
    # The read overlaps the write, so either result is linearizable.
    ops = [op("c0", "write", arg=1, t0=0.0, t1=10.0),
           op("c1", "read", result=1, t0=5.0, t1=6.0)]
    assert check_linearizable(ops, RegisterModel()).ok


def test_linearizable_register_rejects_stale_read():
    # The write returned before the read was invoked: no legal order.
    ops = [op("c0", "write", arg=1, t0=0.0, t1=1.0),
           op("c1", "read", result=None, t0=2.0, t1=3.0)]
    verdict = check_linearizable(ops, RegisterModel())
    assert not verdict.ok


def test_linearizable_counter_places_or_drops_in_doubt():
    # The failed inc may or may not have landed: both reads are legal.
    ops = [op("c0", "inc", result=1, t0=0.0, t1=1.0),
           op("c1", "inc", status="fail", t0=0.5, t1=2.0),
           op("c0", "read", result=2, t0=3.0, t1=4.0)]
    assert check_linearizable(ops, CounterModel()).ok
    ops[-1] = op("c0", "read", result=1, t0=3.0, t1=4.0)
    assert check_linearizable(ops, CounterModel()).ok
    ops[-1] = op("c0", "read", result=3, t0=3.0, t1=4.0)
    assert not check_linearizable(ops, CounterModel()).ok


# ---------------------------------------------------------------------------
# teeth: the checker catches a seeded server bug end-to-end
# ---------------------------------------------------------------------------


def _counter_run_with_lagging_follower(skip_parking: bool) -> object:
    """Increment on one client, lag another client's follower, read.

    With the session-consistency read parking intact the final read
    parks until the follower applies the synced zxid; with parking
    skipped the follower serves its stale state and the checker must
    flag the run.
    """
    ensemble, raw = make_chaos_ensemble("zk", seed=5)
    env = ensemble.env
    history = History()
    coords = [RecordingCoord(ZkCoordClient(c), history, f"c{i}", env)
              for i, c in enumerate(raw)]
    counter0 = TraditionalSharedCounter(coords[0])
    counter1 = TraditionalSharedCounter(coords[1])

    if skip_parking:
        def broken_read(self, meta, op_, last_zxid=0, wants_lease=False):
            self.local_sessions[meta.session_id] = meta.client_node
            self._submit_read(meta, op_)
        original = ZkServer._handle_read
        ZkServer._handle_read = broken_read
    try:
        def writer():
            yield from counter0.setup()
            for _ in range(4):
                yield from coords[0].mark("inc", "/ctr", None,
                                          counter0.increment())
                yield env.timeout(20.0)
            # Lag replication to c1's follower, then land one more
            # increment the follower will not have applied yet.
            ensemble.net.add_delay_rule(
                1500.0, msg_types=("Proposal", "BatchProposal", "Commit"),
                dst=frozenset({raw[1].replica}))
            yield from coords[0].mark("inc", "/ctr", None,
                                      counter0.increment())

        proc = env.process(writer())
        env.run(until=proc)

        def reader():
            yield from raw[1].sync()
            yield from coords[1].mark("final-read", "/ctr", None,
                                      counter1.read())

        proc = env.process(reader())
        env.run(until=proc)
    finally:
        if skip_parking:
            ZkServer._handle_read = original
    return check_counter_history(history.ops())


def test_checker_catches_skipped_read_parking():
    verdict = _counter_run_with_lagging_follower(skip_parking=True)
    assert not verdict.ok, \
        "checker failed to flag a follower serving stale reads"


@pytest.mark.parametrize("skip", [False])
def test_checker_control_run_passes(skip):
    verdict = _counter_run_with_lagging_follower(skip_parking=skip)
    assert verdict.ok, verdict.reason
