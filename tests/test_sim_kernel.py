"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Environment, Infeasible, Interrupted


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc(env):
        yield env.timeout(5.0)
        done.append(env.now)
        yield env.timeout(2.5)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [5.0, 7.5]


def test_timeout_carries_value():
    env = Environment()

    def proc(env):
        value = yield env.timeout(1.0, value="hello")
        return value

    p = env.process(proc(env))
    assert env.run(until=p) == "hello"


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    woke = []

    def waiter(env):
        value = yield gate
        woke.append((env.now, value))

    def opener(env):
        yield env.timeout(3.0)
        gate.succeed(42)

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert woke == [(3.0, 42)]


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def waiter(env):
        try:
            yield gate
        except RuntimeError as exc:
            return str(exc)

    def failer(env):
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    p = env.process(waiter(env))
    env.process(failer(env))
    assert env.run(until=p) == "boom"


def test_event_cannot_trigger_twice():
    env = Environment()
    gate = env.event()
    gate.succeed(1)
    with pytest.raises(RuntimeError):
        gate.succeed(2)
    with pytest.raises(RuntimeError):
        gate.fail(RuntimeError())


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_process_return_value_propagates():
    env = Environment()

    def inner(env):
        yield env.timeout(1.0)
        return 7

    def outer(env):
        result = yield env.process(inner(env))
        return result * 2

    p = env.process(outer(env))
    assert env.run(until=p) == 14


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def inner(env):
        yield env.timeout(1.0)
        raise ValueError("inner died")

    def outer(env):
        try:
            yield env.process(inner(env))
        except ValueError as exc:
            return f"caught {exc}"

    p = env.process(outer(env))
    assert env.run(until=p) == "caught inner died"


def test_unwaited_process_exception_raised_by_run():
    env = Environment()

    def doomed(env):
        yield env.timeout(1.0)
        raise ValueError("unhandled")

    p = env.process(doomed(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run(until=p)


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad(env):
        yield 5

    p = env.process(bad(env))
    with pytest.raises(TypeError):
        env.run(until=p)


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupted as interruption:
            log.append((env.now, interruption.cause))

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(2.0, "wake up")]


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    ticks = []

    def ticker(env):
        while True:
            yield env.timeout(1.0)
            ticks.append(env.now)

    env.process(ticker(env))
    env.run(until=4.5)
    assert env.now == 4.5
    assert ticks == [1.0, 2.0, 3.0, 4.0]


def test_run_backwards_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_queue_drained_raises():
    env = Environment()
    never = env.event()
    with pytest.raises(Infeasible):
        env.run(until=never)


def test_fifo_order_for_simultaneous_events():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_any_of_returns_first():
    env = Environment()

    def proc(env):
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(5.0, value="slow")
        result = yield env.any_of([fast, slow])
        return list(result.values())

    p = env.process(proc(env))
    assert env.run(until=p) == ["fast"]
    assert env.now == 1.0


def test_all_of_waits_for_everything():
    env = Environment()

    def proc(env):
        a = env.timeout(1.0, value="a")
        b = env.timeout(5.0, value="b")
        result = yield env.all_of([a, b])
        return sorted(result.values())

    p = env.process(proc(env))
    assert env.run(until=p) == ["a", "b"]
    assert env.now == 5.0


def test_all_of_empty_is_immediate():
    env = Environment()

    def proc(env):
        result = yield env.all_of([])
        return result

    p = env.process(proc(env))
    assert env.run(until=p) == {}


def test_step_and_peek():
    env = Environment()
    env.timeout(2.0)
    assert env.peek() == 2.0
    env.step()
    assert env.now == 2.0
    assert env.peek() is None
    with pytest.raises(Infeasible):
        env.step()


def test_yield_already_processed_event():
    env = Environment()
    gate = env.event()
    gate.succeed("early")
    env.run()  # process the gate before anyone waits

    def late(env):
        value = yield gate
        return value

    p = env.process(late(env))
    assert env.run(until=p) == "early"
