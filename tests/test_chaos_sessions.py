"""Session storms: smoke cells, the log checker's teeth, schedules.

The two smoke cells run in tier-1 (one seed each); the 25-seed × 4-cell
matrix joins the nightly explorer behind ``CHAOS_FULL=1``.
"""

from __future__ import annotations

import os

import pytest

from repro.chaos import (SESSION_SCENARIOS, check_lease_reads,
                         check_session_log, random_schedule,
                         random_storm_schedule, run_session_chaos)
from repro.chaos.schedule import STORM_KINDS
from repro.zk.txn import (CloseSessionTxn, CreateSessionTxn, CreateTxn,
                          ErrorTxn, MultiTxn, RequestMeta, SetDataTxn,
                          TxnRecord)

SMOKE_SEED = 3
SMOKE_CELLS = [("zk", "churn"), ("ezk", "watch_storm"),
               ("zk", "lease_storm")]


@pytest.mark.parametrize("system,scenario", SMOKE_CELLS)
def test_session_storm_smoke_cell(system, scenario):
    run = run_session_chaos(system, scenario, SMOKE_SEED)
    assert run.ok, (
        f"{system}/{scenario} seed {SMOKE_SEED}: {run.result.reason}\n"
        f"replay: {run.repro}\n"
        f"schedule:\n{run.schedule.describe()}\n"
        f"nemesis log:\n" + "\n".join(run.nemesis_log)
    )


def test_storms_reject_non_zk_systems():
    with pytest.raises(ValueError):
        run_session_chaos("ds", "churn", 1)
    with pytest.raises(ValueError):
        run_session_chaos("zk", "no-such-scenario", 1)


@pytest.mark.slow
@pytest.mark.skipif(os.environ.get("CHAOS_FULL") != "1",
                    reason="25-seed storm matrix only in CHAOS_FULL runs")
@pytest.mark.parametrize("scenario", SESSION_SCENARIOS)
@pytest.mark.parametrize("system", ("zk", "ezk"))
def test_session_storm_matrix(system, scenario):
    failures = []
    for seed in range(1, 26):
        run = run_session_chaos(system, scenario, seed)
        if not run.ok:
            failures.append(f"seed {seed}: {run.result.reason} "
                            f"[replay: {run.repro}]")
    assert not failures, (
        f"{system}/{scenario}: {len(failures)}/25 seeds failed\n"
        + "\n".join(failures))


@pytest.mark.slow
@pytest.mark.skipif(os.environ.get("CHAOS_FULL") != "1",
                    reason="25-seed storm matrix only in CHAOS_FULL runs")
@pytest.mark.parametrize("scenario", SESSION_SCENARIOS)
def test_session_storm_matrix_raft(scenario):
    """Session storms over the Raft kernel: fencing, watches and leases
    must hold across Raft leader changes just as across Zab's."""
    failures = []
    for seed in range(1, 26):
        run = run_session_chaos("zk", scenario, seed, kernel="raft")
        if not run.ok:
            failures.append(f"seed {seed}: {run.result.reason} "
                            f"[replay: {run.repro}]")
    assert not failures, (
        f"zk/{scenario} kernel=raft: {len(failures)}/25 seeds failed\n"
        + "\n".join(failures))


# ---------------------------------------------------------------------------
# check_session_log teeth (fabricated committed logs)
# ---------------------------------------------------------------------------


def _meta(session_id, xid=1):
    return RequestMeta("zk0", "c0", session_id, xid)


def _clean_log():
    """Session 2 lives; session 5 opens, writes, closes; one rejection."""
    return [
        TxnRecord(2, CreateSessionTxn(2, 1000.0, "a")),
        TxnRecord(5, CreateSessionTxn(5, 1000.0, "b")),
        TxnRecord(6, CreateTxn("/e5", b"", ephemeral_owner=5), _meta(5)),
        TxnRecord(7, SetDataTxn("/n", b"v1"), _meta(5)),
        TxnRecord(8, CloseSessionTxn(5)),
        # A fenced request travels the pipeline as an ErrorTxn — a
        # rejection, not an applied write; the checker must allow it.
        TxnRecord(9, ErrorTxn("SESSION_EXPIRED", "fenced"), _meta(5)),
        TxnRecord(10, SetDataTxn("/n", b"v2"), _meta(2)),
    ]


class TestSessionLogChecker:
    def test_clean_log_passes(self):
        result = check_session_log(_clean_log(), {"zk0": {2}}, {2})
        assert result.ok, result.reason

    def test_double_close_fails(self):
        log = _clean_log() + [TxnRecord(11, CloseSessionTxn(5))]
        result = check_session_log(log, {}, {2})
        assert not result.ok
        assert "closed twice" in result.reason

    def test_post_expiry_write_fails(self):
        log = _clean_log() + [TxnRecord(11, SetDataTxn("/n", b"zombie"),
                                        _meta(5))]
        result = check_session_log(log, {}, {2})
        assert not result.ok
        assert "post-expiry write" in result.reason

    def test_session_resurrection_fails(self):
        log = _clean_log() + [TxnRecord(2, CreateSessionTxn(2, 1000.0))]
        result = check_session_log(log, {}, {2})
        assert not result.ok
        assert "resurrected" in result.reason

    def test_ephemeral_for_closed_owner_fails(self):
        log = _clean_log() + [
            TxnRecord(11, MultiTxn([SetDataTxn("/n", b"v3"),
                                    CreateTxn("/e", b"",
                                              ephemeral_owner=5)]),
                      _meta(2)),
        ]
        result = check_session_log(log, {}, {2})
        assert not result.ok
        assert "ephemeral created for closed session" in result.reason

    def test_surviving_ephemeral_of_closed_session_fails(self):
        result = check_session_log(_clean_log(), {"zk1": {2, 5}}, {2})
        assert not result.ok
        assert "survived the reap" in result.reason

    def test_orphan_ephemeral_owner_fails(self):
        result = check_session_log(_clean_log(), {"zk2": {77}}, {2})
        assert not result.ok
        assert "neither open nor closed" in result.reason


# ---------------------------------------------------------------------------
# check_lease_reads teeth (fabricated observation streams)
# ---------------------------------------------------------------------------


class TestLeaseReadChecker:
    def test_empty_and_fresh_reads_pass(self):
        assert check_lease_reads([]).ok
        events = [("write", 10.0, 5), ("read", 11.0, 5),
                  ("write", 20.0, 9), ("read", 25.0, 9),
                  ("read", 25.0, 12)]
        assert check_lease_reads(events).ok

    def test_stale_read_past_acked_write_fails(self):
        events = [("write", 10.0, 5), ("write", 20.0, 9),
                  ("read", 25.0, 5)]
        result = check_lease_reads(events)
        assert not result.ok
        assert "stale lease read" in result.reason

    def test_concurrent_ack_does_not_constrain(self):
        # The ack lands at the exact instant the read begins: the two
        # are concurrent, so returning the older value is legal.
        events = [("write", 10.0, 5), ("write", 20.0, 9),
                  ("read", 20.0, 5)]
        assert check_lease_reads(events).ok

    def test_ack_floor_uses_commit_order_not_issue_order(self):
        # Writer A's txn committed first (mzxid 5) but acked *after*
        # writer B's (mzxid 9): a read after both acks must see >= 9,
        # and one between the acks must only see >= 9's floor once 9
        # is actually acked.
        events = [("write", 30.0, 5), ("write", 20.0, 9),
                  ("read", 25.0, 9), ("read", 35.0, 9)]
        assert check_lease_reads(events).ok
        assert not check_lease_reads(
            events + [("read", 40.0, 5)]).ok


# ---------------------------------------------------------------------------
# storm schedules
# ---------------------------------------------------------------------------


class TestStormSchedules:
    @pytest.mark.parametrize("scenario", SESSION_SCENARIOS)
    def test_deterministic_per_seed(self, scenario):
        a = random_storm_schedule(9, scenario)
        b = random_storm_schedule(9, scenario)
        assert a.describe() == b.describe()
        assert a.describe() != random_storm_schedule(10, scenario).describe()

    @pytest.mark.parametrize("seed", range(1, 11))
    @pytest.mark.parametrize("scenario", SESSION_SCENARIOS)
    def test_shape(self, scenario, seed):
        schedule = random_storm_schedule(seed, scenario)
        storms = [a for a in schedule.actions if a.kind in STORM_KINDS]
        others = [a for a in schedule.actions if a.kind not in STORM_KINDS]
        expected = {"churn": "session_storm",
                    "watch_storm": "watch_storm",
                    "lease_storm": "lease_storm"}[scenario]
        assert storms, "every storm schedule has at least one storm"
        assert all(s.kind == expected for s in storms)
        assert all(s.count > 0 for s in storms)
        # Storm windows are serialized with each other...
        for earlier, later in zip(storms, storms[1:]):
            assert earlier.at_ms + earlier.duration_ms < later.at_ms
        # ...and every classic fault lands inside some storm window.
        for fault in others:
            assert any(s.at_ms <= fault.at_ms
                       and fault.at_ms + fault.duration_ms
                       <= s.at_ms + s.duration_ms for s in storms), \
                f"seed {seed}: {fault.describe()} outside every storm"
        assert schedule.quiesce_ms > max(
            a.at_ms + a.duration_ms for a in schedule.actions)
        # chronological, stable description
        ats = [a.at_ms for a in schedule.actions]
        assert ats == sorted(ats)

    def test_classic_schedules_never_emit_storms(self):
        """``random_schedule`` is untouched: replayability of every
        historical (system, recipe, seed) triple depends on it."""
        for seed in range(1, 21):
            for action in random_schedule(seed).actions:
                assert action.kind not in STORM_KINDS
                assert action.count == 0
