"""Unit coverage for repro.sim.stats: percentile edges, summarize,
and the IntervalThroughput window.

The percentile edge cases pin the nearest-rank boundary behaviour:
``p=0`` must be the minimum sample (the naive ``max(1, ceil(0))``
clamp silently returned it for the wrong reason and broke down once
the clamp was refactored), ``p=100`` the maximum, and a single-sample
recorder must answer every percentile with that sample.
"""

from __future__ import annotations

import math

import pytest

from repro.sim import IntervalThroughput, LatencyRecorder
from repro.sim.stats import summarize


def _recorder(values, now=10.0):
    recorder = LatencyRecorder()
    for value in values:
        recorder.record(now=now, latency_ms=float(value))
    return recorder


class TestPercentileEdges:
    def test_p0_is_minimum(self):
        recorder = _recorder([5.0, 1.0, 9.0, 3.0])
        assert recorder.percentile(0.0) == 1.0

    def test_negative_p_clamps_to_minimum(self):
        recorder = _recorder([5.0, 1.0, 9.0])
        assert recorder.percentile(-10.0) == 1.0

    def test_p100_is_maximum(self):
        recorder = _recorder([5.0, 1.0, 9.0, 3.0])
        assert recorder.percentile(100.0) == 9.0

    def test_above_100_clamps_to_maximum(self):
        recorder = _recorder([5.0, 1.0, 9.0])
        assert recorder.percentile(150.0) == 9.0

    def test_single_sample_every_percentile(self):
        recorder = _recorder([42.0])
        for p in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert recorder.percentile(p) == 42.0

    def test_empty_recorder_is_nan(self):
        recorder = LatencyRecorder()
        assert math.isnan(recorder.percentile(0.0))
        assert math.isnan(recorder.percentile(50.0))
        assert math.isnan(recorder.percentile(100.0))

    def test_interior_nearest_rank_unchanged(self):
        recorder = _recorder(range(1, 101))
        assert recorder.percentile(50.0) == 50.0
        assert recorder.percentile(99.0) == 99.0
        assert recorder.percentile(1.0) == 1.0


class TestSummarize:
    def test_summary_fields(self):
        recorder = _recorder(range(1, 101))
        summary = summarize(recorder)
        assert summary["count"] == 100.0
        assert summary["mean_ms"] == pytest.approx(50.5)
        assert summary["median_ms"] == 50.0
        assert summary["p99_ms"] == 99.0
        assert summary["p999_ms"] == 100.0
        assert "ops_per_second" not in summary

    def test_summary_with_throughput_window(self):
        recorder = _recorder([1.0, 2.0])
        window = IntervalThroughput(0.0, 1000.0)
        for now in (100.0, 200.0, 300.0):
            window.record(now=now)
        summary = summarize(recorder, throughput=window)
        assert summary["ops_per_second"] == pytest.approx(3.0)

    def test_summary_of_empty_recorder(self):
        summary = summarize(LatencyRecorder())
        assert summary["count"] == 0.0
        assert math.isnan(summary["mean_ms"])
        assert math.isnan(summary["p99_ms"])


class TestIntervalThroughput:
    def test_window_is_half_open(self):
        window = IntervalThroughput(100.0, 600.0)
        window.record(now=99.9)     # before: ignored
        window.record(now=100.0)    # inclusive start
        window.record(now=599.99)
        window.record(now=600.0)    # exclusive end: ignored
        assert window.completed == 2
        assert window.ops_per_second == pytest.approx(4.0)

    def test_empty_window_is_zero(self):
        window = IntervalThroughput(0.0, 500.0)
        assert window.completed == 0
        assert window.ops_per_second == 0.0

    def test_degenerate_window_rejected(self):
        with pytest.raises(ValueError):
            IntervalThroughput(5.0, 5.0)
        with pytest.raises(ValueError):
            IntervalThroughput(10.0, 5.0)
