"""Unit tests for tuple matching and the tuple-space layer."""

import pytest

from repro.depspace import (ANY, AccessControl, AccessDeniedError,
                            BadTupleError, LeaseRecord, Policy,
                            PolicyViolationError, Prefix, TupleSpace,
                            deny_ops, is_template, make_tuple, matches,
                            protect_prefix, require_arity, require_field_type)


class TestMatching:
    def test_exact_match(self):
        assert matches(("a", 1), ("a", 1))

    def test_mismatch_value(self):
        assert not matches(("a", 1), ("a", 2))

    def test_mismatch_length(self):
        assert not matches(("a",), ("a", 1))

    def test_any_matches_anything(self):
        assert matches((ANY, ANY), ("x", b"data"))
        assert matches(("k", ANY), ("k", None))

    def test_prefix_matches_string_prefix(self):
        assert matches((Prefix("/queue/"), ANY), ("/queue/e1", b""))
        assert not matches((Prefix("/queue/"), ANY), ("/other/e1", b""))

    def test_prefix_rejects_non_string(self):
        assert not matches((Prefix("/q"),), (42,))

    def test_bool_does_not_match_int(self):
        assert not matches((1,), (True,))
        assert not matches((True,), (1,))
        assert matches((True,), (True,))

    def test_is_template(self):
        assert is_template((ANY, "x"))
        assert is_template((Prefix("/"),))
        assert not is_template(("x", 1))

    def test_make_tuple_validates(self):
        assert make_tuple("a", 1, b"x", None) == ("a", 1, b"x", None)
        with pytest.raises(BadTupleError):
            make_tuple(["lists", "not", "allowed"])


class TestTupleSpace:
    def test_out_and_rdp(self):
        space = TupleSpace()
        space.out(("k", 1))
        assert space.rdp(("k", ANY)) == ("k", 1)
        assert len(space) == 1

    def test_rdp_returns_oldest(self):
        space = TupleSpace()
        space.out(("k", 1))
        space.out(("k", 2))
        assert space.rdp(("k", ANY)) == ("k", 1)

    def test_inp_removes(self):
        space = TupleSpace()
        space.out(("k", 1))
        assert space.inp(("k", ANY)) == ("k", 1)
        assert space.rdp(("k", ANY)) is None

    def test_inp_no_match(self):
        assert TupleSpace().inp(("ghost",)) is None

    def test_out_rejects_template(self):
        with pytest.raises(BadTupleError):
            TupleSpace().out(("k", ANY))

    def test_duplicates_are_a_multiset(self):
        space = TupleSpace()
        space.out(("k",))
        space.out(("k",))
        assert space.inp(("k",)) == ("k",)
        assert space.inp(("k",)) == ("k",)
        assert space.inp(("k",)) is None

    def test_rdall_in_insertion_order(self):
        space = TupleSpace()
        space.out(("q", "b"))
        space.out(("q", "a"))
        space.out(("x", "z"))
        assert space.rdall(("q", ANY)) == [("q", "b"), ("q", "a")]

    def test_cas_inserts_when_no_match(self):
        space = TupleSpace()
        assert space.cas(("ctr", ANY), ("ctr", 0)) is True
        assert space.cas(("ctr", ANY), ("ctr", 1)) is False
        assert space.rdp(("ctr", ANY)) == ("ctr", 0)

    def test_replace_swaps_atomically(self):
        space = TupleSpace()
        space.out(("ctr", 5))
        old = space.replace(("ctr", ANY), ("ctr", 6))
        assert old == ("ctr", 5)
        assert space.rdp(("ctr", ANY)) == ("ctr", 6)

    def test_replace_no_match(self):
        assert TupleSpace().replace(("ctr", ANY), ("ctr", 0)) is None


class TestLeases:
    def test_expired_lease_purged(self):
        space = TupleSpace()
        space.out(("lease", "a"), lease=LeaseRecord("c1", expires_at=100.0))
        space.out(("durable",))
        removed = space.purge_expired(now=100.0)
        assert removed == [("lease", "a")]
        assert space.rdp(("lease", ANY)) is None
        assert space.rdp(("durable",)) is not None

    def test_unexpired_lease_survives(self):
        space = TupleSpace()
        space.out(("lease", "a"), lease=LeaseRecord("c1", expires_at=100.0))
        assert space.purge_expired(now=99.0) == []

    def test_renew_extends(self):
        space = TupleSpace()
        space.out(("lease", "a"), lease=LeaseRecord("c1", expires_at=100.0))
        assert space.renew_leases("c1", new_expiry=500.0) == 1
        assert space.purge_expired(now=200.0) == []
        assert space.purge_expired(now=500.0) == [("lease", "a")]

    def test_renew_only_own_leases(self):
        space = TupleSpace()
        space.out(("a",), lease=LeaseRecord("c1", expires_at=100.0))
        space.out(("b",), lease=LeaseRecord("c2", expires_at=100.0))
        assert space.renew_leases("c1", new_expiry=500.0) == 1
        assert space.purge_expired(now=100.0) == [("b",)]

    def test_taking_tuple_drops_lease(self):
        space = TupleSpace()
        space.out(("a",), lease=LeaseRecord("c1", expires_at=100.0))
        space.inp(("a",))
        assert space.purge_expired(now=1000.0) == []


class TestSnapshot:
    def test_round_trip_preserves_order_and_leases(self):
        space = TupleSpace()
        space.out(("first",))
        space.out(("second",), lease=LeaseRecord("c1", expires_at=50.0))
        clone = TupleSpace()
        clone.restore(space.snapshot())
        assert clone.fingerprint() == space.fingerprint()
        assert clone.rdall((ANY,)) == [("first",), ("second",)]
        assert clone.purge_expired(now=50.0) == [("second",)]


class TestAccessControl:
    def test_open_allows_everyone(self):
        AccessControl.open().check("out", "anyone")

    def test_allow_list_enforced(self):
        acl = AccessControl(writers={"alice"})
        acl.check("out", "alice")
        with pytest.raises(AccessDeniedError):
            acl.check("out", "bob")
        acl.check("rdp", "bob")  # readers unrestricted

    def test_deny_list_wins(self):
        acl = AccessControl(denied={"mallory"})
        with pytest.raises(AccessDeniedError):
            acl.check("rdp", "mallory")

    def test_take_separate_from_read(self):
        acl = AccessControl(takers={"worker"})
        acl.check("rd", "anyone")
        with pytest.raises(AccessDeniedError):
            acl.check("inp", "anyone")
        acl.check("inp", "worker")

    def test_unknown_op_rejected(self):
        with pytest.raises(AccessDeniedError):
            AccessControl.open().check("format_disk", "anyone")


class TestPolicy:
    def test_allow_all(self):
        Policy.allow_all().check("out", "c", ("x",), TupleSpace())

    def test_deny_ops(self):
        policy = Policy([deny_ops("inp", "in")])
        policy.check("out", "c", ("x",), TupleSpace())
        with pytest.raises(PolicyViolationError):
            policy.check("inp", "c", ("x",), TupleSpace())

    def test_require_arity(self):
        policy = Policy([require_arity(2)])
        policy.check("out", "c", ("k", "v"), TupleSpace())
        with pytest.raises(PolicyViolationError):
            policy.check("out", "c", ("k",), TupleSpace())

    def test_require_field_type(self):
        policy = Policy([require_field_type(1, bytes)])
        policy.check("out", "c", ("k", b"ok"), TupleSpace())
        with pytest.raises(PolicyViolationError):
            policy.check("out", "c", ("k", "not-bytes"), TupleSpace())
        # Reads are not constrained.
        policy.check("rdp", "c", ("k", "template-str"), TupleSpace())

    def test_protect_prefix(self):
        policy = Policy([protect_prefix("/em/", "em-manager")])
        policy.check("out", "em-manager", ("/em/ext", b""), TupleSpace())
        with pytest.raises(PolicyViolationError):
            policy.check("out", "intruder", ("/em/ext", b""), TupleSpace())
        policy.check("out", "intruder", ("/app/x", b""), TupleSpace())

    def test_first_rejection_wins(self):
        policy = Policy([deny_ops("out"), require_arity(99)])
        with pytest.raises(PolicyViolationError, match="disabled"):
            policy.check("out", "c", ("x",), TupleSpace())
