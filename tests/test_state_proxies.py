"""Unit tests for the two backend state proxies (EZK buffered, EDS direct)."""

import pytest

from repro.core import CoordStateError, NoObjectError, ObjectExistsError
from repro.ezk import ZkBufferedState
from repro.zk import DataTree
from repro.zk.txn import CreateTxn, DeleteTxn, SetDataTxn


@pytest.fixture
def tree():
    tree = DataTree()
    tree.create("/queue", zxid=1)
    tree.create("/queue/a", b"first", zxid=2)
    tree.create("/queue/b", b"second", zxid=3)
    tree.create("/ctr", b"41", zxid=4)
    return tree


class TestZkBufferedState:
    def test_read_update_cycle(self, tree):
        proxy = ZkBufferedState(tree)
        assert proxy.read("/ctr") == b"41"
        proxy.update("/ctr", b"42")
        assert proxy.read("/ctr") == b"42"
        assert tree.get_data("/ctr")[0] == b"41"  # base untouched

    def test_multi_txn_reflects_write_set(self, tree):
        proxy = ZkBufferedState(tree)
        proxy.update("/ctr", b"42")
        proxy.create("/new", b"x")
        proxy.delete("/queue/a")
        txn = proxy.to_multi_txn(result="done")
        assert txn.payload_set and txn.result_payload == "done"
        assert [type(t) for t in txn.txns] == [SetDataTxn, CreateTxn,
                                               DeleteTxn]

    def test_reads_produce_no_txns(self, tree):
        proxy = ZkBufferedState(tree)
        proxy.read("/ctr")
        proxy.sub_objects("/queue")
        proxy.exists("/missing")
        assert proxy.to_multi_txn().txns == []

    def test_sub_objects_ordered_by_creation(self, tree):
        proxy = ZkBufferedState(tree)
        records = proxy.sub_objects("/queue")
        assert [r.object_id for r in records] == ["/queue/a", "/queue/b"]
        assert records[0].seq < records[1].seq

    def test_pending_creations_sort_youngest(self, tree):
        proxy = ZkBufferedState(tree)
        proxy.create("/queue/c", b"third")
        records = proxy.sub_objects("/queue")
        assert [r.object_id for r in records] == [
            "/queue/a", "/queue/b", "/queue/c"]

    def test_cas_semantics(self, tree):
        proxy = ZkBufferedState(tree)
        assert proxy.cas("/ctr", b"41", b"42") is True
        assert proxy.cas("/ctr", b"41", b"43") is False
        assert proxy.read("/ctr") == b"42"

    def test_error_mapping(self, tree):
        proxy = ZkBufferedState(tree)
        with pytest.raises(NoObjectError):
            proxy.read("/ghost")
        with pytest.raises(ObjectExistsError):
            proxy.create("/ctr")
        with pytest.raises(NoObjectError):
            proxy.update("/ghost", b"")
        with pytest.raises(NoObjectError):
            proxy.cas("/ghost", b"", b"")

    def test_single_block_per_invocation(self, tree):
        proxy = ZkBufferedState(tree)
        proxy.block("/gate")
        assert proxy.block_path == "/gate"
        with pytest.raises(CoordStateError):
            proxy.block("/other")

    def test_monitor_creates_ephemeral_for_session(self, tree):
        tree.create("/clients", zxid=5)
        proxy = ZkBufferedState(tree)
        proxy.monitor("12345", "/clients/12345")
        create = proxy.to_multi_txn().txns[0]
        assert create.ephemeral_owner == 12345

    def test_monitor_rejects_non_session_client(self, tree):
        proxy = ZkBufferedState(tree)
        with pytest.raises(CoordStateError):
            proxy.monitor("not-a-session", "/clients/x")


def make_replica():
    from repro.depspace import DsReplica
    from repro.sim import Environment, Network

    env = Environment()
    net = Network(env)
    replica = DsReplica(env, net, "solo", ["solo", "x1", "x2", "x3"])
    return replica


class TestDsDirectState:
    def proxy(self, replica, events=None):
        from repro.eds import DsDirectState
        return DsDirectState(replica, "client-1", ts=10.0,
                             events=events if events is not None else [])

    def test_create_read_update_delete(self):
        replica = make_replica()
        proxy = self.proxy(replica)
        proxy.create("/a", b"1")
        assert proxy.read("/a") == b"1"
        proxy.update("/a", b"2")
        assert proxy.read("/a") == b"2"
        proxy.delete("/a")
        assert not proxy.exists("/a")

    def test_mutations_are_direct(self):
        replica = make_replica()
        proxy = self.proxy(replica)
        proxy.create("/a", b"1")
        assert replica.space().rdp(("/a", b"1")) is not None

    def test_rollback_restores_everything(self):
        replica = make_replica()
        space = replica.space()
        space.out(("/keep", b"old"))
        space.out(("/victim", b"data"))
        fingerprint = replica.fingerprint()

        proxy = self.proxy(replica)
        proxy.create("/new", b"x")
        proxy.update("/keep", b"new")
        proxy.delete("/victim")
        proxy.rollback()
        assert space.rdp(("/keep", b"old")) is not None
        assert space.rdp(("/victim", b"data")) is not None
        assert space.rdp(("/new", b"x")) is None

    def test_rollback_restores_leases(self):
        from repro.depspace import LeaseRecord
        replica = make_replica()
        space = replica.space()
        space.out(("/leased", b""), lease=LeaseRecord("owner", 500.0))
        proxy = self.proxy(replica)
        proxy.delete("/leased")
        proxy.rollback()
        lease = space.lease_of(("/leased", b""))
        assert lease is not None and lease.owner == "owner"

    def test_sub_objects_in_insertion_order(self):
        replica = make_replica()
        proxy = self.proxy(replica)
        proxy.create("/q/z", b"first")
        proxy.create("/q/a", b"second")
        records = proxy.sub_objects("/q")
        assert [r.object_id for r in records] == ["/q/z", "/q/a"]
        assert records[0].seq < records[1].seq

    def test_cas_and_errors(self):
        replica = make_replica()
        proxy = self.proxy(replica)
        proxy.create("/a", b"1")
        assert proxy.cas("/a", b"1", b"2") is True
        assert proxy.cas("/a", b"1", b"3") is False
        with pytest.raises(NoObjectError):
            proxy.read("/ghost")
        with pytest.raises(ObjectExistsError):
            proxy.create("/a")
        with pytest.raises(NoObjectError):
            proxy.delete("/ghost")

    def test_block_requires_operation_context(self):
        replica = make_replica()
        proxy = self.proxy(replica)  # no request_id
        with pytest.raises(CoordStateError):
            proxy.block("/gate")

    def test_monitor_creates_lease_for_client(self):
        replica = make_replica()
        events = []
        proxy = self.proxy(replica, events)
        proxy.monitor("other-client", "/clients/other", b"")
        lease = replica.space().lease_of(("/clients/other", b""))
        assert lease is not None
        assert lease.owner == "other-client"
        assert events and events[0].kind == "inserted"

    def test_ops_respect_policy_layers(self):
        from repro.depspace import Policy, PolicyViolationError, deny_ops
        replica = make_replica()
        replica.set_policy("main", Policy([deny_ops("out")]))
        proxy = self.proxy(replica)
        with pytest.raises(PolicyViolationError):
            proxy.create("/a", b"1")
