"""Session lifecycle end-to-end: fencing, reaping, reconnect, synthesis."""

import pytest

from repro.zk import SessionExpiredError, SessionState, ZkEnsemble
from repro.zk.server import ZkConfig
from repro.zk.txn import CloseSessionTxn
from repro.zk.watches import EventType


@pytest.fixture
def ensemble():
    ens = ZkEnsemble(n_replicas=3, seed=1)
    ens.start()
    return ens


def run(ensemble, *generators):
    procs = [ensemble.env.process(gen) for gen in generators]
    results = []
    for proc in procs:
        results.append(ensemble.env.run(until=proc))
    return results


def connected_client(ensemble, **kwargs):
    client = ensemble.client(**kwargs)

    def _connect():
        yield from client.connect()
        return client

    return run(ensemble, _connect())[0]


def run_until(ensemble, predicate, step_ms=50.0, limit_ms=15_000.0):
    env = ensemble.env
    deadline = env.now + limit_ms
    while not predicate() and env.now < deadline:
        env.run(until=env.now + step_ms)
    assert predicate(), f"condition never held by t={env.now:g}ms"


def committed_close_txns(leader, session_id):
    return [r for r in leader.zab.log
            if r.zxid <= leader.zab.committed_zxid
            and isinstance(r.txn, CloseSessionTxn)
            and r.txn.session_id == session_id]


class TestStateMachine:
    def test_suspend_then_reconnect_on_replica_crash(self, ensemble):
        client = connected_client(ensemble, replica="zk1", resilient=True)
        states = []
        client.session_listeners.append(states.append)

        def scenario():
            yield from client.create("/sm", b"v0")
            ensemble.server("zk1").crash()
            # Issued at the dead replica: must fail over, re-establish
            # the session elsewhere, and complete.
            stat = yield from client.set_data("/sm", b"v1")
            return stat.version

        assert run(ensemble, scenario())[0] == 1
        assert SessionState.SUSPENDED in states
        assert states.index(SessionState.SUSPENDED) < \
            len(states) - 1 - states[::-1].index(SessionState.CONNECTED)
        assert client.state is SessionState.CONNECTED

    def test_expired_is_terminal_client_side(self, ensemble):
        client = connected_client(ensemble, session_timeout_ms=1000.0,
                                  resilient=True)

        def scenario():
            yield from client.create("/t", b"v0")
            client.abandon()
            yield ensemble.env.timeout(3000.0)
            try:
                yield from client.set_data("/t", b"zombie")
            except SessionExpiredError:
                pass
            else:
                raise AssertionError("fence never answered")
            assert client.state is SessionState.EXPIRED
            # Once EXPIRED, calls fail locally without touching the wire.
            before = ensemble.env.now
            try:
                yield from client.set_data("/t", b"again")
            except SessionExpiredError:
                pass
            else:
                raise AssertionError("EXPIRED was not terminal")
            return ensemble.env.now - before

        assert run(ensemble, scenario())[0] == 0.0


class TestExpiryFencing:
    def test_post_expiry_write_is_fenced(self, ensemble):
        client = connected_client(ensemble, session_timeout_ms=1000.0)

        def scenario():
            yield from client.create("/fenced", b"safe")
            client.abandon()
            yield ensemble.env.timeout(3000.0)
            try:
                yield from client.set_data("/fenced", b"zombie")
            except SessionExpiredError:
                return "fenced"
            return "applied"

        assert run(ensemble, scenario())[0] == "fenced"
        for server in ensemble.servers:
            if server._alive:
                assert server.tree.get_data("/fenced")[0] == b"safe"

    def test_fencing_off_reproduces_lossy_behavior(self):
        ens = ZkEnsemble(n_replicas=3, seed=1,
                         config=ZkConfig(expiry_fencing=False))
        ens.start()
        client = connected_client(ens, session_timeout_ms=1000.0)

        def scenario():
            yield from client.create("/fenced", b"safe")
            client.abandon()
            yield ens.env.timeout(3000.0)
            yield from client.set_data("/fenced", b"zombie")
            return "applied"

        # The historical gate: without fencing the zombie write lands.
        assert run(ens, scenario())[0] == "applied"
        assert ens.leader.tree.get_data("/fenced")[0] == b"zombie"

    def test_fenced_pong_after_partition_expires_client(self, ensemble):
        """A client with no outstanding calls learns of its expiry from
        the fenced keep-alive pong once the partition heals."""
        client = connected_client(ensemble, session_timeout_ms=1000.0,
                                  resilient=True)
        sid = client.session_id
        ensemble.net.partition([client.node_id], ensemble.all_ids)
        run_until(ensemble, lambda: sid not in ensemble.leader.sessions)
        assert client.state is not SessionState.EXPIRED
        ensemble.net.heal()
        run_until(ensemble, lambda: client.state is SessionState.EXPIRED,
                  limit_ms=10_000.0)


class TestExactlyOnceReaping:
    def test_expiry_reaps_ephemerals_once(self, ensemble):
        client = connected_client(ensemble, session_timeout_ms=1000.0)
        sid = client.session_id

        def scenario():
            yield from client.create("/eph", b"", ephemeral=True)
            client.abandon()
            yield ensemble.env.timeout(3000.0)
            # Late explicit close: the session is already gone; the
            # duplicate close must be answered (swallowed client-side)
            # without reaping anything twice.
            yield from client.close()
            return True

        assert run(ensemble, scenario())[0] is True
        leader = ensemble.leader
        assert leader.tree.exists("/eph") is None
        assert len(committed_close_txns(leader, sid)) == 1
        assert ensemble.trees_consistent()

    def test_graceful_close_then_no_expiry_close(self, ensemble):
        client = connected_client(ensemble, session_timeout_ms=1000.0)
        sid = client.session_id

        def scenario():
            yield from client.create("/eph2", b"", ephemeral=True)
            yield from client.close()
            yield ensemble.env.timeout(3000.0)
            return True

        run(ensemble, scenario())
        leader = ensemble.leader
        assert leader.tree.exists("/eph2") is None
        # The expiry sweep must not issue a second close for a session
        # that closed gracefully.
        assert len(committed_close_txns(leader, sid)) == 1

    def test_expiry_races_leader_failover(self, ensemble):
        client = connected_client(ensemble, session_timeout_ms=1500.0)
        sid = client.session_id

        def scenario():
            yield from client.create("/racer", b"", ephemeral=True)
            client.abandon()
            yield ensemble.env.timeout(100.0)
            return True

        run(ensemble, scenario())
        ensemble.server("zk0").crash()   # the bootstrap leader
        run_until(ensemble, lambda: ensemble.leader is not None
                  and ensemble.leader.node_id != "zk0")
        t_elect = ensemble.env.now
        new_leader = ensemble.leader
        assert sid in new_leader.sessions

        # The new leader rebases expiry deadlines: sessions get a fresh
        # full timeout measured from *its* first healthy tick, so the
        # election gap alone can never expire anyone...
        ensemble.env.run(until=t_elect + 800.0)
        assert sid in new_leader.sessions
        assert new_leader.tree.exists("/racer") is not None

        # ...but an abandoned session still dies of silence soon after.
        run_until(ensemble, lambda: sid not in new_leader.sessions,
                  limit_ms=3000.0)
        run_until(ensemble,
                  lambda: new_leader.tree.exists("/racer") is None,
                  limit_ms=1000.0)
        assert len(committed_close_txns(new_leader, sid)) == 1


class TestWatchSynthesis:
    def test_missed_data_event_is_synthesized(self, ensemble):
        writer = connected_client(ensemble, replica="zk0")
        watcher = connected_client(ensemble, replica="zk1",
                                   session_timeout_ms=1500.0, resilient=True)

        def scenario():
            yield from writer.create("/w", b"v0")
            waiter = watcher.wait_for_event("/w")
            yield from watcher.get_data("/w", watch=True)
            # The replica holding the armed watch dies; the write lands
            # while the watcher is cut off. Reconnect must compare the
            # re-armed read's mzxid and synthesize the missed event.
            ensemble.server("zk1").crash()
            yield ensemble.env.timeout(50.0)
            yield from writer.set_data("/w", b"v1")
            note = yield from watcher.await_notification("/w", waiter)
            return note

        note = run(ensemble, scenario())[0]
        assert note is not None
        assert note.path == "/w"
        assert note.event_type == EventType.NODE_DATA_CHANGED.value
        assert watcher.state is SessionState.CONNECTED

    def test_missed_child_event_is_synthesized(self, ensemble):
        writer = connected_client(ensemble, replica="zk0")
        watcher = connected_client(ensemble, replica="zk1",
                                   session_timeout_ms=1500.0, resilient=True)

        def scenario():
            yield from writer.create("/parent", b"")
            waiter = watcher.wait_for_event("/parent")
            yield from watcher.get_children("/parent", watch=True)
            ensemble.server("zk1").crash()
            yield ensemble.env.timeout(50.0)
            yield from writer.create("/parent/kid", b"")
            note = yield from watcher.await_notification("/parent", waiter)
            return note

        note = run(ensemble, scenario())[0]
        assert note is not None
        assert note.path == "/parent"
        assert note.event_type == EventType.NODE_CHILDREN_CHANGED.value

    def test_rearmed_watch_still_fires_live(self, ensemble):
        """No event in the gap: the watch re-arms and fires on the next
        write after reconnect (not a spurious synthesized one)."""
        writer = connected_client(ensemble, replica="zk0")
        watcher = connected_client(ensemble, replica="zk1",
                                   session_timeout_ms=1500.0, resilient=True)
        states = []
        watcher.session_listeners.append(states.append)

        def scenario():
            yield from writer.create("/quiet", b"v0")
            waiter = watcher.wait_for_event("/quiet")
            yield from watcher.get_data("/quiet", watch=True)
            ensemble.server("zk1").crash()
            # Let the watcher notice and re-establish before any write.
            yield ensemble.env.timeout(2500.0)
            assert SessionState.CONNECTED in states
            assert not waiter.triggered   # nothing synthesized spuriously
            yield from writer.set_data("/quiet", b"v1")
            note = yield from watcher.await_notification("/quiet", waiter)
            return note

        note = run(ensemble, scenario())[0]
        assert note is not None
        assert note.event_type == EventType.NODE_DATA_CHANGED.value
