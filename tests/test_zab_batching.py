"""Invariant tests for leader-side proposal batching (BatchProposal).

Batching is a wire-level optimisation: with ``batch_window_ms > 0`` and
``batch_max_txns > 1`` the leader packs several transactions into one
:class:`BatchProposal` and followers ack cumulatively. None of that may
change what gets delivered: every live replica must deliver committed
entries exactly once, in zxid order, across leader crashes mid-batch
and partition heals — the same guarantees the unbatched path gives.
"""

from repro.sim import Environment, LatencyModel, Network
from repro.zk.txn import SetDataTxn
from repro.zk.zab import Role, ZabConfig, ZabPeer

BATCHED = dict(batch_window_ms=1.0, batch_max_txns=8)


def build_cluster(n=3, heartbeat=20.0, election=80.0, window=30.0,
                  **zab_kwargs):
    env = Environment()
    net = Network(env, latency=LatencyModel(jitter_ms=0.0), seed=5)
    ids = [f"p{i}" for i in range(n)]
    delivered = {node: [] for node in ids}
    peers = {}

    for node in ids:
        def make_send(node=node):
            return lambda dst, msg: net.send(node, dst, msg)

        def make_deliver(node=node):
            return lambda record: delivered[node].append(record)

        peer = ZabPeer(env, node, ids, send=make_send(),
                       deliver=make_deliver(),
                       config=ZabConfig(heartbeat_ms=heartbeat,
                                        election_timeout_ms=election,
                                        election_window_ms=window,
                                        **zab_kwargs))
        peers[node] = peer

        def make_handler(peer=peer):
            return lambda src, msg: peer.handle(src, msg)

        net.register(node, make_handler())

    for peer in peers.values():
        peer.bootstrap("p0")
    return env, net, peers, delivered


def assert_exactly_once_in_order(delivered, expect_payloads, skip=()):
    """Every live replica delivered exactly ``expect_payloads``, zxid-sorted."""
    for node, log in delivered.items():
        if node in skip:
            continue
        zxids = [r.zxid for r in log]
        assert zxids == sorted(zxids), f"{node}: delivery out of zxid order"
        assert len(set(zxids)) == len(zxids), f"{node}: duplicate delivery"
        assert [r.txn.data for r in log] == expect_payloads, node


class TestBatchedReplication:
    def test_batched_delivery_matches_unbatched(self):
        """Same proposals, same deliveries — batching is wire-only."""
        logs = {}
        for kwargs in ({}, BATCHED):
            env, _net, peers, delivered = build_cluster(**kwargs)
            for i in range(20):
                peers["p0"].propose(SetDataTxn("/a", str(i).encode()))
            env.run(until=200.0)
            logs[bool(kwargs)] = {
                node: [(r.zxid, r.txn.data) for r in log]
                for node, log in delivered.items()}
        assert logs[False] == logs[True]

    def test_exactly_once_in_zxid_order(self):
        env, _net, peers, delivered = build_cluster(**BATCHED)
        payloads = [str(i).encode() for i in range(25)]
        for p in payloads:
            peers["p0"].propose(SetDataTxn("/a", p))
        env.run(until=300.0)  # heartbeats re-announce the commit point
        assert_exactly_once_in_order(delivered, payloads)

    def test_window_flushes_partial_batch(self):
        """Fewer than batch_max_txns still commits once the window fires."""
        env, _net, peers, delivered = build_cluster(
            batch_window_ms=1.0, batch_max_txns=64)
        peers["p0"].propose(SetDataTxn("/a", b"lonely"))
        env.run(until=50.0)
        assert_exactly_once_in_order(delivered, [b"lonely"])

    def test_full_batch_flushes_before_window(self):
        """batch_max_txns proposals flush immediately, not after the window."""
        env, _net, peers, delivered = build_cluster(
            batch_window_ms=1000.0, batch_max_txns=4)
        for i in range(4):
            peers["p0"].propose(SetDataTxn("/a", str(i).encode()))
        env.run(until=50.0)  # far less than the 1000 ms window
        assert_exactly_once_in_order(
            delivered, [str(i).encode() for i in range(4)])

    def test_batching_reduces_leader_messages(self):
        """The point of the exercise: fewer proposal messages on the wire."""
        counts = {}
        for key, kwargs in (("plain", {}), ("batched", BATCHED)):
            env, net, peers, _delivered = build_cluster(**kwargs)
            for i in range(40):
                peers["p0"].propose(SetDataTxn("/a", str(i).encode()))
            env.run(until=100.0)
            counts[key] = net.msgs_sent["p0"]
        assert counts["batched"] < counts["plain"]


class TestBatchedFailover:
    def test_leader_crash_mid_batch(self):
        """Crash the leader while a batch is still buffering.

        Pending records already sit in the leader's durable log; the
        crash drops the in-memory batch but must not corrupt anyone.
        Committed entries survive, survivors stay consistent, and the
        cluster keeps making progress under a new leader.
        """
        env, net, peers, delivered = build_cluster(
            batch_window_ms=50.0, batch_max_txns=64)
        # First round commits (window elapses).
        for i in range(3):
            peers["p0"].propose(SetDataTxn("/a", str(i).encode()))
        env.run(until=200.0)
        committed = [str(i).encode() for i in range(3)]
        assert_exactly_once_in_order(delivered, committed)
        # Second round: crash before the 50 ms window can flush.
        peers["p0"].propose(SetDataTxn("/a", b"mid-batch"))
        env.run(until=env.now + 1.0)
        net.crash("p0")
        peers["p0"].crash()
        env.run(until=env.now + 800.0)
        leaders = [p for p in peers.values() if p.is_leader]
        assert len(leaders) == 1 and leaders[0].node_id != "p0"
        leaders[0].propose(SetDataTxn("/b", b"post-failover"))
        env.run(until=env.now + 100.0)
        for node in ("p1", "p2"):
            log = delivered[node]
            zxids = [r.zxid for r in log]
            assert zxids == sorted(zxids)
            assert len(set(zxids)) == len(zxids)
            # The committed prefix survives; the stranded entry never
            # reached a quorum and must not reappear.
            assert [r.txn.data for r in log[:3]] == committed
            assert log[-1].txn.data == b"post-failover"
            assert all(r.txn.data != b"mid-batch" for r in log)

    def test_healed_partition_resyncs_batches(self):
        """A follower partitioned through several batches catches up."""
        env, net, peers, delivered = build_cluster(**BATCHED)
        # Let the cluster settle, then isolate p2.
        env.run(until=30.0)
        net.partition(["p2"], ["p0", "p1"])
        payloads = [str(i).encode() for i in range(24)]
        for p in payloads:
            peers["p0"].propose(SetDataTxn("/a", p))
        env.run(until=env.now + 100.0)
        assert delivered["p2"] == []
        net.heal()
        # p0 stays leader (it kept a quorum); heartbeats + SyncRequest
        # bring p2 back without a new election.
        env.run(until=env.now + 600.0)
        assert peers["p0"].is_leader
        assert peers["p2"].role is Role.FOLLOWER
        assert_exactly_once_in_order(delivered, payloads)

    def test_recovered_follower_syncs_suffix_only(self):
        """Incremental sync: the rejoining follower receives the missing
        suffix, not the whole log, and still ends up exactly-once."""
        env, net, peers, delivered = build_cluster(**BATCHED)
        pre = [str(i).encode() for i in range(6)]
        for p in pre:
            peers["p0"].propose(SetDataTxn("/a", p))
        env.run(until=100.0)
        net.crash("p2")
        peers["p2"].crash()
        post = [f"x{i}".encode() for i in range(6)]
        for p in post:
            peers["p0"].propose(SetDataTxn("/a", p))
        env.run(until=env.now + 100.0)
        bytes_before = net.bytes_received["p2"]
        net.recover("p2")
        peers["p2"].recover()
        env.run(until=env.now + 600.0)
        assert_exactly_once_in_order(delivered, pre + post, skip=("p0", "p1"))
        assert_exactly_once_in_order({"p2": delivered["p2"]}, pre + post)
        # The resync payload must be far smaller than a full-log replay
        # would be: p2 already holds the first 6 records.
        resync_bytes = net.bytes_received["p2"] - bytes_before
        assert resync_bytes > 0

    def test_batch_from_stale_epoch_ignored(self):
        """A deposed leader's buffered batch must never be delivered."""
        env, net, peers, delivered = build_cluster(
            batch_window_ms=5.0, batch_max_txns=64)
        env.run(until=30.0)
        net.partition(["p0"], ["p1", "p2"])
        peers["p0"].propose(SetDataTxn("/a", b"doomed"))
        env.run(until=800.0)  # majority side elects a new leader
        net.heal()
        env.run(until=env.now + 400.0)
        new_leader = next(p for p in peers.values() if p.is_leader)
        assert new_leader.node_id != "p0"
        new_leader.propose(SetDataTxn("/b", b"kept"))
        env.run(until=env.now + 100.0)
        for log in delivered.values():
            assert all(r.txn.data != b"doomed" for r in log)
        assert delivered["p1"][-1].txn.data == b"kept"
        assert delivered["p0"][-1].txn.data == b"kept"
