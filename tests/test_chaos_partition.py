"""Regression pins for the bugs the chaos harness flushed out.

Three distinct fault-handling defects surfaced during schedule
exploration; each gets a direct regression test plus a replay of a
previously-failing (system, recipe, seed) cell:

1. The ZK leader's speculative tree applied all mutations with
   ``zxid=0``, so creation order among same-reign nodes was lost and
   "oldest client" extensions tie-broke by name — two leaders at once
   under ezk/election seed 3.
2. A DepSpace replica that missed a view change behind a partition
   dropped all higher-view traffic forever; with no client requests
   after the heal nothing ever told it it was behind.
3. The DepSpace adapter realized ``create`` as a plain ``out``, which
   happily inserts duplicate tuples — three clients racing a counter's
   setup each advanced a private copy.
"""

from __future__ import annotations

import pytest

from repro.bench.systems import make_chaos_ensemble
from repro.chaos import run_chaos
from repro.core.errors import ObjectExistsError
from repro.depspace.tuples import ANY
from repro.recipes import DsCoordClient, ZkCoordClient
from repro.recipes.counter import COUNTER_PATH, TraditionalSharedCounter


# ---------------------------------------------------------------------------
# 1. speculative-tree czxids must match the committed tree
# ---------------------------------------------------------------------------


def test_leader_spec_tree_czxids_match_committed():
    ensemble, raw = make_chaos_ensemble("ezk", seed=2)
    env = ensemble.env
    coord = ZkCoordClient(raw[0])
    paths = ("/pin-a", "/pin-b")

    def create_all():
        for path in paths:
            yield from coord.create(path, b"x")

    proc = env.process(create_all())
    env.run(until=proc)
    env.run(until=env.now + 500.0)

    leader = ensemble.leader
    spec = leader._spec_tree
    assert spec is not None
    czxids = []
    for path in paths:
        committed = leader.tree.exists(path)
        speculative = spec.exists(path)
        assert committed is not None and speculative is not None
        assert committed.czxid != 0, \
            f"{path}: committed czxid was never stamped"
        assert speculative.czxid == committed.czxid, (
            f"{path}: spec czxid {speculative.czxid} != committed "
            f"{committed.czxid} — creation order is lost to extensions"
        )
        czxids.append(committed.czxid)
    assert czxids[0] < czxids[1], "creation order not reflected in czxids"


@pytest.mark.parametrize("system,recipe,seed",
                         [("ezk", "election", 3), ("zk", "barrier", 3)])
def test_zk_previously_failing_cells(system, recipe, seed):
    run = run_chaos(system, recipe, seed)
    assert run.ok, f"{run.result.reason}\nreplay: {run.repro}"


# ---------------------------------------------------------------------------
# 2. an idle healed replica must still catch up (status gossip)
# ---------------------------------------------------------------------------


def test_ds_idle_replica_catches_up_after_partition():
    ensemble, raw = make_chaos_ensemble("ds", seed=4)
    env = ensemble.env
    client = raw[0]

    def write(tag):
        yield from client.out(tag, b"payload")

    proc = env.process(write("/pre"))
    env.run(until=proc)

    # Cut the view-0 primary off from its peers; the survivors elect a
    # new view and keep executing writes the victim never sees.
    victim = ensemble.primary.node_id
    peers = [r for r in ensemble.replica_ids if r != victim]
    ensemble.net.partition([victim], peers)
    for i in range(3):
        proc = env.process(write(f"/during-{i}"))
        env.run(until=proc)

    # Heal with NO further client traffic: only the periodic status
    # gossip can tell the victim it missed a view and several slots.
    ensemble.net.heal()
    assert not ensemble.spaces_consistent()
    for _ in range(30):
        if ensemble.spaces_consistent():
            break
        env.run(until=env.now + 500.0)
    assert ensemble.spaces_consistent(), (
        f"{victim} never caught up after the heal despite the "
        "status gossip"
    )


@pytest.mark.parametrize("system,recipe,seed",
                         [("ds", "queue", 9), ("ds", "barrier", 14)])
def test_ds_previously_failing_cells(system, recipe, seed):
    run = run_chaos(system, recipe, seed)
    assert run.ok, f"{run.result.reason}\nreplay: {run.repro}"


# ---------------------------------------------------------------------------
# 3. DepSpace create is a conditional insert, not a blind out
# ---------------------------------------------------------------------------


def test_ds_create_rejects_duplicates():
    ensemble, raw = make_chaos_ensemble("ds", seed=6)
    env = ensemble.env
    first, second = DsCoordClient(raw[0]), DsCoordClient(raw[1])

    def race():
        yield from first.create("/obj", b"one")
        try:
            yield from second.create("/obj", b"two")
        except ObjectExistsError:
            return "rejected"
        return "accepted"

    proc = env.process(race())
    env.run(until=proc)
    assert proc.value == "rejected"
    # Exactly one tuple exists, and it holds the first writer's data.
    entries = ensemble.replicas[0].space("main").rdall(("/obj", ANY))
    assert entries == [("/obj", b"one")]


def test_ds_racing_counter_setups_share_one_counter():
    ensemble, raw = make_chaos_ensemble("ds", seed=7)
    env = ensemble.env
    counters = [TraditionalSharedCounter(DsCoordClient(c)) for c in raw]

    def run_client(counter):
        yield from counter.setup()
        value = yield from counter.increment()
        return value

    procs = [env.process(run_client(c)) for c in counters]
    env.run(until=env.all_of(procs))
    results = sorted(p.value for p in procs)
    assert results == [1, 2, 3], (
        f"increments {results}: racing setups left duplicate counter "
        "tuples (each client advanced a private copy)"
    )
    entries = ensemble.replicas[0].space("main").rdall((COUNTER_PATH, ANY))
    assert len(entries) == 1
