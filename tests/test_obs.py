"""Observability plane: determinism, trace well-formedness, phase
reconciliation, metrics, and the four-letter introspection endpoint.

The load-bearing guarantees:

* **off path is inert** — a run without ``ObsConfig`` must produce
  byte-identical simulated metrics and event counts to the pre-obs
  code (the figure JSONs and BENCH_core.json depend on it);
* **on path is transparent** — tracing and metrics are dict writes
  only, so an instrumented run's *simulated* behaviour is identical
  to an uninstrumented one;
* **traces are deterministic** — two same-seed runs dump
  byte-identical JSONL;
* **phases telescope** — per-trace phase sums equal end-to-end
  latency exactly (the ISSUE tolerance is 1%; construction gives 0).
"""

from __future__ import annotations

import json

import pytest

from repro.bench.workload import run_queue_workload
from repro.obs import (FOUR_LETTER_COMMANDS, ObsConfig, breakdown,
                       check_trace, format_breakdown, format_waterfall,
                       phases_of, probe)
from repro.zk import ZkEnsemble
from repro.zk.server import ZkConfig

CLIENTS = 8
MEASURE_MS = 200.0


def _traced_fig8(kernel: str = "zab", seed: int = 32):
    """One traced fig8 queue cell; returns (workload result, obs plane)."""
    obs_cfg = ObsConfig()
    config = (ZkConfig(obs=obs_cfg) if kernel == "zab"
              else ZkConfig(kernel=kernel, obs=obs_cfg))
    result = run_queue_workload("zk", CLIENTS, measure_ms=MEASURE_MS,
                                seed=seed, config=config)
    assert obs_cfg.runtime is not None, "servers never installed the plane"
    return result, obs_cfg.runtime


@pytest.fixture(scope="module")
def traced_cell():
    return _traced_fig8()


@pytest.fixture(scope="module")
def traced_dicts(traced_cell):
    _, obs = traced_cell
    return [t.to_dict() for t in obs.tracer.traces()]


class TestOffPathInert:
    def test_obs_on_matches_obs_off_exactly(self):
        """Tracing must not perturb the simulation by one event."""
        off = run_queue_workload("zk", CLIENTS, measure_ms=MEASURE_MS)
        on, _ = _traced_fig8()
        assert on.completed_ops == off.completed_ops
        assert on.throughput_ops == off.throughput_ops
        assert on.mean_latency_ms == off.mean_latency_ms
        assert on.client_kb_per_op == off.client_kb_per_op
        assert on.extra["sim_events"] == off.extra["sim_events"]

    def test_default_config_leaves_env_unobserved(self):
        ensemble = ZkEnsemble(n_replicas=3, seed=7)
        ensemble.start()
        assert ensemble.env.obs is None


class TestTraceWellFormedness:
    def test_traces_exist_and_parse(self, traced_cell, traced_dicts):
        _, obs = traced_cell
        assert len(traced_dicts) > 100
        for line in obs.tracer.dump_jsonl().splitlines():
            json.loads(line)

    def test_every_trace_well_formed(self, traced_dicts):
        defects = [d for d in map(check_trace, traced_dicts) if d]
        assert defects == [], defects[:5]

    def test_write_and_read_pipelines_present(self, traced_dicts):
        shapes = {("quorum" in (phases_of(t) or {}))
                  for t in traced_dicts if phases_of(t)}
        assert shapes == {True, False}, "expected both write and read traces"

    def test_phase_sums_reconcile(self, traced_dicts):
        bd = breakdown(traced_dicts)
        for pipeline in ("write", "read"):
            recon = bd[pipeline]["_recon"]
            assert recon["traces"] > 0
            assert recon["phase_sum_ms"] == pytest.approx(
                recon["end_to_end_ms"], rel=0.01)

    def test_renderers_produce_text(self, traced_dicts):
        text = format_breakdown(breakdown(traced_dicts))
        assert "write pipeline" in text and "drift" in text
        waterfall = format_waterfall(traced_dicts[0])
        assert "send" in waterfall and "recv" in waterfall


class TestDeterminism:
    def test_same_seed_runs_dump_identical_jsonl(self):
        _, obs_a = _traced_fig8(seed=32)
        _, obs_b = _traced_fig8(seed=32)
        assert obs_a.tracer.dump_jsonl() == obs_b.tracer.dump_jsonl()

    def test_metrics_snapshots_identical(self):
        _, obs_a = _traced_fig8(seed=32)
        _, obs_b = _traced_fig8(seed=32)
        assert obs_a.metrics.snapshot() == obs_b.metrics.snapshot()


class TestRaftCell:
    def test_raft_traces_reconcile_too(self):
        _, obs = _traced_fig8(kernel="raft")
        traces = [t.to_dict() for t in obs.tracer.traces()]
        defects = [d for d in map(check_trace, traces) if d]
        assert defects == [], defects[:5]
        recon = breakdown(traces)["write"]["_recon"]
        assert recon["traces"] > 0
        assert recon["phase_sum_ms"] == pytest.approx(
            recon["end_to_end_ms"], rel=0.01)


class TestMetrics:
    def test_protocol_counters_flow(self, traced_cell):
        _, obs = traced_cell
        for name in ("zab.proposals", "zab.commits", "zab.deliveries",
                     "zk.reads", "zk.writes", "sessions.created",
                     "net.msgs_sent", "net.bytes_sent"):
            assert obs.metrics.total(name) > 0, name

    def test_latency_histogram_populated(self, traced_cell):
        _, obs = traced_cell
        buckets = obs.metrics.histograms[("client.latency_ms", "")]
        assert sum(buckets) > 0


class TestIntrospection:
    @pytest.fixture(scope="class")
    def live_zk(self):
        obs_cfg = ObsConfig()
        ensemble = ZkEnsemble(n_replicas=3, seed=11,
                              config=ZkConfig(obs=obs_cfg))
        ensemble.start()
        client = ensemble.client()

        def work():
            yield from client.connect()
            yield from client.create("/probe", b"x")
            yield from client.get_data("/probe", watch=True)

        proc = ensemble.env.process(work())
        ensemble.env.run(until=proc)
        return ensemble

    def test_all_four_letter_words_answer(self, live_zk):
        for target in live_zk.replica_ids:
            for command in FOUR_LETTER_COMMANDS:
                payload = probe(live_zk.env, live_zk.net, target, command)
                assert payload

    def test_ruok(self, live_zk):
        assert probe(live_zk.env, live_zk.net,
                     live_zk.replica_ids[0], "ruok") == "imok"

    def test_stat_reports_role_and_zxid(self, live_zk):
        payload = probe(live_zk.env, live_zk.net,
                        live_zk.replica_ids[0], "stat")
        assert "mode:" in payload and "zxid:" in payload

    def test_mntr_carries_registry_counters(self, live_zk):
        payload = probe(live_zk.env, live_zk.net,
                        live_zk.replica_ids[0], "mntr")
        assert "zk_server_state\t" in payload
        assert "zab.proposals\t" in payload

    def test_wchs_counts_watches(self, live_zk):
        payload = probe(live_zk.env, live_zk.net,
                        live_zk.replica_ids[0], "wchs")
        assert "Total watches: 1" in payload

    def test_unknown_command_is_answered_not_dropped(self, live_zk):
        payload = probe(live_zk.env, live_zk.net,
                        live_zk.replica_ids[0], "xxxx")
        assert "unknown command" in payload

    def test_crashed_server_times_out(self, live_zk):
        victim = live_zk.replica_ids[-1]
        server = next(s for s in live_zk.servers
                      if s.node_id == victim)
        server.crash()
        with pytest.raises(TimeoutError):
            probe(live_zk.env, live_zk.net, victim, "ruok",
                  timeout_ms=200.0)
        server.recover()


class TestDepSpace:
    def test_traced_ds_run(self):
        from repro.depspace import DsEnsemble
        from repro.depspace.server import DsConfig

        obs_cfg = ObsConfig()
        ensemble = DsEnsemble(f=1, seed=11, config=DsConfig(obs=obs_cfg))
        ensemble.start()
        client = ensemble.client()

        def work():
            for i in range(6):
                yield from client.out("k", i)
            value = yield from client.rdp("k", 0)
            return value

        proc = ensemble.env.process(work())
        assert ensemble.env.run(until=proc) == ("k", 0)

        obs = obs_cfg.runtime
        traces = [t.to_dict() for t in obs.tracer.traces()]
        defects = [d for d in map(check_trace, traces) if d]
        assert defects == []
        recon = breakdown(traces)["read"]["_recon"]
        assert recon["traces"] == 7
        assert recon["phase_sum_ms"] == pytest.approx(
            recon["end_to_end_ms"], rel=0.01)
        assert obs.metrics.total("ds.requests") > 0
        assert obs.metrics.total("ds.ordered") > 0
        payload = probe(ensemble.env, ensemble.net,
                        ensemble.replica_ids[0], "mntr")
        assert "ds_exec_seq\t" in payload


class TestChaosTrace:
    def test_traced_chaos_replay_matches_untraced_verdict(self):
        from repro.chaos.explorer import run_chaos

        plain = run_chaos("zk", "counter", 17)
        obs_cfg = ObsConfig()
        traced = run_chaos("zk", "counter", 17, obs=obs_cfg)
        assert traced.ok == plain.ok
        assert traced.history.canonical() == plain.history.canonical()
        traces = [t.to_dict() for t in obs_cfg.runtime.tracer.traces()]
        assert traces
        defects = [d for d in map(check_trace, traces) if d]
        assert defects == []
