"""Property suite: delivered-prefix agreement under random interleavings.

Each case drives one kernel through a seeded random schedule of
proposals, crashes, recoveries and partitions (the generator lives in
``tests/broadcast_harness.py``), checking after every step that no node
ever delivers a stamp out of order and that any two delivered sequences
agree on their common prefix — then heals everything and requires full
convergence. The tier-1 slice runs a handful of seeds per kernel; the
25-seed sweep (with message-delay windows mixed in) rides the nightly
explorer behind ``CHAOS_FULL=1``.

These are the same interleavings the conformance teeth run against the
seeded Raft mutants, so a weakening here (fewer checks, laxer settle)
would show up there as a mutant slipping through.
"""

from __future__ import annotations

import os

import pytest

from tests.broadcast_harness import KERNELS, run_random_interleaving

TIER1_SEEDS = range(1, 6)
FULL_SEEDS = range(1, 26)


@pytest.mark.parametrize("seed", TIER1_SEEDS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_random_interleaving_keeps_prefix_agreement(kernel, seed):
    violation = run_random_interleaving(kernel, seed)
    assert violation is None, f"{kernel} seed {seed}: {violation}"


@pytest.mark.slow
@pytest.mark.skipif(os.environ.get("CHAOS_FULL") != "1",
                    reason="25-seed interleaving sweep only in CHAOS_FULL")
@pytest.mark.parametrize("kernel", KERNELS)
def test_random_interleaving_sweep(kernel):
    failures = []
    for seed in FULL_SEEDS:
        violation = run_random_interleaving(kernel, seed, with_delays=True)
        if violation:
            failures.append(f"seed {seed}: {violation}")
    assert not failures, (
        f"{kernel}: {len(failures)}/{len(list(FULL_SEEDS))} interleavings "
        "violated the broadcast contract\n" + "\n".join(failures))
