"""AtomicBroadcast conformance: one contract, three kernels.

The same suite runs over Zab (primary-backup broadcast), Raft (leader
election + log matching) and PBFT (Byzantine three-phase ordering),
asserting the contract every layer above ``core/broadcast.py`` depends
on: total order, prefix agreement, no loss across leader changes,
sync-barrier linearizability, snapshot/suffix-sync equivalence, and
monotone leadership epochs (the fencing token).

The teeth: two seeded Raft mutants — one skips the log-matching check,
one counts votes without the term/phase check — and the suite must
catch both. Log matching falls to the seeded random interleavings; the
blind vote counter is armored against them (pre-vote term filtering,
voter-side log checks, and grant stickiness all mask it), so a directed
split-brain scenario drives a stale grant from an earlier term into a
later candidacy and watches two leaders of the same term commit
different records under the same stamp.
"""

from __future__ import annotations

import pytest

from tests.broadcast_harness import (KERNELS, BroadcastCluster,
                                     run_random_interleaving)
from repro.core.broadcast import zxid_epoch
from repro.raft import RaftConfig, RaftPeer
from repro.raft.peer import RaftRole
from repro.zk.zab import NewLeader

FOREVER_MS = 1e9  # an election timeout that never fires within a test


def run_until(cluster, predicate, max_ms, step_ms=10.0):
    deadline = cluster.env.now + max_ms
    while cluster.env.now < deadline:
        if predicate():
            return True
        cluster.run(step_ms)
    return predicate()


def propose_all(cluster, values, gap_ms=60.0):
    for value in values:
        assert cluster.await_leader() is not None, "no leader to propose to"
        assert cluster.try_propose(value)
        cluster.run(gap_ms)


# ---------------------------------------------------------------------------
# The contract, kernel by kernel
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kernel", KERNELS)
class TestAtomicBroadcastContract:
    def test_total_order_and_prefix_agreement(self, kernel):
        cluster = BroadcastCluster(kernel)
        values = [f"v{i}" for i in range(1, 13)]
        propose_all(cluster, values)
        assert cluster.settle() is None
        for endpoint in cluster.endpoints.values():
            assert endpoint.payloads() == values, endpoint.node_id

    def test_no_loss_across_leader_change(self, kernel):
        cluster = BroadcastCluster(kernel)
        committed = [f"a{i}" for i in range(1, 6)]
        propose_all(cluster, committed)
        assert cluster.settle() is None

        leader = cluster.leader()
        assert leader is not None
        epoch_before = leader.kernel.leadership_epoch
        cluster.crash(leader.node_id)
        if kernel == "pbft":
            # PBFT is client-driven: a request that times out at the dead
            # primary is what triggers the view change.
            cluster.try_propose("b1")
        new_leader = cluster.await_leader()
        assert new_leader is not None, "no leader re-emerged after crash"
        assert new_leader.node_id != leader.node_id
        assert new_leader.kernel.leadership_epoch > epoch_before
        late = ["b2", "b3"] if kernel == "pbft" else ["b1", "b2", "b3"]
        propose_all(cluster, late)
        cluster.recover(leader.node_id)
        assert cluster.settle() is None

        expected = committed + ["b1", "b2", "b3"]
        for endpoint in cluster.endpoints.values():
            got = endpoint.payloads()
            # Everything committed before the crash survives it, in order.
            assert got[:len(committed)] == committed, endpoint.node_id
            # Nothing proposed after the new leader emerged is lost either.
            assert sorted(got) == sorted(expected), endpoint.node_id
            if kernel != "pbft":  # pbft may reorder the leaderless b1
                assert got == expected, endpoint.node_id

    def test_sync_barrier_covers_all_prior_deliveries(self, kernel):
        cluster = BroadcastCluster(kernel)
        propose_all(cluster, [f"v{i}" for i in range(1, 7)])
        leader = cluster.leader()
        assert leader is not None
        barrier = leader.kernel.sync_barrier()
        # Everything delivered anywhere up to this instant...
        prior = set()
        for endpoint in cluster.endpoints.values():
            prior.update(endpoint.delivered())
        # ...is stamped at or below the barrier...
        assert all(zxid <= barrier for zxid, _ in prior)
        assert cluster.settle() is None
        # ...and any node that has caught up to the barrier holds it all.
        for endpoint in cluster.alive_endpoints():
            held = set(p for p in endpoint.delivered() if p[0] <= barrier)
            assert held >= prior, endpoint.node_id

    def test_leadership_epoch_starts_at_one_and_only_grows(self, kernel):
        cluster = BroadcastCluster(kernel)
        for endpoint in cluster.endpoints.values():
            assert endpoint.kernel.leadership_epoch == 1, endpoint.node_id
        observed = {n: [1] for n in cluster.node_ids}

        def sample():
            for node_id, endpoint in cluster.endpoints.items():
                if endpoint.alive:
                    observed[node_id].append(endpoint.kernel.leadership_epoch)
            return False

        run_until(cluster, sample, 1_000.0, step_ms=50.0)
        propose_all(cluster, ["a1", "a2"])
        leader = cluster.await_leader()
        cluster.crash(leader.node_id)
        if kernel == "pbft":
            cluster.try_propose("b1")
        run_until(cluster, sample, 5_000.0, step_ms=50.0)
        cluster.recover(leader.node_id)
        run_until(cluster, sample, 3_000.0, step_ms=50.0)

        for node_id, epochs in observed.items():
            assert all(b >= a for a, b in zip(epochs, epochs[1:])), \
                f"{node_id}: leadership epoch regressed: {epochs}"
        survivors = [e for e in cluster.endpoints.values()
                     if e.node_id != leader.node_id]
        assert max(e.kernel.leadership_epoch for e in survivors) > 1, \
            "failover must bump the leadership epoch"


# ---------------------------------------------------------------------------
# Snapshot / suffix-sync equivalence
# ---------------------------------------------------------------------------


class TestCatchupEquivalence:
    """A laggard repaired by snapshot and one repaired by suffix backfill
    end with the same delivered sequence — the transport is invisible."""

    def _raft_run(self, threshold):
        cluster = BroadcastCluster(
            "raft", raft_config=RaftConfig(snapshot_threshold=threshold))
        propose_all(cluster, ["w1", "w2"])
        cluster.crash("n2")
        propose_all(cluster, [f"w{i}" for i in range(3, 15)])
        cluster.recover("n2")
        assert cluster.settle() is None
        return cluster

    def test_raft_snapshot_vs_suffix_backfill(self):
        snap = self._raft_run(threshold=8)
        suffix = self._raft_run(threshold=0)  # compaction disabled
        assert snap.endpoints["n2"].kernel.snapshots_installed >= 1, \
            "threshold 8 over a 12-entry gap must ship a snapshot"
        assert all(e.kernel.snapshots_installed == 0
                   for e in suffix.endpoints.values()), \
            "with compaction off, repair must ride AppendEntries alone"
        for node_id in snap.endpoints:
            assert (snap.endpoints[node_id].payloads()
                    == suffix.endpoints[node_id].payloads()), node_id

    def test_zab_suffix_sync_vs_full_sync(self):
        # Suffix case: a crashed follower whose log is a clean prefix of
        # the leader's gets only the missing tail (prefix_zxid > 0).
        cluster = BroadcastCluster("zab")
        propose_all(cluster, ["w1", "w2"])
        assert cluster.settle() is None
        cluster.crash("n2")
        propose_all(cluster, ["w3", "w4"])
        cluster.record_messages = True
        cluster.recover("n2")
        assert cluster.settle() is None
        syncs = [m for _s, dst, m in cluster.msg_log
                 if dst == "n2" and isinstance(m, NewLeader)]
        assert syncs and all(m.prefix_zxid > 0 for m in syncs), \
            "a clean-prefix laggard must be repaired by suffix sync"
        assert cluster.endpoints["n2"].payloads() == ["w1", "w2", "w3", "w4"]

        # Full case: a deposed leader holding an uncommitted divergent
        # suffix claims a zxid the new leader never logged, and gets the
        # whole log instead (prefix_zxid == 0).
        cluster = BroadcastCluster("zab")
        propose_all(cluster, ["w1"])
        assert cluster.settle() is None
        cluster.partition(["n0"])
        assert cluster.endpoints["n0"].kernel.propose("orphan") > 0
        new_leader = None
        for _ in range(200):
            cluster.run(100.0)
            candidates = [e for e in (cluster.endpoints["n1"],
                                      cluster.endpoints["n2"])
                          if e.kernel.is_leader]
            if candidates:
                new_leader = candidates[0]
                break
        assert new_leader is not None, "majority side failed to re-elect"
        new_leader.kernel.propose("w2")
        cluster.record_messages = True
        cluster.heal()
        assert cluster.settle() is None
        syncs = [m for _s, dst, m in cluster.msg_log
                 if dst == "n0" and isinstance(m, NewLeader)]
        assert syncs and syncs[-1].prefix_zxid == 0, \
            "a divergent log must fall back to full sync"
        for endpoint in cluster.endpoints.values():
            assert endpoint.payloads() == ["w1", "w2"], endpoint.node_id

    def test_pbft_recovery_rides_a_snapshot(self):
        # PBFT replicas delete executed slots, so a replica that missed
        # them can only be repaired by state transfer — never replay.
        cluster = BroadcastCluster("pbft")
        propose_all(cluster, ["w1", "w2"])
        assert cluster.settle() is None
        cluster.crash("n3")
        propose_all(cluster, ["w3", "w4", "w5"])
        cluster.recover("n3")
        assert cluster.settle() is None
        assert cluster.endpoints["n3"].kernel.snapshots_installed >= 1
        assert (cluster.endpoints["n3"].payloads()
                == ["w1", "w2", "w3", "w4", "w5"])


# ---------------------------------------------------------------------------
# Teeth: seeded Raft mutants the suite must catch
# ---------------------------------------------------------------------------


class RaftNoLogMatching(RaftPeer):
    """Accepts any AppendEntries regardless of the claimed predecessor."""

    def _prev_ok(self, prev_index, prev_term):
        return True


class RaftBlindVotes(RaftPeer):
    """Counts any granted vote, whatever term or phase it was cast in."""

    def _vote_valid(self, msg):
        return True


class TestRaftTeeth:
    # Seeds where the honest kernel is known-clean and the log-matching
    # mutant is known to diverge (committed-prefix disagreement or a
    # truncation-below-commit assertion).
    SWEEP_SEEDS = (1, 2)

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_interleavings_catch_skipped_log_matching(self, seed):
        assert run_random_interleaving("raft", seed) is None
        violation = run_random_interleaving("raft", seed,
                                            raft_peer_cls=RaftNoLogMatching)
        assert violation is not None, \
            f"seed {seed}: log-matching mutant survived the interleaving"

    def test_directed_divergent_suffix_catches_skipped_log_matching(self):
        """A deposed leader holding an uncommitted entry at index i is
        probed by the new leader with prev=i: the honest kernel rejects
        (term mismatch) and truncates; the mutant acks the probe and then
        commits its own divergent entry when the leader's commit index
        reaches i."""
        violation, payloads = self._divergent_suffix(RaftNoLogMatching)
        assert violation is not None and "disagreement" in violation
        violation, payloads = self._divergent_suffix(RaftPeer)
        assert violation is None
        assert payloads == ["a", "y"]

    def _divergent_suffix(self, peer_cls):
        cluster = BroadcastCluster("raft", raft_peer_cls=peer_cls)
        n0 = cluster.endpoints["n0"]
        propose_all(cluster, ["a"])
        assert cluster.settle() is None
        cluster.partition(["n0"])
        n0.kernel.propose("x")  # appended, never committable
        new_leader = None
        for _ in range(200):
            cluster.run(100.0)
            candidates = [e for e in (cluster.endpoints["n1"],
                                      cluster.endpoints["n2"])
                          if e.kernel.is_leader]
            if candidates:
                new_leader = candidates[0]
                break
        assert new_leader is not None, "majority side failed to re-elect"
        new_leader.kernel.propose("y")
        cluster.run(300.0)
        cluster.heal()
        violation = cluster.settle(10_000.0)
        return violation, n0.payloads()

    def test_directed_stale_grant_catches_blind_vote_counting(self):
        """Split brain from one stale grant. n1 runs for term 2; both
        grants crawl back over slow links. n0 retakes the cluster at
        term 3 (a real quorum) and commits "y". n1, still ignorant, runs
        for term 3; the term-2 grant then arrives. The honest kernel
        ignores it (wrong term); the mutant counts it, seats n1 as a
        second term-3 leader, and n1's entries collide with n0's at the
        same (term, index) — so followers keep "y" as a "duplicate"
        while n1 commits "X" under the very same stamp."""
        violation = self._stale_grant(RaftBlindVotes)
        assert violation is not None and "disagreement" in violation
        assert self._stale_grant(RaftPeer) is None

    def _stale_grant(self, peer_cls):
        # pre_vote=False exposes the raw vote-counting path: the mutation
        # lives in _vote_valid either way, but pre-vote's term filter
        # sits in front of it and would mask the directed timeline.
        cluster = BroadcastCluster(
            "raft", raft_peer_cls=peer_cls,
            raft_config=RaftConfig(pre_vote=False))
        n0 = cluster.endpoints["n0"]
        n1 = cluster.endpoints["n1"]
        n2 = cluster.endpoints["n2"]
        propose_all(cluster, ["a"])
        assert cluster.settle() is None

        # Slow both grant channels into n1: the term-2 grants will spend
        # seconds in flight while the cluster moves on to term 3.
        cluster.net.add_delay_rule(extra_ms=2_500.0, src="n2", dst="n1")
        cluster.net.add_delay_rule(extra_ms=6_000.0, src="n0", dst="n1")

        # n1 runs for term 2 (both peers grant; replies crawl).
        n1.kernel._timeout_ms = 0.0
        assert run_until(cluster, lambda: n1.kernel.current_term == 2, 500.0)
        n1.kernel._timeout_ms = FOREVER_MS  # freeze: candidate, term 2

        # n0 retakes the cluster at term 3 with n2's (valid) vote and
        # commits "y" there.
        n0.kernel._timeout_ms = 0.0
        assert run_until(
            cluster,
            lambda: n0.kernel.is_leader and n0.kernel.current_term == 3,
            2_000.0)
        n0.kernel._timeout_ms = FOREVER_MS
        n0.kernel.propose("y")
        assert run_until(
            cluster,
            lambda: "y" in n0.payloads() and "y" in n2.payloads(), 2_000.0)

        # n1 — ignorant of all of it — now runs for term 3 itself. Both
        # rejections are slow/ignored; what arrives next is the stale
        # term-2 grant from n2.
        n1.kernel._timeout_ms = 0.0
        assert run_until(
            cluster,
            lambda: (n1.kernel.current_term == 3
                     and n1.kernel.role is RaftRole.CANDIDATE), 500.0)
        n1.kernel._timeout_ms = FOREVER_MS
        cluster.net.clear_rules()  # in-flight messages keep their delays

        # Honest kernel: the grant is dropped on the floor and n1 stays a
        # candidate. Mutant: n1 seats itself as a second term-3 leader.
        became_leader = run_until(
            cluster, lambda: n1.kernel.is_leader, 3_500.0)
        if not became_leader:
            assert n1.kernel.role is RaftRole.CANDIDATE
            return cluster.check_safety()
        n1.kernel.propose("X")
        run_until(cluster, lambda: "X" in n1.payloads(), 2_000.0)
        violation = cluster.check_safety()
        assert violation is not None, \
            "a second same-term leader must surface as a safety violation"
        # The collision is at the same stamp: two leaders of term 3
        # minted different records under one zxid.
        stamps = {zxid for zxid, _ in n1.delivered()}
        assert any(zxid_epoch(z) == 3 for z in stamps)
        return violation
