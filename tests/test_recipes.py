"""Correctness tests for the four coordination recipes on all systems.

Traditional recipes run on plain ZooKeeper and DepSpace; extension
recipes on EZK and EDS — the same matrix as the paper's §6.
"""

import pytest

from tests.recipe_helpers import make_coords, make_ensemble, run_all
from repro.recipes import (ExtensionBarrier, ExtensionElection,
                           ExtensionQueue, ExtensionSharedCounter,
                           TraditionalBarrier, TraditionalElection,
                           TraditionalQueue, TraditionalSharedCounter)

TRADITIONAL_SYSTEMS = ("zk", "ds")
EXTENSIBLE_SYSTEMS = ("ezk", "eds")


def build_counters(kind, n_clients):
    ensemble = make_ensemble(kind, seed=21)
    coords, _raw = make_coords(ensemble, kind, n_clients)
    if kind in EXTENSIBLE_SYSTEMS:
        counters = [ExtensionSharedCounter(c) for c in coords]
        run_all(ensemble, counters[0].setup(register=True))
        run_all(ensemble, *[c.setup(register=False) for c in counters[1:]])
    else:
        counters = [TraditionalSharedCounter(c) for c in coords]
        run_all(ensemble, counters[0].setup())
    return ensemble, counters


class TestSharedCounter:
    @pytest.mark.parametrize("kind", TRADITIONAL_SYSTEMS + EXTENSIBLE_SYSTEMS)
    def test_no_lost_updates_under_contention(self, kind):
        n_clients, per_client = 4, 5
        ensemble, counters = build_counters(kind, n_clients)

        def worker(counter):
            for _ in range(per_client):
                yield from counter.increment()

        run_all(ensemble, *[worker(c) for c in counters])
        final = run_all(ensemble, counters[0].read())[0]
        assert final == n_clients * per_client

    @pytest.mark.parametrize("kind", TRADITIONAL_SYSTEMS + EXTENSIBLE_SYSTEMS)
    def test_increment_returns_new_value(self, kind):
        ensemble, counters = build_counters(kind, 1)

        def worker(counter):
            values = []
            for _ in range(3):
                value = yield from counter.increment()
                values.append(value)
            return values

        assert run_all(ensemble, worker(counters[0]))[0] == [1, 2, 3]

    @pytest.mark.parametrize("kind", TRADITIONAL_SYSTEMS)
    def test_traditional_retries_under_contention(self, kind):
        ensemble, counters = build_counters(kind, 4)

        def worker(counter):
            for _ in range(5):
                yield from counter.increment()

        run_all(ensemble, *[worker(c) for c in counters])
        attempts = sum(c.attempts for c in counters)
        successes = sum(c.successes for c in counters)
        assert successes == 20
        assert attempts > successes  # contention forced retries


def build_queues(kind, n_clients):
    ensemble = make_ensemble(kind, seed=22)
    coords, _raw = make_coords(ensemble, kind, n_clients)
    if kind in EXTENSIBLE_SYSTEMS:
        queues = [ExtensionQueue(c) for c in coords]
        run_all(ensemble, queues[0].setup(register=True))
        run_all(ensemble, *[q.setup(register=False) for q in queues[1:]])
    else:
        queues = [TraditionalQueue(c) for c in coords]
        run_all(ensemble, queues[0].setup())
    return ensemble, queues


class TestDistributedQueue:
    @pytest.mark.parametrize("kind", TRADITIONAL_SYSTEMS + EXTENSIBLE_SYSTEMS)
    def test_fifo_single_client(self, kind):
        ensemble, queues = build_queues(kind, 1)
        queue = queues[0]

        def scenario():
            for payload in (b"a", b"b", b"c"):
                yield from queue.add(payload)
            removed = []
            for _ in range(3):
                data = yield from queue.remove()
                removed.append(data)
            return removed

        assert run_all(ensemble, scenario())[0] == [b"a", b"b", b"c"]

    @pytest.mark.parametrize("kind", TRADITIONAL_SYSTEMS + EXTENSIBLE_SYSTEMS)
    def test_each_element_consumed_exactly_once(self, kind):
        n_clients, per_client = 3, 4
        ensemble, queues = build_queues(kind, n_clients)
        consumed = []

        def worker(queue, tag):
            for i in range(per_client):
                yield from queue.add(f"{tag}-{i}".encode())
                data = yield from queue.remove()
                consumed.append(data)

        run_all(ensemble,
                *[worker(q, i) for i, q in enumerate(queues)])
        assert len(consumed) == n_clients * per_client
        assert len(set(consumed)) == len(consumed)  # no duplicates

    @pytest.mark.parametrize("kind", TRADITIONAL_SYSTEMS + EXTENSIBLE_SYSTEMS)
    def test_empty_queue_remove(self, kind):
        ensemble, queues = build_queues(kind, 1)

        def scenario():
            return (yield from queues[0].remove(empty_ok=True))

        assert run_all(ensemble, scenario())[0] is None


def build_barriers(kind, n_clients):
    ensemble = make_ensemble(kind, seed=23)
    coords, _raw = make_coords(ensemble, kind, n_clients)
    if kind in EXTENSIBLE_SYSTEMS:
        barriers = [ExtensionBarrier(c, threshold=n_clients) for c in coords]
        run_all(ensemble, barriers[0].setup(register=True))
        run_all(ensemble, *[b.setup(register=False) for b in barriers[1:]])
    else:
        barriers = [TraditionalBarrier(c, threshold=n_clients)
                    for c in coords]
        run_all(ensemble, barriers[0].setup())
        run_all(ensemble, barriers[0].setup_round(0))
        run_all(ensemble, barriers[0].setup_round(1))
    return ensemble, barriers


class TestDistributedBarrier:
    @pytest.mark.parametrize("kind", TRADITIONAL_SYSTEMS + EXTENSIBLE_SYSTEMS)
    def test_nobody_passes_before_the_last_arrives(self, kind):
        n_clients = 3
        ensemble, barriers = build_barriers(kind, n_clients)
        env = ensemble.env
        last_arrival = 200.0
        exits = []

        def worker(barrier, index):
            yield env.timeout(index * 100.0)  # staggered arrivals
            yield from barrier.enter(0)
            exits.append((index, env.now))

        run_all(ensemble,
                *[worker(b, i) for i, b in enumerate(barriers)])
        assert len(exits) == n_clients
        assert all(when >= last_arrival for _idx, when in exits)

    @pytest.mark.parametrize("kind", TRADITIONAL_SYSTEMS + EXTENSIBLE_SYSTEMS)
    def test_successive_rounds(self, kind):
        n_clients = 2
        ensemble, barriers = build_barriers(kind, n_clients)
        finished = []

        def worker(barrier, index):
            yield from barrier.enter(0)
            yield from barrier.enter(1)
            finished.append(index)

        run_all(ensemble,
                *[worker(b, i) for i, b in enumerate(barriers)])
        assert sorted(finished) == [0, 1]


def build_elections(kind, n_clients):
    ensemble = make_ensemble(kind, seed=24)
    coords, raw = make_coords(ensemble, kind, n_clients)
    if kind in EXTENSIBLE_SYSTEMS:
        elections = [ExtensionElection(c) for c in coords]
        run_all(ensemble, elections[0].setup(register=True))
        run_all(ensemble, *[e.setup(register=False) for e in elections[1:]])
    else:
        elections = [TraditionalElection(c) for c in coords]
        run_all(ensemble, elections[0].setup())
    return ensemble, elections, raw


class TestLeaderElection:
    @pytest.mark.parametrize("kind", TRADITIONAL_SYSTEMS + EXTENSIBLE_SYSTEMS)
    def test_single_client_becomes_leader(self, kind):
        ensemble, elections, _raw = build_elections(kind, 1)

        def scenario():
            yield from elections[0].become_leader()
            return "led"

        assert run_all(ensemble, scenario())[0] == "led"

    @pytest.mark.parametrize("kind", TRADITIONAL_SYSTEMS + EXTENSIBLE_SYSTEMS)
    def test_leadership_rotates_on_abdication(self, kind):
        n_clients = 3
        ensemble, elections, _raw = build_elections(kind, n_clients)
        reigns = []

        def worker(election, index):
            for _ in range(2):
                yield from election.become_leader()
                reigns.append((index, ensemble.env.now))
                yield from election.abdicate()

        run_all(ensemble,
                *[worker(e, i) for i, e in enumerate(elections)])
        assert len(reigns) == n_clients * 2
        # Every client led at least once.
        assert {index for index, _t in reigns} == set(range(n_clients))
        # Reigns never overlap: timestamps are strictly ordered per event.
        times = [t for _i, t in sorted(reigns, key=lambda r: r[1])]
        assert times == sorted(times)

    @pytest.mark.parametrize("kind", TRADITIONAL_SYSTEMS + EXTENSIBLE_SYSTEMS)
    def test_leader_failure_triggers_reelection(self, kind):
        ensemble, elections, raw = build_elections(kind, 2)
        log = []

        def first(election):
            yield from election.become_leader()
            log.append(("first-leads", ensemble.env.now))

        def second(election):
            yield ensemble.env.timeout(100.0)
            yield from election.become_leader()
            log.append(("second-leads", ensemble.env.now))

        proc1 = ensemble.env.process(first(elections[0]))
        proc2 = ensemble.env.process(second(elections[1]))
        ensemble.env.run(until=proc1)
        # The first leader dies abruptly; failure detection must elect
        # the second client.
        ensemble.env.run(until=ensemble.env.now + 300.0)
        raw[0].kill()
        ensemble.env.run(until=proc2)
        assert [entry[0] for entry in log] == ["first-leads", "second-leads"]
