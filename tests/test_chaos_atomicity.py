"""Extension atomicity and /em registration durability under crashes.

The paper's extensions execute inside the replication pipeline, so a
leader (or BFT primary) crash mid-extension must be all-or-nothing:
after recovery the extension's effects are either fully applied or
absent, never half-applied — and the registration itself must survive
the leader change, firing on the new leader with its prior state.
"""

from __future__ import annotations

from repro.bench.systems import make_chaos_ensemble
from repro.chaos import History, RecordingCoord, check_counter_history
from repro.recipes import DsCoordClient, ZkCoordClient
from repro.recipes.counter import ExtensionSharedCounter

_PAUSE_MS = 400.0


def _recorded_attempts(env, coord, op, key, gen_factory, retries=10):
    """Each attempt is its own history record (failed ⇒ in-doubt)."""
    for attempt in range(retries):
        try:
            value = yield from coord.mark(op, key, None, gen_factory())
            return value
        except Exception:
            if attempt == retries - 1:
                return None
            yield env.timeout(_PAUSE_MS)
    return None


def _retrying(env, gen_factory, retries=12):
    for attempt in range(retries):
        try:
            value = yield from gen_factory()
            return value
        except Exception:
            if attempt == retries - 1:
                raise
            yield env.timeout(_PAUSE_MS)


def _make(system):
    ensemble, raw = make_chaos_ensemble(system, seed=9)
    adapt = ZkCoordClient if system in ("zk", "ezk") else DsCoordClient
    history = History()
    coords = [RecordingCoord(adapt(c), history, f"c{i}", ensemble.env)
              for i, c in enumerate(raw)]
    return ensemble, coords, history


def _crash_restart(ensemble, system, node_id, down_ms):
    """Crash ``node_id`` now, restart it ``down_ms`` later."""
    get = ensemble.server if system in ("zk", "ezk") else ensemble.replica
    get(node_id).crash()
    ensemble.env.defer(down_ms, get(node_id).recover)


def _leader_id(ensemble, system):
    if system in ("zk", "ezk"):
        return ensemble.leader.node_id
    return ensemble.primary.node_id


def _consistent(ensemble):
    check = getattr(ensemble, "trees_consistent", None) \
        or getattr(ensemble, "spaces_consistent")
    for _ in range(30):
        if check():
            return True
        ensemble.env.run(until=ensemble.env.now + 500.0)
    return check()


def _counter_crash_run(system):
    """Paced extension increments with the leader crashing mid-stream."""
    ensemble, coords, history = _make(system)
    env = ensemble.env
    counters = [ExtensionSharedCounter(c) for c in coords]

    def setup():
        yield from counters[0].setup(register=True)
        for counter in counters[1:]:
            yield from counter.setup(register=False)

    proc = env.process(setup())
    env.run(until=proc)

    # Crash the leader twice while increments are in flight: once early
    # (likely mid-extension) and once later, each healed after 1.2 s.
    start = env.now
    env.defer(310.0, _crash_restart, ensemble, system,
              _leader_id(ensemble, system), 1200.0)
    env.defer(2900.0, lambda: _crash_restart(
        ensemble, system, _leader_id(ensemble, system), 1200.0))

    def worker(i):
        yield env.timeout(40.0 * i)
        for _ in range(4):
            yield from _recorded_attempts(
                env, coords[i], "inc", "/ctr",
                lambda: counters[i].increment())
            yield env.timeout(300.0)

    workers = [env.process(worker(i)) for i in range(len(coords))]
    env.run(until=env.all_of(workers))
    env.run(until=env.now + 3000.0)

    def final_read():
        zk = getattr(coords[0].inner, "zk", None)
        if zk is not None:
            yield from zk.sync()
        yield from coords[0].mark("final-read", "/ctr", None,
                                  counters[0].read())

    proc = env.process(final_read())
    env.run(until=proc)
    assert env.now - start < 60_000.0, "workload never finished"
    return ensemble, history


def test_ezk_extension_counter_atomic_across_leader_crash():
    ensemble, history = _counter_crash_run("ezk")
    verdict = check_counter_history(history.ops())
    assert verdict.ok, f"extension increments not atomic: {verdict.reason}"
    assert _consistent(ensemble), "replicas diverged after recovery"


def test_eds_extension_counter_atomic_across_primary_crash():
    ensemble, history = _counter_crash_run("eds")
    verdict = check_counter_history(history.ops())
    assert verdict.ok, f"extension increments not atomic: {verdict.reason}"
    assert _consistent(ensemble), "replicas diverged after recovery"


# ---------------------------------------------------------------------------
# /em registration durability: the extension survives the leader change
# ---------------------------------------------------------------------------


def _registration_durability_run(system):
    ensemble, coords, _history = _make(system)
    env = ensemble.env
    counters = [ExtensionSharedCounter(c) for c in coords]

    def setup_and_incs():
        yield from counters[0].setup(register=True)
        yield from counters[1].setup(register=False)
        first = yield from counters[0].increment()
        second = yield from counters[1].increment()
        return (first, second)

    proc = env.process(setup_and_incs())
    env.run(until=proc)
    assert proc.value == (1, 2)

    # Kill the node that processed the registration; a new leader (or
    # BFT primary, after a view change) takes over.
    old_leader = _leader_id(ensemble, system)
    _crash_restart(ensemble, system, old_leader, 6000.0)
    env.run(until=env.now + 2500.0)

    def inc_after_failover():
        value = yield from _retrying(env, lambda: counters[1].increment())
        return value

    proc = env.process(inc_after_failover())
    env.run(until=proc)
    # The extension fired on the new leader AND continued the counter
    # state from before the crash — registration and data both survived.
    assert proc.value == 3, (
        f"{system}: increment after failover returned {proc.value!r}; "
        "the registration or the counter state did not survive"
    )
    assert _consistent(ensemble), "replicas diverged after recovery"


def test_ezk_registration_survives_leader_crash():
    _registration_durability_run("ezk")


def test_eds_registration_survives_primary_crash():
    _registration_durability_run("eds")
