"""End-to-end tests: clients against a replicated ZooKeeper ensemble."""

import pytest

from repro.zk import (BadVersionError, NodeExistsError, NoNodeError,
                      ZkEnsemble)
from repro.zk.txn import CreateOp, SetDataOp


@pytest.fixture
def ensemble():
    ens = ZkEnsemble(n_replicas=3, seed=1)
    ens.start()
    return ens


def run(ensemble, *generators):
    """Run generator(s) as processes; returns their results."""
    procs = [ensemble.env.process(gen) for gen in generators]
    results = []
    for proc in procs:
        results.append(ensemble.env.run(until=proc))
    return results


def connected_client(ensemble, **kwargs):
    client = ensemble.client(**kwargs)

    def _connect():
        yield from client.connect()
        return client

    return run(ensemble, _connect())[0]


class TestBasicOps:
    def test_connect_assigns_session(self, ensemble):
        client = connected_client(ensemble)
        assert client.session_id is not None
        assert client.session_id > 0

    def test_create_and_get(self, ensemble):
        client = connected_client(ensemble)

        def scenario():
            path = yield from client.create("/app", b"config")
            data, stat = yield from client.get_data("/app")
            return path, data, stat.version

        path, data, version = run(ensemble, scenario())[0]
        assert path == "/app"
        assert data == b"config"
        assert version == 0

    def test_set_and_conditional_set(self, ensemble):
        client = connected_client(ensemble)

        def scenario():
            yield from client.create("/n", b"v0")
            stat = yield from client.set_data("/n", b"v1", version=0)
            assert stat.version == 1
            try:
                yield from client.set_data("/n", b"bad", version=0)
            except BadVersionError:
                return "rejected"
            return "accepted"

        assert run(ensemble, scenario())[0] == "rejected"

    def test_delete_and_exists(self, ensemble):
        client = connected_client(ensemble)

        def scenario():
            yield from client.create("/gone", b"")
            assert (yield from client.exists("/gone")) is not None
            yield from client.delete("/gone")
            return (yield from client.exists("/gone"))

        assert run(ensemble, scenario())[0] is None

    def test_duplicate_create_raises(self, ensemble):
        client = connected_client(ensemble)

        def scenario():
            yield from client.create("/dup")
            try:
                yield from client.create("/dup")
            except NodeExistsError:
                return "exists"

        assert run(ensemble, scenario())[0] == "exists"

    def test_get_missing_raises(self, ensemble):
        client = connected_client(ensemble)

        def scenario():
            try:
                yield from client.get_data("/ghost")
            except NoNodeError:
                return "missing"

        assert run(ensemble, scenario())[0] == "missing"

    def test_children_listing(self, ensemble):
        client = connected_client(ensemble)

        def scenario():
            yield from client.create("/dir")
            yield from client.create("/dir/b")
            yield from client.create("/dir/a")
            return (yield from client.get_children("/dir"))

        assert run(ensemble, scenario())[0] == ["a", "b"]

    def test_multi_is_atomic(self, ensemble):
        client = connected_client(ensemble)

        def scenario():
            yield from client.create("/m", b"")
            # Second op fails (bad version) -> nothing applied.
            try:
                yield from client.multi([
                    CreateOp("/m/child"),
                    SetDataOp("/m", b"x", version=99),
                ])
            except BadVersionError:
                pass
            return (yield from client.exists("/m/child"))

        assert run(ensemble, scenario())[0] is None


class TestSequentialNodes:
    def test_two_clients_get_distinct_suffixes(self, ensemble):
        c1 = connected_client(ensemble)
        c2 = connected_client(ensemble)

        def setup():
            yield from c1.create("/q")

        run(ensemble, setup())
        paths = []

        def producer(client):
            path = yield from client.create("/q/e-", sequential=True)
            paths.append(path)

        run(ensemble, producer(c1), producer(c2))
        assert len(set(paths)) == 2


class TestWatches:
    def test_data_watch_fires_on_set(self, ensemble):
        watcher = connected_client(ensemble)
        writer = connected_client(ensemble)
        events = []
        watcher.watch_callbacks.append(lambda n: events.append(n))

        def scenario():
            yield from writer.create("/w", b"0")
            yield from watcher.get_data("/w", watch=True)
            yield from writer.set_data("/w", b"1")
            yield ensemble.env.timeout(10.0)

        run(ensemble, scenario())
        assert any(e.event_type == "NODE_DATA_CHANGED" and e.path == "/w"
                   for e in events)

    def test_watch_is_one_shot(self, ensemble):
        watcher = connected_client(ensemble)
        writer = connected_client(ensemble)
        events = []
        watcher.watch_callbacks.append(lambda n: events.append(n))

        def scenario():
            yield from writer.create("/w", b"0")
            yield from watcher.get_data("/w", watch=True)
            yield from writer.set_data("/w", b"1")
            yield ensemble.env.timeout(10.0)
            yield from writer.set_data("/w", b"2")  # not re-armed
            yield ensemble.env.timeout(10.0)

        run(ensemble, scenario())
        assert len(events) == 1

    def test_child_watch_fires_on_create(self, ensemble):
        watcher = connected_client(ensemble)
        writer = connected_client(ensemble)
        events = []
        watcher.watch_callbacks.append(lambda n: events.append(n))

        def scenario():
            yield from writer.create("/dir")
            yield from watcher.get_children("/dir", watch=True)
            yield from writer.create("/dir/kid")
            yield ensemble.env.timeout(10.0)

        run(ensemble, scenario())
        assert any(e.event_type == "NODE_CHILDREN_CHANGED" and e.path == "/dir"
                   for e in events)

    def test_block_unblocks_on_create(self, ensemble):
        blocker = connected_client(ensemble)
        creator = connected_client(ensemble)
        order = []

        def blocked():
            order.append(("blocking", ensemble.env.now))
            yield from blocker.block("/gate")
            order.append(("unblocked", ensemble.env.now))

        def opener():
            yield ensemble.env.timeout(50.0)
            yield from creator.create("/gate", b"")

        run(ensemble, blocked(), opener())
        assert order[0][0] == "blocking"
        assert order[1][0] == "unblocked"
        assert order[1][1] >= 50.0

    def test_block_returns_immediately_if_exists(self, ensemble):
        client = connected_client(ensemble)

        def scenario():
            yield from client.create("/present", b"")
            before = ensemble.env.now
            yield from client.block("/present")
            return ensemble.env.now - before

        elapsed = run(ensemble, scenario())[0]
        assert elapsed < 5.0


class TestEphemerals:
    def test_close_reaps_ephemerals(self, ensemble):
        owner = connected_client(ensemble)
        observer = connected_client(ensemble)

        def scenario():
            yield from owner.create("/lock", b"", ephemeral=True)
            yield from owner.close()
            yield ensemble.env.timeout(50.0)
            return (yield from observer.exists("/lock"))

        assert run(ensemble, scenario())[0] is None

    def test_session_expiry_reaps_ephemerals(self, ensemble):
        owner = connected_client(ensemble, session_timeout_ms=300.0)
        observer = connected_client(ensemble)

        def scenario():
            yield from owner.create("/lease", b"", ephemeral=True)
            owner.kill()  # abrupt death: no close-session call
            yield ensemble.env.timeout(1000.0)
            return (yield from observer.exists("/lease"))

        assert run(ensemble, scenario())[0] is None

    def test_live_session_keeps_ephemerals(self, ensemble):
        owner = connected_client(ensemble, session_timeout_ms=300.0)
        observer = connected_client(ensemble)

        def scenario():
            yield from owner.create("/alive", b"", ephemeral=True)
            yield ensemble.env.timeout(1500.0)  # pings keep it alive
            return (yield from observer.exists("/alive"))

        assert run(ensemble, scenario())[0] is not None


class TestReplication:
    def test_replicas_converge(self, ensemble):
        client = connected_client(ensemble)

        def scenario():
            for i in range(20):
                yield from client.create(f"/n{i}", str(i).encode())
            yield from client.set_data("/n0", b"updated")
            yield from client.delete("/n19")
            yield ensemble.env.timeout(100.0)

        run(ensemble, scenario())
        assert ensemble.trees_consistent()
        for server in ensemble.servers:
            assert server.tree.get_data("/n0")[0] == b"updated"
            assert "/n19" not in server.tree

    def test_reads_served_by_follower(self, ensemble):
        # Client connected to a follower still sees committed writes.
        writer = connected_client(ensemble, replica="zk0")
        reader = connected_client(ensemble, replica="zk2")

        def scenario():
            yield from writer.create("/shared", b"payload")
            yield ensemble.env.timeout(20.0)
            return (yield from reader.get_data("/shared"))

        data, _stat = run(ensemble, scenario())[0]
        assert data == b"payload"
        # The follower served the read itself (no leader hop): its CPU
        # processed at least the read item.
        assert ensemble.server("zk2").cpu.items_served > 0


class TestFailover:
    def test_follower_crash_does_not_stop_service(self, ensemble):
        client = connected_client(ensemble, replica="zk0")

        def scenario():
            yield from client.create("/before", b"")
            ensemble.server("zk2").crash()
            yield from client.create("/after", b"")
            return True

        assert run(ensemble, scenario())[0]

    def test_leader_crash_triggers_failover(self, ensemble):
        client = connected_client(ensemble, replica="zk1")

        def scenario():
            yield from client.create("/pre", b"")
            ensemble.server("zk0").crash()  # the leader
            yield ensemble.env.timeout(1500.0)  # election
            yield from client.create("/post", b"")
            return True

        assert run(ensemble, scenario())[0]
        leader = ensemble.leader
        assert leader is not None
        assert leader.node_id != "zk0"
        assert leader.tree.exists("/pre") is not None
        assert leader.tree.exists("/post") is not None

    def test_committed_writes_survive_leader_crash(self, ensemble):
        client = connected_client(ensemble, replica="zk1")

        def scenario():
            for i in range(10):
                yield from client.create(f"/d{i}", b"x")
            ensemble.server("zk0").crash()
            yield ensemble.env.timeout(1500.0)
            found = []
            for i in range(10):
                stat = yield from client.exists(f"/d{i}")
                found.append(stat is not None)
            return found

        assert all(run(ensemble, scenario())[0])

    def test_recovered_follower_catches_up(self, ensemble):
        client = connected_client(ensemble, replica="zk0")

        def scenario():
            yield from client.create("/r0", b"")
            ensemble.server("zk2").crash()
            for i in range(5):
                yield from client.create(f"/while-down{i}", b"")
            ensemble.server("zk2").recover()
            yield ensemble.env.timeout(2000.0)

        run(ensemble, scenario())
        recovered = ensemble.server("zk2").tree
        for i in range(5):
            assert recovered.exists(f"/while-down{i}") is not None
        assert ensemble.trees_consistent()

    def test_client_fails_over_to_another_replica(self, ensemble):
        client = connected_client(ensemble, replica="zk2")

        def scenario():
            yield from client.create("/x0", b"")
            ensemble.server("zk2").crash()  # the client's replica
            yield from client.create("/x1", b"")  # should retry elsewhere
            return client.replica

        new_replica = run(ensemble, scenario())[0]
        assert new_replica != "zk2"
