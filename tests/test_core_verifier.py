"""Unit tests for the AST white-list verifier."""

import pytest

from repro.core import ExtensionRejectedError, VerifierConfig, verify_source

MINIMAL = '''
class Ext(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/x")]

    def handle_operation(self, request, local):
        return local.read(request.object_id)
'''


def rejects(source, match=None, config=None):
    with pytest.raises(ExtensionRejectedError) as excinfo:
        verify_source(source, config)
    if match is not None:
        assert any(match in v for v in excinfo.value.violations), \
            excinfo.value.violations


class TestAccepts:
    def test_minimal_extension(self):
        verify_source(MINIMAL)

    def test_for_each_loops_allowed(self):
        verify_source('''
class Ext(Extension):
    def handle_operation(self, request, local):
        total = 0
        for record in local.sub_objects("/q/"):
            total = total + len(record.data)
        return total
''')

    def test_comprehensions_allowed(self):
        verify_source('''
class Ext(Extension):
    def handle_operation(self, request, local):
        records = local.sub_objects("/q/")
        names = [r.object_id for r in records if r.seq > 0]
        return sorted(names)
''')

    def test_string_methods_allowed(self):
        verify_source('''
class Ext(Extension):
    def handle_operation(self, request, local):
        oid = request.object_id
        if oid.startswith("/q/"):
            return oid.split("/")[-1]
        return ""
''')

    def test_math_and_fstrings_allowed(self):
        verify_source('''
class Ext(Extension):
    def handle_operation(self, request, local):
        c = int(local.read("/ctr"))
        local.update("/ctr", str(c + 1).encode())
        return f"value={c + 1}"
''')

    def test_class_constants_and_docstrings(self):
        verify_source('''
"""A documented extension."""
THRESHOLD = 10

class Ext(Extension):
    """Docstring."""
    LIMIT = 5

    def handle_operation(self, request, local):
        return THRESHOLD + self.LIMIT
''')

    def test_helper_methods_allowed(self):
        verify_source('''
class Ext(Extension):
    def helper(self, x):
        return x * 2

    def handle_operation(self, request, local):
        return self.helper(21)
''')


class TestRejects:
    def test_while_loop(self):
        rejects('''
class Ext(Extension):
    def handle_operation(self, request, local):
        while True:
            pass
''', match="while")

    def test_import(self):
        rejects('''
import os

class Ext(Extension):
    def handle_operation(self, request, local):
        return os.getcwd()
''', match="import")

    def test_import_inside_method(self):
        rejects('''
class Ext(Extension):
    def handle_operation(self, request, local):
        import socket
        return 1
''', match="import")

    def test_direct_recursion(self):
        rejects('''
class Ext(Extension):
    def handle_operation(self, request, local):
        return self.handle_operation(request, local)
''', match="recursive")

    def test_mutual_recursion(self):
        rejects('''
class Ext(Extension):
    def a(self, x):
        return self.b(x)

    def b(self, x):
        return self.a(x)

    def handle_operation(self, request, local):
        return self.a(1)
''', match="recursive")

    def test_dunder_attribute(self):
        rejects('''
class Ext(Extension):
    def handle_operation(self, request, local):
        return request.__class__
''', match="underscore")

    def test_non_whitelisted_builtin(self):
        rejects('''
class Ext(Extension):
    def handle_operation(self, request, local):
        return eval("1+1")
''', match="eval")

    def test_getattr_blocked(self):
        rejects('''
class Ext(Extension):
    def handle_operation(self, request, local):
        return getattr(local, "read")("/x")
''', match="getattr")

    def test_open_blocked(self):
        rejects('''
class Ext(Extension):
    def handle_operation(self, request, local):
        return open("/etc/passwd").read()
''', match="open")

    def test_range_blocked(self):
        # range enables loops not bounded by existing data (§4.1.1).
        rejects('''
class Ext(Extension):
    def handle_operation(self, request, local):
        total = 0
        for i in range(10 ** 9):
            total = total + i
        return total
''', match="range")

    def test_lambda(self):
        rejects('''
class Ext(Extension):
    def handle_operation(self, request, local):
        f = lambda x: x
        return f(1)
''', match="lambda")

    def test_try_block(self):
        rejects('''
class Ext(Extension):
    def handle_operation(self, request, local):
        try:
            return 1
        finally:
            return 2
''', match="try")

    def test_yield(self):
        rejects('''
class Ext(Extension):
    def handle_operation(self, request, local):
        yield 1
''', match="generator")

    def test_global_statement(self):
        rejects('''
X = 1

class Ext(Extension):
    def handle_operation(self, request, local):
        global X
        X = 2
        return X
''', match="global")

    def test_raise(self):
        rejects('''
class Ext(Extension):
    def handle_operation(self, request, local):
        raise ValueError("no")
''', match="raise")

    def test_nested_function(self):
        rejects('''
class Ext(Extension):
    def handle_operation(self, request, local):
        def sneaky():
            return 1
        return sneaky()
''', match="nested")

    def test_decorators(self):
        rejects('''
class Ext(Extension):
    @staticmethod
    def handle_operation(request, local):
        return 1
''')

    def test_top_level_code(self):
        rejects('''
print("hello")

class Ext(Extension):
    def handle_operation(self, request, local):
        return 1
''')

    def test_size_cap(self):
        big = "# padding\n" * 2000 + MINIMAL
        rejects(big, match="bytes")

    def test_syntax_error(self):
        rejects("class (broken", match="syntax")

    def test_unsafe_attribute(self):
        rejects('''
class Ext(Extension):
    def handle_operation(self, request, local):
        return request.shutdown()
''', match="shutdown")


class TestConfig:
    def test_extra_names_extend_whitelist(self):
        source = '''
class Ext(Extension):
    def handle_operation(self, request, local):
        return server_time()
'''
        rejects(source, match="server_time")
        verify_source(source, VerifierConfig(extra_names=("server_time",)))

    def test_verification_can_be_disabled(self):
        source = '''
import os

class Ext(Extension):
    def handle_operation(self, request, local):
        while True:
            pass
'''
        rejects(source)
        verify_source(source, VerifierConfig(enabled=False))

    def test_all_violations_reported_together(self):
        source = '''
import os

class Ext(Extension):
    def handle_operation(self, request, local):
        while True:
            pass
'''
        with pytest.raises(ExtensionRejectedError) as excinfo:
            verify_source(source)
        assert len(excinfo.value.violations) >= 2
