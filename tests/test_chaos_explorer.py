"""Full schedule exploration: 4 recipes × 4 systems × 25 seeded schedules.

Opt-in (minutes of CPU): ``CHAOS_FULL=1 PYTHONPATH=src python -m pytest
tests/test_chaos_explorer.py -m slow -q``. Every failing cell prints
its replay command line; re-run it verbatim to reproduce the failure::

    PYTHONPATH=src python -m repro.chaos --system ezk --recipe queue --seed 17
"""

from __future__ import annotations

import os

import pytest

from repro.chaos import RECIPES, run_chaos

SYSTEMS = ("zk", "ezk", "ds", "eds")
SEEDS = range(1, 26)

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(os.environ.get("CHAOS_FULL") != "1",
                       reason="set CHAOS_FULL=1 to run the full "
                              "25-seed schedule explorer"),
]


@pytest.mark.parametrize("recipe", RECIPES)
@pytest.mark.parametrize("system", SYSTEMS)
def test_explore_cell_over_seeds(system, recipe):
    failures = []
    for seed in SEEDS:
        run = run_chaos(system, recipe, seed)
        if not run.ok:
            failures.append(f"seed {seed}: {run.result.reason}\n"
                            f"  replay: {run.repro}")
    assert not failures, (
        f"{system}/{recipe}: {len(failures)}/{len(list(SEEDS))} "
        "seeded schedules failed\n" + "\n".join(failures)
    )


@pytest.mark.parametrize("recipe", RECIPES)
@pytest.mark.parametrize("system", ("zk", "ds"))
def test_explore_cell_over_seeds_raft(system, recipe):
    """The kernel axis: the same schedules over the Raft backend.

    With the default-kernel matrix above, this completes the
    {zk, ds} × {zab, pbft, raft} kernel coverage."""
    failures = []
    for seed in SEEDS:
        run = run_chaos(system, recipe, seed, kernel="raft")
        if not run.ok:
            failures.append(f"seed {seed}: {run.result.reason}\n"
                            f"  replay: {run.repro}")
    assert not failures, (
        f"{system}/{recipe} kernel=raft: {len(failures)}/"
        f"{len(list(SEEDS))} seeded schedules failed\n"
        + "\n".join(failures)
    )
