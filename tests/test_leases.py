"""Lease-protected client caching: grants, revocation, races, fencing.

Unit-tests the passive bookkeeping (LeaseTable, ClientReadCache) and
then drives the full protocol end-to-end: sub-RTT cache hits, writes
blocking on revocation with no stale read past a committed write, the
sync() cache bypass, leader failover mid-lease (epoch fence), dead
lease holders (gate deadline), and expiry-sweep close gating when the
dying session's ephemeral is leased.
"""

from __future__ import annotations

import pytest

from repro.zk import NoNodeError, Stat, ZkEnsemble
from repro.zk.leases import (CACHE_MISS, ClientReadCache, LeaseConfig,
                             LeaseTable)
from repro.zk.server import ZkConfig

LEASES = LeaseConfig(duration_ms=400.0, grace_ms=50.0, min_reads=2,
                     heat_window_ms=100.0)


@pytest.fixture
def ensemble():
    ens = ZkEnsemble(n_replicas=3, config=ZkConfig(leases=LEASES), seed=1)
    ens.start()
    return ens


def run(ensemble, *generators):
    procs = [ensemble.env.process(gen) for gen in generators]
    results = []
    for proc in procs:
        results.append(ensemble.env.run(until=proc))
    return results


def connected_client(ensemble, **kwargs):
    client = ensemble.client(**kwargs)

    def _connect():
        yield from client.connect()
        return client

    return run(ensemble, _connect())[0]


def run_until(ensemble, predicate, step_ms=50.0, limit_ms=15_000.0):
    env = ensemble.env
    deadline = env.now + limit_ms
    while not predicate() and env.now < deadline:
        env.run(until=env.now + step_ms)
    assert predicate(), f"condition never held by t={env.now:g}ms"


# ---------------------------------------------------------------------------
# unit: LeaseTable
# ---------------------------------------------------------------------------


def test_lease_config_validates():
    with pytest.raises(ValueError):
        LeaseConfig(duration_ms=0.0).validate()
    with pytest.raises(ValueError):
        LeaseConfig(grace_ms=-1.0).validate()
    LEASES.validate()


def test_grant_denied_while_write_pending():
    table = LeaseTable(LEASES)
    table.acquire_pending(("/k",))
    assert table.grant("/k", session_id=1, client_node="c", now=0.0) is None
    table.release_pending(("/k",))
    assert table.grant("/k", session_id=1, client_node="c", now=0.0)


def test_active_on_prunes_past_grace():
    table = LeaseTable(LEASES)
    lease = table.grant("/k", session_id=1, client_node="c", now=0.0)
    assert table.active_on(("/k",), now=lease.expires_at) == [lease]
    # still within grace: the holder's clock may lag ours
    assert table.active_on(
        ("/k",), now=lease.expires_at + LEASES.grace_ms - 0.01) == [lease]
    # writers resume at expiry + grace exactly
    assert table.active_on(
        ("/k",), now=lease.expires_at + LEASES.grace_ms) == []


def test_reset_for_leadership_fences_recovery():
    table = LeaseTable(LEASES)
    table.grant("/k", session_id=1, client_node="c", now=0.0)
    table.reset_for_leadership(epoch=2, now=100.0, fence=True)
    assert table.leases == {}
    assert table.recovery_until == 100.0 + LEASES.duration_ms + LEASES.grace_ms
    # epoch-scoped ids can never collide across leaderships
    lease = table.grant("/k", session_id=1, client_node="c", now=600.0)
    assert lease.lease_id >= 2_000_000


# ---------------------------------------------------------------------------
# unit: ClientReadCache
# ---------------------------------------------------------------------------


class FakeLeased:
    def __init__(self, lease_id, expires_at):
        self.lease_id = lease_id
        self.lease_expires_at = expires_at
        self.zxid = 1


def test_cache_serves_strictly_before_expiry():
    cache = ClientReadCache()
    stat = Stat()
    cache.install("/k", (b"v", stat), FakeLeased(1, 100.0), now=0.0)
    assert cache.data("/k", now=99.99) == (b"v", stat)
    assert cache.data("/k", now=100.0) is CACHE_MISS


def test_cache_revoked_ring_discards_late_grant():
    # The revoke won the race against the grant's reply: installing
    # that lease afterwards must be a no-op.
    cache = ClientReadCache()
    cache.revoke("/k", lease_id=7)
    cache.install("/k", (b"v", Stat()), FakeLeased(7, 100.0), now=0.0)
    assert cache.data("/k", now=1.0) is CACHE_MISS


def test_cache_drop_all_reports_lease_ids():
    cache = ClientReadCache()
    cache.install("/a", (b"v", Stat()), FakeLeased(3, 100.0), now=0.0)
    cache.install("/b", (b"v", Stat()), FakeLeased(5, 100.0), now=0.0)
    assert cache.drop_all() == [3, 5]
    assert cache.data("/a", now=1.0) is CACHE_MISS


# ---------------------------------------------------------------------------
# end-to-end: hits, revocation, sync bypass
# ---------------------------------------------------------------------------


def heat_up(client, path, n=3):
    """Read ``path`` enough times to earn a lease on the last read."""
    for _ in range(n):
        yield from client.get_data(path)


def test_cached_read_hits_at_sub_rtt(ensemble):
    client = connected_client(ensemble, cached_reads=True)
    env = ensemble.env
    latencies = {}

    def scenario():
        yield from client.create("/hot", b"v1")
        yield from heat_up(client, "/hot")
        t0 = env.now
        data, _stat = yield from client.get_data("/hot")
        latencies["hit"] = env.now - t0
        assert data == b"v1"

    run(ensemble, scenario())
    assert client._cache.stats["hits"] >= 1
    assert latencies["hit"] < 0.01          # sub-RTT: no network round


def test_follower_connected_client_gets_lease(ensemble):
    # Grants are leader-mediated: the follower parks the reply and
    # round-trips a LeaseRequest before attaching the lease.
    client = connected_client(ensemble, replica="zk1", cached_reads=True)

    def scenario():
        yield from client.create("/hot", b"v1")
        yield from heat_up(client, "/hot")
        data, _stat = yield from client.get_data("/hot")
        assert data == b"v1"

    run(ensemble, scenario())
    assert client._cache.stats["hits"] >= 1


def test_no_stale_read_past_committed_write(ensemble):
    reader = connected_client(ensemble, cached_reads=True)
    writer = connected_client(ensemble, replica="zk1")

    def scenario():
        yield from writer.create("/hot", b"old")
        yield from heat_up(reader, "/hot")
        assert reader._cache.data("/hot", ensemble.env.now) is not CACHE_MISS
        # The write blocks until the reader's lease is revoked; once it
        # returns, the reader must observe the new value.
        yield from writer.set_data("/hot", b"new")
        data, _stat = yield from reader.get_data("/hot")
        assert data == b"new"

    run(ensemble, scenario())
    assert reader._cache.stats["revokes"] >= 1


def test_sync_bypasses_cache_unconditionally(ensemble):
    client = connected_client(ensemble, cached_reads=True)

    def scenario():
        yield from client.create("/hot", b"v1")
        yield from heat_up(client, "/hot")
        hits_before = client._cache.stats["hits"]
        yield from client.get_data("/hot")
        assert client._cache.stats["hits"] == hits_before + 1
        # sync() is the linearization point clients reach for when
        # they need to see the latest state: it must drop every cached
        # entry so the next read round-trips even with no write around.
        yield from client.sync()
        misses_before = client._cache.stats["misses"]
        yield from client.get_data("/hot")
        assert client._cache.stats["misses"] == misses_before + 1

    run(ensemble, scenario())


# ---------------------------------------------------------------------------
# end-to-end: races
# ---------------------------------------------------------------------------


def test_leader_failover_mid_lease(ensemble):
    # zk0 leads at bootstrap; connect the lease holder elsewhere so it
    # survives the crash.
    reader = connected_client(ensemble, replica="zk1", cached_reads=True)
    writer = connected_client(ensemble, replica="zk2")
    env = ensemble.env

    def setup():
        yield from writer.create("/hot", b"old")
        yield from heat_up(reader, "/hot")
        assert reader._cache.data("/hot", env.now) is not CACHE_MISS

    run(ensemble, setup())
    ensemble.server("zk0").crash()
    run_until(ensemble, lambda: ensemble.leader is not None
              and ensemble.leader.node_id != "zk0")
    # The new leader lost the lease table; the epoch fence holds all
    # writes for a full lease duration + grace, so the orphan lease
    # expires before any post-failover write can commit.
    recovery = ensemble.leader._lease_table.recovery_until
    assert recovery > env.now

    def after():
        yield from writer.set_data("/hot", b"new")
        assert env.now >= recovery
        data, _stat = yield from reader.get_data("/hot")
        assert data == b"new"

    run(ensemble, after())


def test_dead_lease_holder_does_not_block_writes_forever(ensemble):
    reader = connected_client(ensemble, cached_reads=True)
    writer = connected_client(ensemble, replica="zk1")
    env = ensemble.env

    def setup():
        yield from writer.create("/hot", b"old")
        yield from heat_up(reader, "/hot")

    run(ensemble, setup())
    # The holder vanishes: revokes go unanswered, so the write gate
    # must fall through at lease expiry + grace, not wait on the ack.
    ensemble.net.crash(reader.node_id)
    t0 = env.now
    durations = {}

    def write():
        yield from writer.set_data("/hot", b"new")
        durations["write"] = env.now - t0

    run(ensemble, write())
    assert durations["write"] <= LEASES.duration_ms + LEASES.grace_ms + 50.0
    leader = ensemble.leader
    assert leader.tree.get_data("/hot")[0] == b"new"


def test_expiry_close_gated_on_leased_ephemeral(ensemble):
    # The dying session's ephemeral is leased by another client: the
    # CloseSession proposal must wait for that lease, and the holder
    # must never serve the ephemeral from cache after the delete.
    owner = connected_client(ensemble, session_timeout_ms=2000.0)
    holder = connected_client(ensemble, replica="zk1", cached_reads=True)
    env = ensemble.env

    def setup():
        yield from owner.create("/eph", b"mine", ephemeral=True)
        yield from heat_up(holder, "/eph")

    run(ensemble, setup())
    sid = owner.session_id
    ensemble.net.crash(owner.node_id)
    # keep the lease warm until the expiry sweep fires
    holder_alive = {"stop": False}

    def keep_reading():
        while not holder_alive["stop"]:
            try:
                yield from holder.get_data("/eph")
            except NoNodeError:
                return
            yield env.timeout(100.0)

    proc = env.process(keep_reading())
    run_until(ensemble, lambda: sid not in ensemble.leader.sessions,
              limit_ms=30_000.0)
    run_until(ensemble,
              lambda: ensemble.leader.tree.exists("/eph") is None,
              limit_ms=10_000.0)
    holder_alive["stop"] = True
    env.run(until=proc)

    def final_read():
        with pytest.raises(NoNodeError):
            yield from holder.get_data("/eph")

    run(ensemble, final_read())
