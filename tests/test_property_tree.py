"""Property-based tests: DataTree vs. a naive model, overlay equivalence."""

from hypothesis import given, settings, strategies as st

from repro.zk import DataTree, TreeOverlay, ZkError
from repro.zk.server import _apply_txn_to_tree

# Small path alphabet so operations actually collide.
_NAMES = ("a", "b", "c")
_PATHS = tuple(
    f"/{x}" for x in _NAMES
) + tuple(
    f"/{x}/{y}" for x in _NAMES for y in _NAMES
)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.sampled_from(_PATHS),
                  st.binary(max_size=4)),
        st.tuples(st.just("set"), st.sampled_from(_PATHS),
                  st.binary(max_size=4)),
        st.tuples(st.just("delete"), st.sampled_from(_PATHS),
                  st.just(b"")),
    ),
    max_size=30,
)


def _apply_model(model, op, path, data):
    """Naive dict model: path -> data, with parent/child checks."""
    parent = path.rsplit("/", 1)[0] or "/"
    children = [p for p in model if p != path and p.startswith(path + "/")]
    if op == "create":
        if path in model or (parent != "/" and parent not in model):
            raise KeyError
        model[path] = data
    elif op == "set":
        if path not in model:
            raise KeyError
        model[path] = data
    elif op == "delete":
        if path not in model or children:
            raise KeyError
        del model[path]


@settings(max_examples=60, deadline=None)
@given(_OPS)
def test_tree_matches_naive_model(ops):
    tree = DataTree()
    model = {}
    for op, path, data in ops:
        tree_failed = model_failed = False
        try:
            if op == "create":
                tree.create(path, data)
            elif op == "set":
                tree.set_data(path, data)
            else:
                tree.delete(path)
        except ZkError:
            tree_failed = True
        try:
            _apply_model(model, op, path, data)
        except KeyError:
            model_failed = True
        assert tree_failed == model_failed, (op, path)
    for path, data in model.items():
        assert tree.get_data(path)[0] == data
    assert len(tree) == len(model) + 1  # the root


@settings(max_examples=60, deadline=None)
@given(_OPS)
def test_overlay_replay_equals_direct_application(ops):
    """Applying an overlay's txn list to the base reproduces its view."""
    base = DataTree()
    base.create("/a", b"seed")
    view = TreeOverlay(base)
    applied = []
    for op, path, data in ops:
        try:
            if op == "create":
                view.create(path, data)
            elif op == "set":
                view.set_data(path, data)
            else:
                view.delete(path)
            applied.append((op, path))
        except ZkError:
            pass

    replay = DataTree()
    replay.restore(base.snapshot())
    for txn in view.txns:
        _apply_txn_to_tree(replay, txn, zxid=1, now=0.0)

    for path in _PATHS:
        in_view = view.exists(path)
        in_replay = replay.exists(path)
        assert (in_view is None) == (in_replay is None), path
        if in_view is not None:
            assert view.get_data(path)[0] == replay.get_data(path)[0]
            assert in_view.version == in_replay.version


@settings(max_examples=60, deadline=None)
@given(_OPS)
def test_overlay_never_mutates_base(ops):
    base = DataTree()
    base.create("/a", b"seed")
    fingerprint = base.fingerprint()
    view = TreeOverlay(base)
    for op, path, data in ops:
        try:
            if op == "create":
                view.create(path, data)
            elif op == "set":
                view.set_data(path, data)
            else:
                view.delete(path)
        except ZkError:
            pass
    assert base.fingerprint() == fingerprint


@settings(max_examples=40, deadline=None)
@given(_OPS)
def test_snapshot_restore_identity(ops):
    tree = DataTree()
    for op, path, data in ops:
        try:
            if op == "create":
                tree.create(path, data)
            elif op == "set":
                tree.set_data(path, data)
            else:
                tree.delete(path)
        except ZkError:
            pass
    clone = DataTree()
    clone.restore(tree.snapshot())
    assert clone.fingerprint() == tree.fingerprint()
    assert sorted(clone.paths()) == sorted(tree.paths())
