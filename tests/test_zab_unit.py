"""Protocol-level unit tests for the Zab-like broadcast.

These drive :class:`ZabPeer` instances directly over a simulated
network (no servers on top) so commit rules, epoch filtering, and
recovery behaviour are observable in isolation.
"""

import pytest

from repro.sim import Environment, LatencyModel, Network
from repro.zk.txn import SetDataTxn
from repro.zk.zab import (NotLeaderError, Role, ZabConfig, ZabPeer,
                          make_zxid, zxid_counter, zxid_epoch)


def build_cluster(n=3, heartbeat=20.0, election=80.0, window=30.0):
    env = Environment()
    net = Network(env, latency=LatencyModel(jitter_ms=0.0), seed=5)
    ids = [f"p{i}" for i in range(n)]
    delivered = {node: [] for node in ids}
    peers = {}

    for node in ids:
        def make_send(node=node):
            return lambda dst, msg: net.send(node, dst, msg)

        def make_deliver(node=node):
            return lambda record: delivered[node].append(record)

        peer = ZabPeer(env, node, ids, send=make_send(),
                       deliver=make_deliver(),
                       config=ZabConfig(heartbeat_ms=heartbeat,
                                        election_timeout_ms=election,
                                        election_window_ms=window))
        peers[node] = peer

        def make_handler(peer=peer):
            return lambda src, msg: peer.handle(src, msg)

        net.register(node, make_handler())

    for peer in peers.values():
        peer.bootstrap("p0")
    return env, net, peers, delivered


class TestZxid:
    def test_round_trip(self):
        zxid = make_zxid(3, 17)
        assert zxid_epoch(zxid) == 3
        assert zxid_counter(zxid) == 17

    def test_later_epoch_always_larger(self):
        assert make_zxid(2, 1) > make_zxid(1, 0xFFFFFFFF)


class TestReplication:
    def test_propose_commits_everywhere(self):
        env, _net, peers, delivered = build_cluster()
        peers["p0"].propose(SetDataTxn("/a", b"1"))
        env.run(until=50.0)
        for node, log in delivered.items():
            assert [r.txn.data for r in log] == [b"1"], node

    def test_delivery_order_matches_proposal_order(self):
        env, _net, peers, delivered = build_cluster()
        for i in range(10):
            peers["p0"].propose(SetDataTxn("/a", str(i).encode()))
        env.run(until=100.0)
        for log in delivered.values():
            assert [r.txn.data for r in log] == [
                str(i).encode() for i in range(10)]
            zxids = [r.zxid for r in log]
            assert zxids == sorted(zxids)

    def test_only_leader_may_propose(self):
        _env, _net, peers, _delivered = build_cluster()
        with pytest.raises(NotLeaderError):
            peers["p1"].propose(SetDataTxn("/a", b"x"))

    def test_commit_requires_quorum(self):
        env, net, peers, delivered = build_cluster()
        net.crash("p1")
        net.crash("p2")
        peers["p0"].propose(SetDataTxn("/a", b"x"))
        env.run(until=60.0)
        assert delivered["p0"] == []  # no majority ack -> no commit

    def test_commit_with_one_follower_down(self):
        env, net, peers, delivered = build_cluster()
        net.crash("p2")
        peers["p0"].propose(SetDataTxn("/a", b"x"))
        env.run(until=60.0)
        assert len(delivered["p0"]) == 1
        assert len(delivered["p1"]) == 1

    def test_exactly_once_delivery(self):
        env, _net, peers, delivered = build_cluster()
        for i in range(5):
            peers["p0"].propose(SetDataTxn("/a", str(i).encode()))
        env.run(until=200.0)  # heartbeats re-announce the commit point
        for log in delivered.values():
            assert len(log) == 5


class TestElection:
    def test_leader_crash_elects_highest_zxid(self):
        env, net, peers, delivered = build_cluster()
        peers["p0"].propose(SetDataTxn("/a", b"1"))
        env.run(until=50.0)
        net.crash("p0")
        peers["p0"].crash()
        env.run(until=800.0)
        leaders = [p for p in peers.values() if p.is_leader]
        assert len(leaders) == 1
        assert leaders[0].node_id != "p0"
        assert leaders[0].epoch > 1

    def test_new_leader_can_propose(self):
        env, net, peers, delivered = build_cluster()
        net.crash("p0")
        peers["p0"].crash()
        env.run(until=800.0)
        leader = next(p for p in peers.values() if p.is_leader)
        leader.propose(SetDataTxn("/b", b"post-failover"))
        env.run(until=env.now + 50.0)
        for node in peers:
            if node == "p0":
                continue
            assert delivered[node][-1].txn.data == b"post-failover"

    def test_committed_entries_survive_failover(self):
        env, net, peers, delivered = build_cluster()
        for i in range(5):
            peers["p0"].propose(SetDataTxn("/a", str(i).encode()))
        env.run(until=50.0)
        net.crash("p0")
        peers["p0"].crash()
        env.run(until=800.0)
        leader = next(p for p in peers.values() if p.is_leader)
        assert len(leader.log) >= 5
        assert leader.committed_zxid >= make_zxid(1, 5)

    def test_recovered_old_leader_rejoins_as_follower(self):
        env, net, peers, delivered = build_cluster()
        peers["p0"].propose(SetDataTxn("/a", b"old"))
        env.run(until=50.0)
        net.crash("p0")
        peers["p0"].crash()
        env.run(until=800.0)
        net.recover("p0")
        peers["p0"].recover()
        env.run(until=env.now + 600.0)
        assert peers["p0"].role is Role.FOLLOWER
        leader = next(p for p in peers.values() if p.is_leader)
        assert leader.node_id != "p0"

    def test_recovered_follower_catches_up_via_sync(self):
        env, net, peers, delivered = build_cluster()
        net.crash("p2")
        peers["p2"].crash()
        for i in range(4):
            peers["p0"].propose(SetDataTxn("/a", str(i).encode()))
        env.run(until=80.0)
        net.recover("p2")
        peers["p2"].recover()
        env.run(until=env.now + 600.0)
        assert len(delivered["p2"]) == 4

    def test_no_election_while_leader_healthy(self):
        env, _net, peers, _delivered = build_cluster()
        env.run(until=1000.0)
        assert peers["p0"].is_leader
        assert peers["p0"].epoch == 1  # nobody bumped the epoch

    def test_stale_leader_demoted_on_higher_epoch_heartbeat(self):
        env, net, peers, _delivered = build_cluster()
        # Partition the leader away; the others elect.
        net.partition(["p0"], ["p1", "p2"])
        env.run(until=800.0)
        new_leader = next(
            p for p in peers.values() if p.is_leader and p.node_id != "p0")
        net.heal()
        env.run(until=env.now + 300.0)
        assert peers["p0"].role is Role.FOLLOWER
        assert peers["p0"].epoch == new_leader.epoch


class TestEpochFiltering:
    def test_old_epoch_proposals_ignored(self):
        env, net, peers, delivered = build_cluster()
        net.partition(["p0"], ["p1", "p2"])
        # The isolated old leader keeps proposing into the void.
        peers["p0"].propose(SetDataTxn("/a", b"doomed"))
        env.run(until=800.0)
        net.heal()
        env.run(until=env.now + 400.0)
        new_leader = next(p for p in peers.values() if p.is_leader)
        new_leader.propose(SetDataTxn("/b", b"kept"))
        env.run(until=env.now + 100.0)
        # The uncommitted 'doomed' entry never reaches anyone's delivery.
        for log in delivered.values():
            assert all(r.txn.data != b"doomed" for r in log)
        assert delivered["p1"][-1].txn.data == b"kept"
