"""Chaos smoke: one seeded fault schedule per matrix cell.

Every recipe × system cell runs one full chaos cycle — seeded fault
schedule, recorded history, checker verdict — so a regression in any
backend's fault handling fails tier-1 immediately. The failure message
carries the exact replay command line. The full 25-seed explorer lives
in ``test_chaos_explorer.py`` behind ``CHAOS_FULL=1``.
"""

from __future__ import annotations

import pytest

from repro.chaos import RECIPES, run_chaos

SYSTEMS = ("zk", "ezk", "ds", "eds")
SMOKE_SEED = 3


@pytest.mark.parametrize("recipe", RECIPES)
@pytest.mark.parametrize("system", SYSTEMS)
def test_chaos_smoke_cell(system, recipe):
    run = run_chaos(system, recipe, SMOKE_SEED)
    assert run.ok, (
        f"{system}/{recipe} seed {SMOKE_SEED}: {run.result.reason}\n"
        f"replay: {run.repro}\n"
        f"schedule:\n{run.schedule.describe()}\n"
        f"nemesis log:\n" + "\n".join(run.nemesis_log)
    )


@pytest.mark.parametrize("system,recipe", [("zk", "counter"), ("ds", "queue")])
def test_chaos_smoke_cell_raft(system, recipe):
    """The kernel axis: one cell per family over the Raft backend."""
    run = run_chaos(system, recipe, SMOKE_SEED, kernel="raft")
    assert run.ok, (
        f"{system}/{recipe} seed {SMOKE_SEED} kernel=raft: "
        f"{run.result.reason}\n"
        f"replay: {run.repro}\n"
        f"schedule:\n{run.schedule.describe()}\n"
        f"nemesis log:\n" + "\n".join(run.nemesis_log)
    )
