"""Raft kernel: unit behavior, ZK-over-Raft end to end, epoch fencing.

The conformance suite (`test_broadcast_conformance.py`) proves the
AtomicBroadcast contract holds; this file pins the Raft-specific
mechanics the contract leaves open — deterministic seeded election
timeouts, pre-vote term hygiene, the NotLeaderError surface — and then
runs the ZooKeeper tree over the Raft kernel end to end, including the
satellite regression this PR exists for: lease epoch fencing must key
on ``broadcast.leadership_epoch`` (a Raft term here), not on Zab
internals, so a Raft leader change fences old-leadership leases exactly
as a Zab one does.
"""

from __future__ import annotations

import pytest

from repro.core.broadcast import NotLeaderError
from repro.raft import RaftConfig, RaftPeer, RaftRole
from repro.sim import Environment
from repro.zk import ZkEnsemble
from repro.zk.leases import CACHE_MISS, LeaseConfig
from repro.zk.server import ZkConfig
from tests.broadcast_harness import BroadcastCluster

LEASES = LeaseConfig(duration_ms=400.0, grace_ms=50.0, min_reads=2,
                     heat_window_ms=100.0)


# ---------------------------------------------------------------------------
# unit: the peer itself
# ---------------------------------------------------------------------------


def test_election_timeouts_are_seeded_and_per_node():
    def draws(node_id, seed):
        peer = RaftPeer(Environment(), node_id, ["a", "b"],
                        send=lambda *_: None, deliver=lambda *_: None,
                        config=RaftConfig(seed=seed))
        return [peer._draw_timeout() for _ in range(4)]

    assert draws("a", 1) == draws("a", 1), "same node+seed must replay"
    assert draws("a", 1) != draws("a", 2), "seed must matter"
    assert draws("a", 1) != draws("b", 1), \
        "nodes must draw distinct timeouts or every election split-votes"
    low = RaftConfig().election_timeout_min_ms
    high = RaftConfig().election_timeout_max_ms
    assert all(low <= t < high for t in draws("a", 3))


def test_propose_requires_established_leadership():
    cluster = BroadcastCluster("raft")
    follower = cluster.endpoints["n1"]
    with pytest.raises(NotLeaderError):
        follower.kernel.propose("nope")
    # A newly elected leader is not `is_leader` until its barrier no-op
    # commits: the inherited suffix is not safely readable before that.
    cluster.crash("n0")
    leader = cluster.await_leader()
    assert leader is not None and leader.kernel._established


def test_pre_vote_spares_the_term_from_partition_churn():
    cluster = BroadcastCluster("raft")
    assert cluster.await_leader() is not None
    cluster.try_propose("v1")
    cluster.run(500.0)
    term_before = cluster.endpoints["n0"].kernel.current_term
    # A minority node cut off for many election timeouts keeps timing
    # out; pre-vote polls fail without a quorum, so its term must not
    # inflate — rejoin then cannot depose the stable leader.
    cluster.partition(["n2"])
    cluster.run(5_000.0)
    assert cluster.endpoints["n2"].kernel.current_term == term_before
    cluster.heal()
    cluster.run(500.0)
    assert cluster.endpoints["n0"].kernel.is_leader
    assert cluster.endpoints["n0"].kernel.current_term == term_before


def test_deposed_leader_rejoins_as_follower():
    cluster = BroadcastCluster("raft")
    assert cluster.await_leader() is not None
    cluster.try_propose("v1")
    cluster.run(300.0)
    cluster.partition(["n0"])
    survivors = [cluster.endpoints["n1"], cluster.endpoints["n2"]]
    assert any(
        cluster.run(100.0) or any(e.kernel.is_leader for e in survivors)
        for _ in range(100)), "majority side failed to re-elect"
    cluster.heal()
    assert cluster.settle() is None
    n0 = cluster.endpoints["n0"].kernel
    assert n0.role is RaftRole.FOLLOWER
    assert n0.current_term > 1


# ---------------------------------------------------------------------------
# end to end: the ZooKeeper tree over Raft
# ---------------------------------------------------------------------------


@pytest.fixture
def raft_ensemble():
    ens = ZkEnsemble(n_replicas=3,
                     config=ZkConfig(kernel="raft", leases=LEASES), seed=1)
    ens.start()
    return ens


def run(ensemble, *generators):
    procs = [ensemble.env.process(gen) for gen in generators]
    results = []
    for proc in procs:
        results.append(ensemble.env.run(until=proc))
    return results


def connected_client(ensemble, **kwargs):
    client = ensemble.client(**kwargs)

    def _connect():
        yield from client.connect()
        return client

    return run(ensemble, _connect())[0]


def run_until(ensemble, predicate, step_ms=50.0, limit_ms=15_000.0):
    env = ensemble.env
    deadline = env.now + limit_ms
    while not predicate() and env.now < deadline:
        env.run(until=env.now + step_ms)
    assert predicate(), f"condition never held by t={env.now:g}ms"


def test_zk_tree_survives_raft_leader_change(raft_ensemble):
    ens = raft_ensemble
    client = connected_client(ens, replica="zk1")

    def before():
        yield from client.create("/k", b"v1")

    run(ens, before())
    assert ens.leader is not None and ens.leader.node_id == "zk0"
    ens.server("zk0").crash()
    run_until(ens, lambda: ens.leader is not None
              and ens.leader.node_id != "zk0")

    def after():
        yield from client.set_data("/k", b"v2")
        data, stat = yield from client.get_data("/k")
        assert data == b"v2"
        assert stat.version == 1

    run(ens, after())


def test_raft_leader_change_fences_leases(raft_ensemble):
    """The satellite regression: lease fencing keys on the
    kernel-neutral leadership epoch. Over Raft that is the term — after
    a failover the new leader must (a) report a strictly larger epoch,
    (b) hold writes for a full lease term + grace, and (c) mint lease
    ids scoped to the new epoch so old-leadership ids can never
    collide."""
    ens = raft_ensemble
    reader = connected_client(ens, replica="zk1", cached_reads=True)
    writer = connected_client(ens, replica="zk2")
    env = ens.env

    def setup():
        yield from writer.create("/hot", b"old")
        for _ in range(3):
            yield from reader.get_data("/hot")
        assert reader._cache.data("/hot", env.now) is not CACHE_MISS

    run(ens, setup())
    epoch_before = ens.leader.broadcast.leadership_epoch
    assert epoch_before == 1  # bootstrap leadership, no fence yet
    ens.server("zk0").crash()
    run_until(ens, lambda: ens.leader is not None
              and ens.leader.node_id != "zk0")

    new_leader = ens.leader
    epoch_after = new_leader.broadcast.leadership_epoch
    assert epoch_after > epoch_before, \
        "a Raft leader change must raise the leadership epoch"
    recovery = new_leader._lease_table.recovery_until
    assert recovery >= env.now, \
        "the epoch fence must hold writes for a full lease term"

    def write():
        yield from writer.set_data("/hot", b"new")
        assert env.now >= recovery, \
            "no write may commit inside the recovery fence"

    run(ens, write())
    # Raft followers learn the commit index from the *next*
    # AppendEntries, so give the reader's replica one heartbeat to
    # apply before the (session-consistency-off) follower read.
    run_until(ens, lambda: ens.server("zk1")._applied_zxid
              >= new_leader.broadcast.committed_zxid)

    def read_back():
        data, _stat = yield from reader.get_data("/hot")
        assert data == b"new"

    run(ens, read_back())
    # Fresh grants are scoped to the new epoch: ids from the old
    # leadership (epoch 1: ids 1_000_000 + seq) cannot collide.
    def regrant():
        for _ in range(3):
            yield from reader.get_data("/hot")

    run(ens, regrant())
    run_until(ens, lambda: any(
        lease_id >= epoch_after * 1_000_000
        for holders in new_leader._lease_table.leases.values()
        for lease_id in holders),
        limit_ms=5_000.0)
