"""Unit tests for the Table 2 adapters and op/event descriptors."""

import pytest

from repro.bench import make_coords, make_ensemble, run_all
from repro.depspace import ANY, Prefix
from repro.depspace.protocol import (InOp, InpOp, OutOp, RdAllOp, RdOp,
                                     RdpOp, RenewOp, ReplaceOp)
from repro.eds import describe_ds_op
from repro.ezk import describe_zk_op
from repro.zk.txn import (CreateOp, DeleteOp, ExistsOp, GetChildrenOp,
                          GetDataOp, MultiOp, PingOp, SetDataOp)


class TestDescribeZkOp:
    def test_read(self):
        req = describe_zk_op(GetDataOp("/x"), "7")
        assert (req.op_type, req.object_id, req.client_id) == ("read", "/x", "7")

    def test_update_carries_data_and_version(self):
        req = describe_zk_op(SetDataOp("/x", b"d", 3), "7")
        assert req.op_type == "update"
        assert req.data == b"d"
        assert req.params["version"] == 3

    def test_create_flags(self):
        req = describe_zk_op(CreateOp("/x", b"", True, True), "7")
        assert req.op_type == "create"
        assert req.params == {"ephemeral": True, "sequential": True}

    def test_delete_and_children(self):
        assert describe_zk_op(DeleteOp("/x"), "7").op_type == "delete"
        assert describe_zk_op(GetChildrenOp("/x"), "7").op_type == "sub_objects"

    def test_exists_watch_is_block(self):
        assert describe_zk_op(ExistsOp("/x", watch=True), "7").op_type == "block"
        assert describe_zk_op(ExistsOp("/x", watch=False), "7").op_type == "exists"

    def test_unmappable_ops(self):
        assert describe_zk_op(MultiOp([]), "7") is None
        assert describe_zk_op(PingOp(), "7") is None


class TestDescribeDsOp:
    def test_object_convention_reads(self):
        assert describe_ds_op(RdpOp(("/x", ANY)), "c").op_type == "read"
        assert describe_ds_op(RdOp(("/x", ANY)), "c").op_type == "block"
        assert describe_ds_op(InOp(("/x", ANY)), "c").op_type == "block"

    def test_object_convention_writes(self):
        create = describe_ds_op(OutOp(("/x", b"d")), "c")
        assert (create.op_type, create.data) == ("create", b"d")
        assert describe_ds_op(InpOp(("/x", ANY)), "c").op_type == "delete"
        update = describe_ds_op(ReplaceOp(("/x", ANY), ("/x", b"n")), "c")
        assert update.op_type == "update"

    def test_sub_objects_prefix(self):
        req = describe_ds_op(RdAllOp((Prefix("/q/"), ANY)), "c")
        assert (req.op_type, req.object_id) == ("sub_objects", "/q")

    def test_non_object_tuples_unmapped(self):
        assert describe_ds_op(OutOp((1, 2, 3)), "c") is None
        assert describe_ds_op(RdpOp((ANY, ANY)), "c") is None
        assert describe_ds_op(RenewOp(), "c") is None


def build(kind):
    ensemble = make_ensemble(kind, seed=55)
    coords, raw = make_coords(ensemble, kind, 2)
    return ensemble, coords, raw


@pytest.mark.parametrize("kind", ("zk", "ds"))
class TestAdapterSemantics:
    def test_crud_round_trip(self, kind):
        ensemble, (coord, _), _raw = build(kind)

        def scenario():
            yield from coord.create("/obj", b"v1")
            data = yield from coord.read("/obj")
            assert data == b"v1"
            yield from coord.update("/obj", b"v2")
            assert (yield from coord.read("/obj")) == b"v2"
            deleted = yield from coord.delete("/obj")
            assert deleted is True
            deleted_again = yield from coord.delete("/obj")
            return deleted_again

        assert run_all(ensemble, scenario())[0] is False

    def test_cas_requires_current_value(self, kind):
        ensemble, (coord, other), _raw = build(kind)

        def scenario():
            yield from coord.create("/c", b"0")
            yield from coord.read("/c")
            # Another client sneaks an update in.
            yield from other.update("/c", b"surprise")
            lost = yield from coord.cas("/c", b"0", b"1")
            yield from coord.read("/c")
            won = yield from coord.cas("/c", b"surprise", b"1")
            return lost, won

        lost, won = run_all(ensemble, scenario())[0]
        assert lost is False
        assert won is True

    def test_sub_objects_creation_order(self, kind):
        ensemble, (coord, _), _raw = build(kind)

        def scenario():
            yield from coord.create("/d", b"")
            yield from coord.create("/d/z", b"1")
            yield from coord.create("/d/a", b"2")
            records = yield from coord.sub_objects("/d")
            return [(r.object_id, r.data) for r in
                    sorted(records, key=lambda r: r.seq)]

        ordered = run_all(ensemble, scenario())[0]
        assert ordered == [("/d/z", b"1"), ("/d/a", b"2")]

    def test_monitor_object_reaped_on_death(self, kind):
        ensemble, (coord, observer), raw = build(kind)

        def register():
            yield from coord.create("/liveness", b"")
            own = yield from coord.monitor("/liveness/n-")
            return own

        own = run_all(ensemble, register())[0]
        raw[0].kill()
        ensemble.env.run(until=ensemble.env.now + 5000.0)

        def probe():
            # Any request forces DepSpace's deterministic lease purge.
            yield from observer.sub_objects("/liveness")
            records = yield from observer.sub_objects("/liveness")
            return [r.object_id for r in records]

        remaining = run_all(ensemble, probe())[0]
        assert own not in remaining

    def test_block_and_release(self, kind):
        ensemble, (waiter, creator), _raw = build(kind)
        log = []

        def blocked():
            yield from waiter.block("/flag")
            log.append(ensemble.env.now)

        def releaser():
            yield ensemble.env.timeout(40.0)
            yield from creator.create("/flag", b"")

        run_all(ensemble, blocked(), releaser())
        assert log and log[0] >= 40.0
