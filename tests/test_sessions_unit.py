"""Unit tests: expiry buckets, session-table snapshots, retry policy."""

import random

import pytest

from repro.core import DS_RETRY_POLICY, ZK_RETRY_POLICY, RetryPolicy
from repro.zk import ExpiryClock, SessionTable
from repro.zk.sessions import HeartbeatTracker


class TestExpiryClock:
    def test_expires_after_silence(self):
        clock = ExpiryClock(tick_ms=100.0)
        clock.track(1, 1000.0, now=0.0)
        assert clock.expired(900.0) == []
        assert clock.expired(1000.0) == []      # strict: now - seen > timeout
        assert clock.expired(1000.1) == [1]

    def test_touch_postpones(self):
        clock = ExpiryClock(tick_ms=100.0)
        clock.track(1, 1000.0, now=0.0)
        clock.touch(1, now=800.0)
        assert clock.expired(1500.0) == []
        assert clock.expired(1801.0) == [1]

    def test_touch_of_untracked_is_noop(self):
        clock = ExpiryClock()
        clock.touch(9, now=50.0)
        assert len(clock) == 0
        assert clock.expired(10_000.0) == []

    def test_forget_removes(self):
        clock = ExpiryClock(tick_ms=100.0)
        clock.track(1, 500.0, now=0.0)
        clock.forget(1)
        assert clock.expired(5000.0) == []
        assert len(clock) == 0

    def test_rebase_grants_fresh_timeout(self):
        clock = ExpiryClock(tick_ms=100.0)
        clock.track(1, 1000.0, now=0.0)
        clock.track(2, 400.0, now=0.0)
        # Both would be long overdue; a rebase at 5000 restarts them.
        clock.rebase(now=5000.0)
        assert clock.expired(5400.0) == []
        assert clock.expired(5401.0) == [2]
        assert clock.expired(6001.0) == [1, 2]

    def test_stale_bucket_entries_are_lazy_deleted(self):
        clock = ExpiryClock(tick_ms=100.0)
        clock.track(1, 300.0, now=0.0)
        for t in range(10):                    # 10 touches, 10 stale entries
            clock.touch(1, now=float(t * 10))
        assert clock.expired(350.0) == []      # sweeps discard stale entries
        assert clock.expired(391.0) == [1]     # last touch at 90 + 300

    def test_tick_must_be_positive(self):
        with pytest.raises(ValueError):
            ExpiryClock(tick_ms=0.0)

    @pytest.mark.parametrize("seed", range(6))
    def test_equivalent_to_naive_scan(self, seed):
        """Bucketing must never change *which* sessions a sweep reports."""
        rng = random.Random(f"expiry-equiv-{seed}")
        clock = ExpiryClock(tick_ms=rng.choice([50.0, 100.0, 130.0]))
        naive = HeartbeatTracker()
        now = 0.0
        live = set()
        for _ in range(400):
            now += rng.uniform(1.0, 120.0)     # sweeps at arbitrary times
            op = rng.random()
            sid = rng.randrange(1, 25)
            if op < 0.35:
                timeout = rng.choice([200.0, 500.0, 1000.0, 1700.0])
                clock.track(sid, timeout, now)
                naive.track(sid, timeout, now)
                live.add(sid)
            elif op < 0.6 and live:
                victim = rng.choice(sorted(live))
                clock.touch(victim, now)
                naive.touch(victim, now)
            elif op < 0.7 and live:
                victim = rng.choice(sorted(live))
                clock.forget(victim)
                naive.forget(victim)
                live.discard(victim)
            else:
                expired = clock.expired(now)
                assert expired == naive.expired(now), f"diverged at t={now}"
                for victim in expired:         # reap, as the server does
                    clock.forget(victim)
                    naive.forget(victim)
                    live.discard(victim)


class TestSessionTableSnapshot:
    def test_round_trip_preserves_open_and_closed(self):
        table = SessionTable()
        table.create(10, 2000.0, "alice")
        table.create(11, 4000.0, "bob")
        table.create(12, 1000.0, "carol")
        table.close(11)
        snap = table.snapshot()

        restored = SessionTable()
        restored.restore(snap)
        assert restored.ids() == [10, 12]
        assert restored.get(10).timeout_ms == 2000.0
        assert restored.get(12).client_id == "carol"
        assert restored.is_closed(11)
        assert not restored.is_closed(10)
        # The copy's closed-set keeps fencing decisions identical.
        assert restored.snapshot() == snap

    def test_restore_accepts_legacy_bare_mapping(self):
        restored = SessionTable()
        restored.restore({7: (1500.0, "old-format")})
        assert restored.ids() == [7]
        assert restored.get(7).client_id == "old-format"
        assert not restored.is_closed(7)

    def test_close_of_unknown_session_records_nothing(self):
        table = SessionTable()
        assert table.close(99) is None
        assert not table.is_closed(99)

    def test_closed_ids_survive_churn(self):
        table = SessionTable()
        for sid in range(1, 8):
            table.create(sid, 1000.0)
        for sid in (2, 4, 6):
            table.close(sid)
        assert sorted(table.snapshot()["closed"]) == [2, 4, 6]
        assert len(table) == 4


class TestRetryPolicy:
    def test_zk_policy_matches_historical_inline_backoff(self):
        """Draw-for-draw identical to the old hand-rolled client loop."""
        node = "n1"
        rng = random.Random(f"zkclient-backoff-{node}")

        def old_delay(retries: int) -> float:
            delay = min(800.0, 50.0 * (2 ** retries))
            if retries > 0:
                delay *= 0.5 + rng.random()
            return delay

        backoff = ZK_RETRY_POLICY.start(f"zkclient-backoff-{node}")
        # Interleave attempt counters as two separate _call loops would.
        for attempt in [0, 1, 2, 3, 4, 0, 0, 1, 5, 2]:
            assert backoff.delay(attempt) == old_delay(attempt)

    def test_first_attempt_consumes_no_randomness(self):
        a = ZK_RETRY_POLICY.start("seed-a")
        b = ZK_RETRY_POLICY.start("seed-a")
        assert a.delay(0) == 50.0
        assert a.delay(0) == 50.0
        # a drew nothing for attempt 0, so a and b still agree.
        assert a.delay(3) == b.delay(3)

    def test_raw_delay_caps(self):
        assert ZK_RETRY_POLICY.raw_delay_ms(0) == 50.0
        assert ZK_RETRY_POLICY.raw_delay_ms(3) == 400.0
        assert ZK_RETRY_POLICY.raw_delay_ms(10) == 800.0

    def test_ds_policy_is_the_historical_fixed_timer(self):
        backoff = DS_RETRY_POLICY.start("dsclient-backoff-c0")
        assert [backoff.delay(n) for n in range(6)] == [1000.0] * 6

    def test_jitter_bounds(self):
        backoff = RetryPolicy(100.0, 1600.0, 2.0, True).start("bounds")
        for attempt in range(1, 9):
            raw = min(1600.0, 100.0 * 2 ** attempt)
            delay = backoff.delay(attempt)
            assert 0.5 * raw <= delay < 1.5 * raw
