"""End-to-end tests for EXTENSIBLE DEPSPACE."""

import pytest

from repro.core import ExtensionCrashedError, ExtensionRejectedError
from repro.depspace import ANY, PolicyViolationError
from repro.eds import EdsEnsemble

COUNTER_EXT = '''
class CounterIncrement(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/ctr-increment")]

    def handle_operation(self, request, local):
        c = int(local.read("/ctr"))
        local.update("/ctr", str(c + 1).encode())
        return c + 1
'''

QUEUE_EXT = '''
class QueueRemove(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/queue/head")]

    def handle_operation(self, request, local):
        objs = local.sub_objects("/queue")
        if len(objs) == 0:
            return None
        head = objs[0]
        local.delete(head.object_id)
        return head.data
'''

CRASHY_EXT = '''
class Crashy(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/crashy")]

    def handle_operation(self, request, local):
        local.create("/partial-write", b"oops")
        return 1 // 0
'''

BLOCKING_EXT = '''
class EnterBarrier(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("block",), "/gate/*")]

    def handle_operation(self, request, local):
        name = request.object_id.split("/")[-1]
        local.create("/arrived/" + name)
        if len(local.sub_objects("/arrived")) >= 2:
            local.create("/gate/open")
            return "opened"
        local.block("/gate/open")
        return "blocked"
'''

EVENT_EXT = '''
class OnExpire(Extension):
    def event_subscriptions(self):
        return [EventSubscription(("deleted",), "/clients/*")]

    def handle_event(self, event, local):
        name = event.object_id.split("/")[-1]
        local.create("/expired/" + name)
'''


@pytest.fixture
def ensemble():
    ens = EdsEnsemble(f=1, seed=9)
    ens.start()
    return ens


def run(ensemble, *gens):
    procs = [ensemble.env.process(g) for g in gens]
    return [ensemble.env.run(until=p) for p in procs]


class TestRegistration:
    def test_register_on_all_replicas(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.register_extension("ctr-inc", COUNTER_EXT)
            yield ensemble.env.timeout(50.0)

        run(ensemble, scenario())
        for binding in ensemble.bindings:
            assert binding.manager.names() == ["ctr-inc"]

    def test_bad_extension_rejected(self, ensemble):
        client = ensemble.client()

        def scenario():
            try:
                yield from client.register_extension("bad", "import os\n")
            except ExtensionRejectedError:
                return "rejected"
            return "accepted"

        assert run(ensemble, scenario())[0] == "rejected"
        for binding in ensemble.bindings:
            assert binding.manager.names() == []

    def test_deregister(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.register_extension("ctr-inc", COUNTER_EXT)
            yield from client.deregister_extension("ctr-inc")
            yield ensemble.env.timeout(50.0)

        run(ensemble, scenario())
        for binding in ensemble.bindings:
            assert binding.manager.names() == []

    def test_em_space_protected_from_regular_ops(self, ensemble):
        client = ensemble.client()

        def scenario():
            try:
                yield from client.out("spy", b"x", space="_em")
            except PolicyViolationError:
                return "blocked"
            return "allowed"

        assert run(ensemble, scenario())[0] == "blocked"


class TestOperationExtensions:
    def test_counter_extension(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.out("/ctr", b"0")
            yield from client.register_extension("ctr-inc", COUNTER_EXT)
            values = []
            for _ in range(5):
                value = yield from client.rdp("/ctr-increment", ANY)
                values.append(value)
            final = yield from client.rdp("/ctr", ANY)
            return values, final

        values, final = run(ensemble, scenario())[0]
        assert values == [1, 2, 3, 4, 5]
        assert final == ("/ctr", b"5")

    def test_state_consistent_across_replicas(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.out("/ctr", b"0")
            yield from client.register_extension("ctr-inc", COUNTER_EXT)
            yield from client.rdp("/ctr-increment", ANY)
            yield ensemble.env.timeout(100.0)

        run(ensemble, scenario())
        assert ensemble.spaces_consistent()

    def test_queue_extension(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.register_extension("q-rm", QUEUE_EXT)
            yield from client.out("/queue/a", b"first")
            yield from client.out("/queue/b", b"second")
            h1 = yield from client.rdp("/queue/head", ANY)
            h2 = yield from client.rdp("/queue/head", ANY)
            h3 = yield from client.rdp("/queue/head", ANY)
            return h1, h2, h3

        h1, h2, h3 = run(ensemble, scenario())[0]
        assert h1 == b"first"
        assert h2 == b"second"
        assert h3 is None

    def test_unacked_client_bypasses_extension(self, ensemble):
        owner = ensemble.client()
        stranger = ensemble.client()

        def scenario():
            yield from owner.out("/ctr", b"0")
            yield from owner.register_extension("ctr-inc", COUNTER_EXT)
            # Stranger's read is a plain rdp: no /ctr-increment tuple.
            plain = yield from stranger.rdp("/ctr-increment", ANY)
            yield from stranger.acknowledge_extension("ctr-inc")
            boosted = yield from stranger.rdp("/ctr-increment", ANY)
            return plain, boosted

        plain, boosted = run(ensemble, scenario())[0]
        assert plain is None
        assert boosted == 1

    def test_crash_rolls_back_atomically(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.register_extension("crashy", CRASHY_EXT)
            try:
                yield from client.rdp("/crashy", ANY)
            except ExtensionCrashedError:
                pass
            else:
                return "no-error"
            return (yield from client.rdp("/partial-write", ANY))

        assert run(ensemble, scenario())[0] is None
        assert ensemble.spaces_consistent()

    def test_blocking_extension(self, ensemble):
        c1 = ensemble.client()
        c2 = ensemble.client()
        log = []

        def register():
            yield from c1.register_extension("barrier", BLOCKING_EXT)
            yield from c2.acknowledge_extension("barrier")

        run(ensemble, register())

        def enter(client, name, delay):
            yield ensemble.env.timeout(delay)
            value = yield from client.rd("/gate/" + name, ANY)
            log.append((name, ensemble.env.now))
            return value

        run(ensemble, enter(c1, "a", 0.0), enter(c2, "b", 50.0))
        assert len(log) == 2
        # The first client waited for the second.
        assert log[0][1] >= 50.0


class TestEventExtensions:
    def test_lease_expiry_triggers_event_extension(self, ensemble):
        owner = ensemble.client()
        observer = ensemble.client()

        def scenario():
            yield from observer.register_extension("on-exp", EVENT_EXT)
            yield from owner.out("/clients/w1", b"", lease_ms=400.0)
            owner.kill()
            yield ensemble.env.timeout(2000.0)
            # First request after the silence triggers the deterministic
            # purge (and with it the event extension)...
            yield from observer.rdp("/poke", ANY)
            yield ensemble.env.timeout(100.0)
            # ...whose effect the next read observes.
            return (yield from observer.rdp("/expired/w1", ANY))

        assert run(ensemble, scenario())[0] is not None
        assert ensemble.spaces_consistent()

    def test_tuple_removal_triggers_event_extension(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.register_extension("on-exp", EVENT_EXT)
            yield from client.out("/clients/w2", b"")
            yield from client.inp("/clients/w2", ANY)
            yield ensemble.env.timeout(100.0)
            return (yield from client.rdp("/expired/w2", ANY))

        assert run(ensemble, scenario())[0] is not None


class TestRecovery:
    def test_extensions_survive_replica_recovery(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.out("/ctr", b"0")
            yield from client.register_extension("ctr-inc", COUNTER_EXT)
            ensemble.replica("eds2").crash()
            yield from client.rdp("/ctr-increment", ANY)
            ensemble.replica("eds2").recover()
            yield ensemble.env.timeout(3000.0)
            yield from client.rdp("/ctr-increment", ANY)
            yield ensemble.env.timeout(200.0)

        run(ensemble, scenario())
        assert ensemble.binding("eds2").manager.names() == ["ctr-inc"]

    def test_extension_works_after_primary_crash(self, ensemble):
        client = ensemble.client()

        def scenario():
            yield from client.out("/ctr", b"0")
            yield from client.register_extension("ctr-inc", COUNTER_EXT)
            yield from client.rdp("/ctr-increment", ANY)
            ensemble.replica("eds0").crash()  # view-0 primary
            value = yield from client.rdp("/ctr-increment", ANY)
            return value

        assert run(ensemble, scenario())[0] == 2
