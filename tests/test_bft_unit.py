"""Protocol-level unit tests for the PBFT-style ordering layer."""

import pytest

from repro.depspace.bft import (BftConfig, BftPeer, BftRequest, RequestId)
from repro.sim import Environment, LatencyModel, Network


def build_cluster(n=4, request_timeout=100.0, sweep=25.0):
    env = Environment()
    net = Network(env, latency=LatencyModel(jitter_ms=0.0), seed=8)
    ids = [f"r{i}" for i in range(n)]
    executed = {node: [] for node in ids}
    peers = {}

    for node in ids:
        def make_send(node=node):
            return lambda dst, msg: net.send(node, dst, msg)

        def make_execute(node=node):
            return lambda request, ts: executed[node].append(
                (request.request_id, ts))

        peer = BftPeer(env, node, ids, send=make_send(),
                       execute=make_execute(),
                       config=BftConfig(request_timeout_ms=request_timeout,
                                        sweep_interval_ms=sweep))
        peers[node] = peer

        def make_handler(peer=peer):
            def handler(src, msg):
                if isinstance(msg, BftRequest):
                    peer.on_request(msg)
                else:
                    peer.handle(src, msg)
            return handler

        net.register(node, make_handler())
    return env, net, peers, executed


def send_request(net, peers, client, seq, op="op"):
    request = BftRequest(RequestId(client, seq), op)
    for node in peers:
        net.send(client, node, request)
    # Deliver straight into the peers (no server layer here).
    return request


class TestConfiguration:
    def test_requires_3f_plus_1(self):
        env = Environment()
        with pytest.raises(ValueError):
            BftPeer(env, "a", ["a", "b", "c"], send=lambda d, m: None,
                    execute=lambda r, t: None)

    def test_primary_is_view_mod_n(self):
        _env, _net, peers, _ex = build_cluster()
        assert peers["r0"].is_primary
        assert not peers["r1"].is_primary


class TestOrdering:
    def test_request_executes_everywhere_once(self):
        env, net, peers, executed = build_cluster()
        send_request(net, peers, "c1", 1)
        env.run(until=50.0)
        for node, log in executed.items():
            assert [rid.seq for rid, _ts in log] == [1], node

    def test_total_order_identical_across_replicas(self):
        env, net, peers, executed = build_cluster()
        for i in range(8):
            send_request(net, peers, f"c{i % 3}", i // 3 + 1)
        env.run(until=200.0)
        orders = [[rid for rid, _ts in log] for log in executed.values()]
        assert all(order == orders[0] for order in orders)
        assert len(orders[0]) == 8

    def test_agreed_timestamp_identical_across_replicas(self):
        env, net, peers, executed = build_cluster()
        send_request(net, peers, "c1", 1)
        env.run(until=50.0)
        timestamps = {log[0][1] for log in executed.values()}
        assert len(timestamps) == 1

    def test_duplicate_request_not_reexecuted(self):
        env, net, peers, executed = build_cluster()
        request = send_request(net, peers, "c1", 1)
        env.run(until=50.0)
        for node in peers:
            net.send("c1", node, request)  # retransmission
        env.run(until=100.0)
        for log in executed.values():
            assert len(log) == 1

    def test_one_crashed_backup_tolerated(self):
        env, net, peers, executed = build_cluster()
        net.crash("r3")
        peers["r3"].crash()
        send_request(net, peers, "c1", 1)
        env.run(until=80.0)
        for node in ("r0", "r1", "r2"):
            assert len(executed[node]) == 1

    def test_two_crashes_block_progress(self):
        env, net, peers, executed = build_cluster()
        for node in ("r2", "r3"):
            net.crash(node)
            peers[node].crash()
        send_request(net, peers, "c1", 1)
        env.run(until=80.0)
        assert all(not executed[n] for n in ("r0", "r1"))


class TestViewChange:
    def test_primary_crash_triggers_view_change(self):
        env, net, peers, executed = build_cluster()
        net.crash("r0")
        peers["r0"].crash()
        send_request(net, peers, "c1", 1)
        env.run(until=1500.0)
        live = [peers[n] for n in ("r1", "r2", "r3")]
        assert all(p.view >= 1 for p in live)
        assert peers[live[0].primary_id].is_primary
        for node in ("r1", "r2", "r3"):
            assert [rid.seq for rid, _ts in executed[node]] == [1]

    def test_requests_flow_in_new_view(self):
        env, net, peers, executed = build_cluster()
        net.crash("r0")
        peers["r0"].crash()
        send_request(net, peers, "c1", 1)
        env.run(until=1500.0)
        send_request(net, peers, "c1", 2)
        env.run(until=env.now + 100.0)
        for node in ("r1", "r2", "r3"):
            assert [rid.seq for rid, _ts in executed[node]] == [1, 2]

    def test_view_does_not_change_spuriously(self):
        env, net, peers, executed = build_cluster()
        for i in range(5):
            send_request(net, peers, "c1", i + 1)
        env.run(until=1000.0)
        assert all(p.view == 0 for p in peers.values())
