"""Property-based tests for the simulation substrate."""

from hypothesis import given, settings, strategies as st

from repro.sim import Environment, LatencyModel, Network, estimate_size


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("abc"), st.sampled_from("abc"),
                          st.binary(max_size=16)), max_size=30),
       st.integers(min_value=0, max_value=2**31))
def test_network_is_deterministic_per_seed(messages, seed):
    """Two runs with identical seeds deliver identically."""
    def run():
        env = Environment()
        net = Network(env, seed=seed)
        log = []
        for node in "abc":
            net.register(node, lambda src, msg, node=node:
                         log.append((env.now, node, src, msg)))
        for src, dst, payload in messages:
            net.send(src, dst, payload)
        env.run()
        return log

    assert run() == run()


@settings(max_examples=100, deadline=None)
@given(st.lists(st.binary(max_size=32), min_size=1, max_size=20))
def test_fifo_channels_never_reorder(payloads):
    """All messages on one (src, dst) channel arrive in send order."""
    env = Environment()
    net = Network(env, latency=LatencyModel(jitter_ms=5.0), seed=3)
    received = []
    net.register("dst", lambda src, msg: received.append(msg))
    for i, payload in enumerate(payloads):
        net.send("src", "dst", (i, payload))
    env.run()
    assert [i for i, _p in received] == sorted(i for i, _p in received)
    assert len(received) == len(payloads)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=20))
def test_timeouts_fire_in_order(delays):
    env = Environment()
    fired = []
    for delay in delays:
        timer = env.timeout(delay, value=delay)
        timer.add_callback(lambda e: fired.append(e.value))
    env.run()
    assert fired == sorted(delays)
    if delays:
        assert env.now == max(delays)


@settings(max_examples=200)
@given(st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(), st.floats(allow_nan=False),
              st.text(max_size=8), st.binary(max_size=8)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=4), children, max_size=4)),
    max_leaves=10))
def test_estimate_size_is_positive_and_stable(payload):
    size = estimate_size(payload)
    assert size >= 1
    assert estimate_size(payload) == size


@settings(max_examples=50)
@given(st.binary(max_size=64), st.binary(max_size=64))
def test_estimate_size_monotone_in_payload(a, b):
    """A strictly larger bytes payload never estimates smaller."""
    small, large = sorted((a, b), key=len)
    assert estimate_size(small) <= estimate_size(large)
