"""Read-path scaling: local reads, session consistency, observers, sync.

Covers the zxid-consistent read layer end to end: follower-local reads
under partition, read-your-writes across a fail-over to a lagging
replica, watch-notification-then-read ordering, ``sync()``
linearizability, observer quorum behaviour, the ConnectionLoss retry
backoff, and the EDS unordered-read opt-in.
"""

import pytest

from repro.depspace import DsEnsemble
from repro.depspace.server import DsConfig
from repro.ezk import EzkEnsemble
from repro.zk import ZkEnsemble
from repro.zk.client import ZkClient
from repro.zk.errors import ConnectionLossError
from repro.zk.server import ZkConfig
from repro.zk.sessions import ConsistencyTracker
from repro.zk.txn import (ClientReply, ClientRequest,
                          ZxidWatchNotification)


def run(ensemble, *generators):
    procs = [ensemble.env.process(gen) for gen in generators]
    return [ensemble.env.run(until=proc) for proc in procs]


def connected_client(ensemble, **kwargs):
    client = ensemble.client(**kwargs)

    def _connect():
        yield from client.connect()
        return client

    return run(ensemble, _connect())[0]


def local_reads_ensemble(n_observers=0, seed=7):
    ens = ZkEnsemble(n_replicas=3, n_observers=n_observers,
                     config=ZkConfig(local_reads=True), seed=seed)
    ens.start()
    return ens


# ---------------------------------------------------------------------------
# ConsistencyTracker unit behaviour
# ---------------------------------------------------------------------------

class TestConsistencyTracker:
    def test_floor_defaults_to_zero(self):
        tracker = ConsistencyTracker()
        assert tracker.floor(42) == 0

    def test_note_is_monotonic(self):
        tracker = ConsistencyTracker()
        tracker.note(1, 10)
        tracker.note(1, 5)          # lower zxid never lowers the floor
        assert tracker.floor(1) == 10
        tracker.note(1, 12)
        assert tracker.floor(1) == 12

    def test_forget_clears_session(self):
        tracker = ConsistencyTracker()
        tracker.note(1, 10)
        tracker.forget(1)
        assert tracker.floor(1) == 0


# ---------------------------------------------------------------------------
# Follower-local reads
# ---------------------------------------------------------------------------

class TestLocalReads:
    def test_client_tracks_zxid(self):
        ens = local_reads_ensemble()
        client = connected_client(ens)

        def scenario():
            yield from client.create("/z", b"v")
            after_write = client.last_zxid
            yield from client.get_data("/z")
            return after_write

        after_write = run(ens, scenario())[0]
        assert after_write > 0
        assert client.last_zxid >= after_write

    def test_flags_off_keeps_plain_replies(self):
        ens = ZkEnsemble(n_replicas=3, seed=7)
        ens.start()
        client = connected_client(ens)

        def scenario():
            yield from client.create("/p", b"v")
            yield from client.get_data("/p")

        run(ens, scenario())
        assert client.last_zxid == 0          # no zxid ever reached it
        assert client.track_zxid is False

    def test_read_served_while_leader_partitioned(self):
        """A follower keeps serving reads it can answer consistently even
        when it cannot reach the leader — the definition of a local read."""
        ens = local_reads_ensemble()
        client = connected_client(ens, replica="zk1")

        def scenario():
            yield from client.create("/local", b"before")
            yield from client.get_data("/local")   # floor now known at zk1
            ens.net.partition(["zk1"], ["zk0", "zk2"])
            data, _ = yield from client.get_data("/local")
            ens.net.heal()
            return data

        assert run(ens, scenario())[0] == b"before"


# ---------------------------------------------------------------------------
# Session consistency across fail-over
# ---------------------------------------------------------------------------

class TestSessionConsistency:
    def test_read_your_writes_at_lagging_follower(self):
        """A read moved to a replica that missed the session's last write
        parks until the replica catches up, then sees the write."""
        ens = local_reads_ensemble()
        client = connected_client(ens, replica="zk1")

        def scenario():
            yield from client.create("/ryw", b"old")
            # zk2 misses the next write entirely.
            ens.net.partition(["zk2"], ["zk0", "zk1"])
            yield from client.set_data("/ryw", b"new")
            # Fail the session over to the lagging replica, then heal so
            # the heartbeat-driven resync can eventually catch zk2 up.
            client.replica = "zk2"
            ens.net.heal()
            data, _ = yield from client.get_data("/ryw")
            return data

        assert run(ens, scenario())[0] == b"new"

    def test_watch_notification_then_read(self):
        """After a watch fires, a read — even at a replica that has not
        applied the triggering txn yet — observes the notified change."""
        ens = local_reads_ensemble()
        watcher = connected_client(ens, replica="zk1")
        writer = connected_client(ens, replica="zk0")
        seen = []
        watcher.watch_callbacks.append(seen.append)

        def scenario():
            yield from writer.create("/wn", b"v0")
            yield from watcher.get_data("/wn", watch=True)
            ens.net.partition(["zk2"], ["zk0", "zk1"])
            yield from writer.set_data("/wn", b"v1")
            # Wait for the notification to reach the watcher.
            while not seen:
                yield ens.env.timeout(1.0)
            # Read at the replica that missed the write.
            watcher.replica = "zk2"
            ens.net.heal()
            data, _ = yield from watcher.get_data("/wn")
            return data

        assert run(ens, scenario())[0] == b"v1"
        notification = seen[0]
        assert isinstance(notification, ZxidWatchNotification)
        assert notification.zxid > 0

    def test_sync_then_read_is_linearizable(self):
        """sync() raises the session's floor to the leader's commit point,
        so the next read cannot return a state older than any write that
        completed before the sync."""
        ens = local_reads_ensemble()
        reader = connected_client(ens, replica="zk2")
        writer = connected_client(ens, replica="zk1")

        def scenario():
            yield from writer.create("/lin", b"v0")
            ens.net.partition(["zk2"], ["zk0", "zk1"])
            yield from writer.set_data("/lin", b"v1")
            write_zxid = writer.last_zxid
            ens.net.heal()
            sync_zxid = yield from reader.sync()
            data, _ = yield from reader.get_data("/lin")
            return write_zxid, sync_zxid, data

        write_zxid, sync_zxid, data = run(ens, scenario())[0]
        assert sync_zxid >= write_zxid
        assert data == b"v1"

    def test_sync_works_without_local_reads(self):
        ens = ZkEnsemble(n_replicas=3, seed=9)
        ens.start()
        client = connected_client(ens)

        def scenario():
            yield from client.create("/s", b"")
            zxid = yield from client.sync()
            return zxid

        assert run(ens, scenario())[0] > 0


# ---------------------------------------------------------------------------
# Observers
# ---------------------------------------------------------------------------

class TestObservers:
    def test_observer_applies_stream_and_serves_reads(self):
        ens = local_reads_ensemble(n_observers=2)
        client = connected_client(ens, replica="zk3")   # an observer

        def scenario():
            yield from client.create("/obs", b"data")
            data, _ = yield from client.get_data("/obs")
            return data

        assert run(ens, scenario())[0] == b"data"
        assert ens.server("zk3").is_observer
        assert ens.trees_consistent()

    def test_observer_crash_does_not_affect_write_quorum(self):
        ens = local_reads_ensemble(n_observers=2)
        client = connected_client(ens, replica="zk1")

        def scenario():
            yield from client.create("/q", b"v0")
            ens.server("zk3").crash()
            ens.server("zk4").crash()
            # Writes must still commit: the quorum is voters-only.
            yield from client.set_data("/q", b"v1")
            ens.server("zk3").recover()
            ens.server("zk4").recover()
            yield ens.env.timeout(500.0)
            data, _ = yield from client.get_data("/q")
            return data

        assert run(ens, scenario())[0] == b"v1"
        assert ens.trees_consistent()

    def test_observer_never_becomes_leader(self):
        ens = local_reads_ensemble(n_observers=1)
        client = connected_client(ens, replica="zk1")

        def scenario():
            yield from client.create("/lead", b"v0")
            ens.server("zk0").crash()      # kill the bootstrap leader
            yield ens.env.timeout(1000.0)  # election + establishment
            yield from client.set_data("/lead", b"v1")
            data, _ = yield from client.get_data("/lead")
            return data

        assert run(ens, scenario())[0] == b"v1"
        leader = ens.leader
        assert leader is not None
        assert leader.node_id in ("zk1", "zk2")
        assert not ens.server("zk3").is_leader

    def test_client_spread_avoids_bootstrap_leader(self):
        ens = local_reads_ensemble(n_observers=2)
        replicas = {ens.client().replica for _ in range(8)}
        assert "zk0" not in replicas
        assert replicas == {"zk1", "zk2", "zk3", "zk4"}

    def test_flags_off_spread_unchanged(self):
        ens = ZkEnsemble(n_replicas=3, seed=3)
        ens.start()
        replicas = [ens.client().replica for _ in range(6)]
        assert replicas == ["zk0", "zk1", "zk2", "zk0", "zk1", "zk2"]


# ---------------------------------------------------------------------------
# ConnectionLoss retry backoff
# ---------------------------------------------------------------------------

class TestRetryBackoff:
    def _bounce_ensemble(self):
        """An ensemble plus a fake replica that always answers
        ConnectionLoss, so every retry goes through the backoff path."""
        ens = ZkEnsemble(n_replicas=3, seed=5)
        ens.start()
        arrivals = []

        def bouncer(src, msg):
            if isinstance(msg, ClientRequest):
                arrivals.append(ens.env.now)
                ens.net.send("bounce", src, ClientReply(
                    msg.xid, False, None, ConnectionLossError.code, "down"))

        ens.net.register("bounce", bouncer)
        return ens, arrivals

    def test_backoff_grows_and_caps(self):
        ens, arrivals = self._bounce_ensemble()
        # Five "replicas" allow 2*5+1 = 11 attempts before giving up.
        client = ZkClient(ens.env, ens.net, "cx", ["bounce"] * 5)

        def scenario():
            try:
                yield from client.exists("/x")
            except ConnectionLossError:
                return True
            return False

        assert run(ens, scenario())[0] is True
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert len(gaps) >= 6
        # First retry keeps the historical fixed delay.
        assert gaps[0] == pytest.approx(50.0, abs=1.0)
        # Later retries grow: 100/200/400/800 ms scaled by [0.5, 1.5).
        assert 50.0 < gaps[1] < 151.0
        assert gaps[2] > gaps[1] * 0.9
        # The cap bounds every delay even after many retries.
        assert max(gaps) < 800.0 * 1.5 + 1.0

    def test_backoff_is_deterministic_per_client(self):
        ens1, arrivals1 = self._bounce_ensemble()
        client1 = ZkClient(ens1.env, ens1.net, "cx", ["bounce"] * 4)
        ens2, arrivals2 = self._bounce_ensemble()
        client2 = ZkClient(ens2.env, ens2.net, "cx", ["bounce"] * 4)

        def scenario(client):
            try:
                yield from client.exists("/x")
            except ConnectionLossError:
                pass

        run(ens1, scenario(client1))
        run(ens2, scenario(client2))
        assert arrivals1 == arrivals2


# ---------------------------------------------------------------------------
# EZK with the read-scaling knobs
# ---------------------------------------------------------------------------

class TestEzkReadScaling:
    def test_extensible_ensemble_with_observers(self):
        ens = EzkEnsemble(n_replicas=3, n_observers=1,
                          config=ZkConfig(local_reads=True), seed=11)
        ens.start()
        client = connected_client(ens, replica="ezk3")   # the observer

        def scenario():
            yield from client.create("/app", b"cfg")
            data, _ = yield from client.get_data("/app")
            return data

        assert run(ens, scenario())[0] == b"cfg"
        # The observer carries a binding like every other replica.
        assert ens.binding("ezk3") is ens.bindings[3]

    def test_extension_reads_still_route_to_leader(self):
        """A registered extension must keep consuming matched reads even
        when unmatched reads are served locally."""
        from repro.recipes import ExtensionQueue, ZkCoordClient
        ens = EzkEnsemble(n_replicas=3, n_observers=1,
                          config=ZkConfig(local_reads=True), seed=12)
        ens.start()
        client = connected_client(ens, replica="ezk1")
        queue = ExtensionQueue(ZkCoordClient(client))

        def scenario():
            yield from queue.setup(register=True)
            yield from queue.add(b"first")
            yield from queue.add(b"second")
            element = yield from queue.remove()
            return element

        assert run(ens, scenario())[0] == b"first"


# ---------------------------------------------------------------------------
# EDS/DepSpace unordered-read opt-in
# ---------------------------------------------------------------------------

class TestDsUnorderedReadOptIn:
    def test_per_client_override(self):
        ens = DsEnsemble(f=1, config=DsConfig(unordered_reads=True), seed=13)
        ens.start()
        default = ens.client()
        opted_out = ens.client(unordered_reads=False)
        assert default.unordered_reads is True
        assert opted_out.unordered_reads is False

    def test_opt_in_client_reads_correctly(self):
        ens = DsEnsemble(f=1, config=DsConfig(unordered_reads=True), seed=14)
        ens.start()
        client = ens.client(unordered_reads=True)

        def scenario():
            yield from client.out("k", 1)
            value = yield from client.rdp("k", 1)
            return value

        assert run(ens, scenario())[0] == ("k", 1)
