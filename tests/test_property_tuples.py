"""Property-based tests for tuple matching and the tuple space."""

from hypothesis import given, settings, strategies as st

from repro.depspace import ANY, Prefix, TupleSpace, matches

_FIELDS = st.one_of(
    st.text(alphabet="abc/", max_size=6),
    st.integers(min_value=-5, max_value=5),
    st.binary(max_size=3),
    st.booleans(),
    st.none(),
)
_TUPLES = st.lists(_FIELDS, min_size=1, max_size=4).map(tuple)


@settings(max_examples=200)
@given(_TUPLES)
def test_concrete_tuple_matches_itself(entry):
    assert matches(entry, entry)


@settings(max_examples=200)
@given(_TUPLES)
def test_all_any_template_matches_everything(entry):
    template = tuple(ANY for _ in entry)
    assert matches(template, entry)


@settings(max_examples=200)
@given(_TUPLES, st.integers(min_value=0, max_value=3))
def test_single_any_generalizes(entry, index):
    index = index % len(entry)
    template = tuple(ANY if i == index else f
                     for i, f in enumerate(entry))
    assert matches(template, entry)


@settings(max_examples=200)
@given(_TUPLES, _TUPLES)
def test_length_mismatch_never_matches(a, b):
    if len(a) != len(b):
        assert not matches(a, b)


@settings(max_examples=200)
@given(st.text(alphabet="ab/", max_size=5), st.text(alphabet="ab/", max_size=8))
def test_prefix_semantics(prefix, value):
    template = (Prefix(prefix),)
    assert matches(template, (value,)) == value.startswith(prefix)


class _NaiveSpace:
    """List-based model of the tuple space."""

    def __init__(self):
        self.items = []

    def out(self, entry):
        self.items.append(tuple(entry))

    def rdp(self, template):
        for item in self.items:
            if matches(template, item):
                return item
        return None

    def inp(self, template):
        for i, item in enumerate(self.items):
            if matches(template, item):
                return self.items.pop(i)
        return None

    def rdall(self, template):
        return [item for item in self.items if matches(template, item)]


_SPACE_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("out"), _TUPLES),
        st.tuples(st.just("rdp"), _TUPLES),
        st.tuples(st.just("inp"), _TUPLES),
        st.tuples(st.just("rdall"), _TUPLES),
    ),
    max_size=40,
)


@settings(max_examples=100, deadline=None)
@given(_SPACE_OPS)
def test_space_matches_naive_model(ops):
    space = TupleSpace()
    model = _NaiveSpace()
    for op, arg in ops:
        if op == "out":
            space.out(arg)
            model.out(arg)
        elif op == "rdp":
            assert space.rdp(arg) == model.rdp(arg)
        elif op == "inp":
            assert space.inp(arg) == model.inp(arg)
        else:
            assert space.rdall(arg) == model.rdall(arg)
    assert sorted(map(repr, space)) == sorted(map(repr, model.items))


@settings(max_examples=100, deadline=None)
@given(_SPACE_OPS)
def test_snapshot_restore_preserves_behaviour(ops):
    space = TupleSpace()
    for op, arg in ops:
        if op == "out":
            space.out(arg)
        elif op == "inp":
            space.inp(arg)
    clone = TupleSpace()
    clone.restore(space.snapshot())
    assert clone.fingerprint() == space.fingerprint()
    probe = (ANY,)
    assert clone.rdall(probe) == space.rdall(probe)
