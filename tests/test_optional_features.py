"""Tests for the paper's optional/extension features.

* §4.2: trusted helper methods statically added to the sandbox
  interface (nondeterministic helpers allowed on passively-replicated
  EZK);
* §4.2: disabling verification entirely;
* BFT-SMaRt's read-only optimization for DepSpace (unordered reads with
  2f+1 reply voting).
"""

import pytest

from repro.core import (ExtensionManager, ExtensionRejectedError,
                        MemoryState, OperationRequest, VerifierConfig)
from repro.depspace import ANY, DsConfig, DsEnsemble
from repro.eds import EdsEnsemble
from repro.ezk import EzkEnsemble

HELPER_EXT = '''
class StampedWrite(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/stamp")]

    def handle_operation(self, request, local):
        t = server_time()
        local.update("/stamped", str(t).encode())
        return t
'''


class TestSandboxHelpers:
    def test_helper_injected_and_whitelisted(self):
        manager = ExtensionManager(helpers={"server_time": lambda: 123.5})
        record = manager.register("stamp", HELPER_EXT, owner="a")
        state = MemoryState()
        state.create("/stamped", b"")
        result = manager.execute_operation(
            record, OperationRequest("read", "/stamp", client_id="a"), state)
        assert result == 123.5
        assert state.read("/stamped") == b"123.5"

    def test_without_helper_verification_rejects(self):
        manager = ExtensionManager()
        with pytest.raises(ExtensionRejectedError, match="server_time"):
            manager.register("stamp", HELPER_EXT, owner="a")

    def test_helpers_compose_with_extra_names(self):
        manager = ExtensionManager(
            verifier_config=VerifierConfig(extra_names=("other",)),
            helpers={"server_time": lambda: 1.0})
        assert "server_time" in manager.verifier_config.extra_names
        assert "other" in manager.verifier_config.extra_names

    def test_helper_end_to_end_on_ezk(self):
        ensemble = EzkEnsemble(
            n_replicas=3, seed=61,
            helpers={"server_time": lambda: 42.0})
        ensemble.start()
        client = ensemble.client()

        def scenario():
            yield from client.connect()
            yield from client.create("/stamped", b"")
            yield from client.register_extension("stamp", HELPER_EXT)
            value = yield from client.get_data("/stamp")
            return value

        proc = ensemble.env.process(scenario())
        assert ensemble.env.run(until=proc) == 42.0


class TestVerificationDisabled:
    def test_disabled_verifier_accepts_banned_constructs(self):
        source = '''
class Loose(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/loose")]

    def handle_operation(self, request, local):
        total = 0
        i = 0
        while i < 3:
            total = total + i
            i = i + 1
        return total
'''
        strict = ExtensionManager()
        with pytest.raises(ExtensionRejectedError):
            strict.register("loose", source, owner="a")
        loose = ExtensionManager(VerifierConfig(enabled=False))
        record = loose.register("loose", source, owner="a")
        result = loose.execute_operation(
            record, OperationRequest("read", "/loose", client_id="a"),
            MemoryState())
        assert result == 3


def run_all(ensemble, *gens):
    procs = [ensemble.env.process(g) for g in gens]
    return [ensemble.env.run(until=p) for p in procs]


class TestUnorderedReads:
    def test_reads_return_committed_values(self):
        ensemble = DsEnsemble(f=1, seed=62,
                              config=DsConfig(unordered_reads=True))
        ensemble.start()
        client = ensemble.client()
        assert client.unordered_reads

        def scenario():
            yield from client.out("k", b"v")
            return (yield from client.rdp("k", ANY))

        assert run_all(ensemble, scenario())[0] == ("k", b"v")

    def test_byzantine_replica_masked_with_2f1_votes(self):
        ensemble = DsEnsemble(f=1, seed=63,
                              config=DsConfig(unordered_reads=True))
        ensemble.start()
        ensemble.replica("ds3").byzantine = True
        client = ensemble.client()

        def scenario():
            yield from client.out("truth", 7)
            return (yield from client.rdp("truth", ANY))

        assert run_all(ensemble, scenario())[0] == ("truth", 7)

    def test_fast_reads_skip_ordering(self):
        ensemble = DsEnsemble(f=1, seed=64,
                              config=DsConfig(unordered_reads=True))
        ensemble.start()
        client = ensemble.client()

        def scenario():
            yield from client.out("k", 1)
            before = ensemble.replica("ds0").bft._exec_seq
            for _ in range(5):
                yield from client.rdp("k", ANY)
            after = ensemble.replica("ds0").bft._exec_seq
            return after - before

        assert run_all(ensemble, scenario())[0] == 0

    def test_fast_reads_improve_read_latency(self):
        def read_latency(unordered):
            ensemble = DsEnsemble(
                f=1, seed=65, config=DsConfig(unordered_reads=unordered))
            ensemble.start()
            client = ensemble.client()

            def scenario():
                yield from client.out("k", 1)
                start = ensemble.env.now
                for _ in range(20):
                    yield from client.rdp("k", ANY)
                return (ensemble.env.now - start) / 20.0

            proc = ensemble.env.process(scenario())
            return ensemble.env.run(until=proc)

        assert read_latency(True) < read_latency(False)

    def test_extension_reads_still_ordered_on_eds(self):
        from repro.depspace import DsConfig
        ensemble = EdsEnsemble(f=1, seed=66,
                               config=DsConfig(unordered_reads=True))
        ensemble.start()
        client = ensemble.client()
        counter_ext = '''
class CounterIncrement(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/ctr-increment")]

    def handle_operation(self, request, local):
        c = int(local.read("/ctr"))
        local.update("/ctr", str(c + 1).encode())
        return c + 1
'''

        def scenario():
            yield from client.out("/ctr", b"0")
            yield from client.register_extension("ctr-inc", counter_ext)
            values = []
            for _ in range(3):
                value = yield from client.rdp("/ctr-increment", ANY)
                values.append(value)
            return values

        assert run_all(ensemble, scenario())[0] == [1, 2, 3]
        assert ensemble.spaces_consistent()
