"""Chain-replicated hot-key tier: promotion, fencing, and fallback.

Covers the PromotionPolicy hysteresis in isolation, the full
promote -> chain-serve -> demote-writeback life cycle against a live
ensemble, epoch fencing of stale members and stale routers, and the
router's ZK fallback when the chain dies under it.
"""

from __future__ import annotations

from repro.zk.ensemble import ZkEnsemble
from repro.zk.hotchain import (CONFIG_PATH, ChainConfigure, ChainForward,
                               ChainNack, ChainNode, ChainWrite,
                               HotChainConfig, HotChainController,
                               HotChainRouter, PromotionPolicy)
from repro.zk.server import ZkConfig


def make_tier(n_chain=3, promote_accesses=8, seed=1):
    ensemble = ZkEnsemble(n_replicas=3, config=ZkConfig(local_reads=True),
                          seed=seed)
    ensemble.start()
    env, net = ensemble.env, ensemble.net
    nodes = [ChainNode(env, net, f"chain{i}") for i in range(n_chain)]
    config = HotChainConfig(promote_accesses=promote_accesses,
                            report_interval_ms=50.0)
    controller = HotChainController(env, net, ensemble.client("ctlzk"),
                                    nodes, config)
    router = HotChainRouter(ensemble.client("clizk"), controller.node_id,
                            config)
    return ensemble, nodes, controller, router


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


# ---------------------------------------------------------------------------
# promotion policy (pure)
# ---------------------------------------------------------------------------


def test_policy_promotes_at_threshold():
    policy = PromotionPolicy(HotChainConfig(promote_accesses=10))
    promote, demote = policy.decide({"/a": 9, "/b": 10})
    assert promote == ["/b"] and demote == []
    assert policy.promoted == {"/b"}


def test_policy_demotes_only_after_quiet_windows():
    policy = PromotionPolicy(HotChainConfig(promote_accesses=10,
                                            demote_windows=3))
    policy.decide({"/a": 20})
    assert policy.promoted == {"/a"}
    for _ in range(2):
        _, demote = policy.decide({})
        assert demote == []
    _, demote = policy.decide({})
    assert demote == ["/a"] and policy.promoted == set()


def test_policy_hot_window_resets_quiet_streak():
    policy = PromotionPolicy(HotChainConfig(promote_accesses=10,
                                            demote_windows=2))
    policy.decide({"/a": 20})
    policy.decide({})                    # quiet 1 of 2
    policy.decide({"/a": 20})            # hot again: streak resets
    _, demote = policy.decide({})        # quiet 1 of 2 again
    assert demote == [] and policy.promoted == {"/a"}


# ---------------------------------------------------------------------------
# end-to-end life cycle
# ---------------------------------------------------------------------------


def test_promote_serve_demote_roundtrip():
    ensemble, nodes, controller, router = make_tier()
    env = ensemble.env

    def scenario():
        yield from controller.zk.connect()
        yield from router.zk.connect()
        yield from controller.start()
        yield from router.zk.create("/hot", b"v0")
        for i in range(80):
            yield from router.update("/hot", b"w%d" % i)
            value = yield from router.read("/hot")
            assert value == b"w%d" % i
            yield env.timeout(2.0)
        assert "/hot" in router.keys, "key never promoted"
        assert router.stats["chain_reads"] > 0
        assert router.stats["chain_writes"] > 0
        # every member holds the acked value (tail-ack = fully replicated)
        yield from router.update("/hot", b"final")
        for node in nodes:
            assert node.store["/hot"][0] == b"final"
        # go quiet until the hysteresis demotes, then the znode must
        # hold the chain's final value (drain write-back).
        for _ in range(10):
            yield env.timeout(60.0)
        yield from router.refresh()
        assert "/hot" not in router.keys
        data, _stat = yield from router.zk.get_data("/hot")
        assert data == b"final"

    drive(env, scenario())
    assert controller.stats["promotions"] == 1
    assert controller.stats["demotions"] == 1


def test_chain_tail_read_is_sub_quorum_latency():
    """A promoted read costs chain hops only — far below a ZK write."""
    ensemble, nodes, controller, router = make_tier()
    env = ensemble.env
    timings = {}

    def scenario():
        yield from controller.zk.connect()
        yield from router.zk.connect()
        yield from controller.start()
        yield from router.zk.create("/hot", b"v0")
        yield from router.zk.create("/nothot", b"x")
        for _ in range(80):
            yield from router.read("/hot")
            yield env.timeout(2.0)
        assert "/hot" in router.keys
        t0 = env.now
        yield from router.read("/hot")
        timings["chain_read"] = env.now - t0
        t0 = env.now
        yield from router.zk.set_data("/nothot", b"y")
        timings["zk_write"] = env.now - t0

    drive(env, scenario())
    assert timings["chain_read"] < timings["zk_write"]


# ---------------------------------------------------------------------------
# epoch fencing
# ---------------------------------------------------------------------------


def test_stale_epoch_forward_is_nacked():
    ensemble, nodes, controller, router = make_tier()
    env, net = ensemble.env, ensemble.net
    head, mid, tail = nodes
    nacks = []
    net.register("origin", lambda src, msg: nacks.append(msg))

    def scenario():
        for node in nodes:
            node.handle_message(
                "test", ChainConfigure(2, tuple(n.node_id for n in nodes),
                                       ("/k",)))
        # mid was reconfigured ahead (epoch 3 without /k's chain):
        mid.handle_message("test", ChainConfigure(3, (mid.node_id,), ()))
        net.send("origin", head.node_id,
                 ChainWrite(7, "/k", b"v", "origin"))
        yield env.timeout(5.0)

    drive(env, scenario())
    assert len(nacks) == 1 and isinstance(nacks[0], ChainNack)
    assert nacks[0].xid == 7
    # the tail never saw the write: no partial ack possible
    assert "/k" not in tail.store


def test_crashed_member_is_reconfigured_out():
    ensemble, nodes, controller, router = make_tier()
    env = ensemble.env

    def scenario():
        yield from controller.zk.connect()
        yield from router.zk.connect()
        yield from controller.start()
        yield from router.zk.create("/hot", b"v0")
        for _ in range(80):
            yield from router.read("/hot")
            yield env.timeout(2.0)
        assert "/hot" in router.keys
        nodes[1].crash()
        # keep traffic flowing so reports/refreshes continue
        for i in range(40):
            yield from router.update("/hot", b"r%d" % i)
            value = yield from router.read("/hot")
            assert value == b"r%d" % i
            yield env.timeout(10.0)
        yield from router.refresh()
        assert nodes[1].node_id not in router.members
        assert len(router.members) == 2

    drive(env, scenario())
    assert controller.stats["members_dropped"] == 1


def test_router_with_stale_config_falls_back_to_zk():
    ensemble, nodes, controller, router = make_tier()
    env = ensemble.env

    def scenario():
        yield from controller.zk.connect()
        yield from router.zk.connect()
        yield from controller.start()
        yield from router.zk.create("/hot", b"v0")
        for _ in range(80):
            yield from router.read("/hot")
            yield env.timeout(2.0)
        assert "/hot" in router.keys
        # Simulate the whole chain dying before any reconfiguration:
        # the router's config is now stale and every chain RPC times
        # out -> it must still answer from ZK and re-learn the config.
        for node in nodes:
            node.crash()
        value = yield from router.read("/hot")
        assert value == b"v0"
        assert router.stats["fallbacks"] >= 1

    drive(env, scenario())


def test_recovered_member_rejoins_empty_and_fenced():
    ensemble, nodes, controller, router = make_tier()
    env = ensemble.env

    def scenario():
        yield from controller.zk.connect()
        yield from router.zk.connect()
        yield from controller.start()
        yield from router.zk.create("/hot", b"v0")
        for _ in range(80):
            yield from router.update("/hot", b"x")
            yield env.timeout(2.0)
        assert "/hot" in router.keys
        nodes[2].crash()
        nodes[2].recover()
        # epoch 0, no members: every data-plane message is nacked or
        # ignored until the controller reconfigures it back in.
        assert nodes[2].epoch == 0 and nodes[2].store == {}

    drive(env, scenario())
