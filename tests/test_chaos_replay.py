"""Replay determinism: the same (system, recipe, seed) cell, run twice,
produces a byte-identical operation history.

This is the property that makes a failing seed from the explorer
actionable: the printed replay line re-executes the *exact* run —
same fault times, same victim choices, same message drops, same
client interleavings — so the failure reproduces under a debugger.
"""

from __future__ import annotations

import pytest

from repro.chaos import random_schedule, run_chaos

CELLS = [("ezk", "queue", 17), ("ds", "counter", 5)]


@pytest.mark.parametrize("system,recipe,seed", CELLS)
def test_same_seed_replays_byte_identical(system, recipe, seed):
    first = run_chaos(system, recipe, seed)
    second = run_chaos(system, recipe, seed)
    assert first.schedule.describe() == second.schedule.describe()
    assert first.nemesis_log == second.nemesis_log
    assert first.history.canonical() == second.history.canonical()
    assert first.result == second.result


@pytest.mark.parametrize("system,recipe,seed", CELLS)
def test_replay_byte_identical_across_kernels(system, recipe, seed,
                                              monkeypatch):
    """Replay lines must not depend on the event-queue kernel.

    A seed found by the explorer under the fast calendar-queue kernel
    must reproduce under the heap kernel (and vice versa) — otherwise a
    kernel switch would silently invalidate every recorded repro line.
    """
    runs = {}
    for kernel in ("heap", "calendar"):
        monkeypatch.setenv("REPRO_SIM_KERNEL", kernel)
        runs[kernel] = run_chaos(system, recipe, seed)
    heap, cal = runs["heap"], runs["calendar"]
    assert heap.schedule.describe() == cal.schedule.describe()
    assert heap.nemesis_log == cal.nemesis_log
    assert heap.history.canonical() == cal.history.canonical()
    assert heap.result == cal.result


RAFT_CELLS = [("zk", "queue", 17), ("ds", "counter", 5)]


@pytest.mark.parametrize("system,recipe,seed", RAFT_CELLS)
def test_raft_cells_replay_byte_identical(system, recipe, seed):
    """The Raft backend keeps the determinism contract: its election
    timeouts come from per-node RNGs seeded off the schedule seed, so a
    replayed cell reproduces the same elections, drops and histories."""
    first = run_chaos(system, recipe, seed, kernel="raft")
    second = run_chaos(system, recipe, seed, kernel="raft")
    assert first.schedule.describe() == second.schedule.describe()
    assert first.nemesis_log == second.nemesis_log
    assert first.history.canonical() == second.history.canonical()
    assert first.result == second.result
    assert first.repro.endswith("--kernel raft")


def test_schedule_generation_is_pure():
    a, b = random_schedule(42), random_schedule(42)
    assert a == b
    assert a.describe() == b.describe()
    assert random_schedule(43) != a
