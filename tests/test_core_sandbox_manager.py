"""Unit tests for the sandbox (budgets, containment) and extension manager."""

import pytest

from repro.core import (BudgetedState, BudgetExceededError, EventNotice,
                        ExtensionCrashedError, ExtensionManager,
                        ExtensionRejectedError, MemoryState,
                        NotAuthorizedError, OperationRequest, SandboxLimits,
                        UnknownExtensionError, compile_extension,
                        run_contained)

COUNTER_EXT = '''
class CounterIncrement(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/ctr-increment")]

    def handle_operation(self, request, local):
        c = int(local.read("/ctr"))
        local.update("/ctr", str(c + 1).encode())
        return c + 1
'''

EVENT_EXT = '''
class DeletionLogger(Extension):
    def event_subscriptions(self):
        return [EventSubscription(("deleted",), "/clients/*")]

    def handle_event(self, event, local):
        local.create("/log/" + event.object_id.split("/")[-1])
'''

GREEDY_EXT = '''
class Greedy(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/greedy")]

    def handle_operation(self, request, local):
        for record in local.sub_objects("/data/"):
            local.read(record.object_id)
        return "done"
'''

CRASHY_EXT = '''
class Crashy(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/crashy")]

    def handle_operation(self, request, local):
        local.create("/partial")
        return 1 // 0
'''


class TestCompileExtension:
    def test_compiles_and_names(self):
        ext = compile_extension(COUNTER_EXT, "ctr-inc")
        assert ext.name == "ctr-inc"
        assert len(ext.ops_subscriptions()) == 1

    def test_default_name_is_class_name(self):
        ext = compile_extension(COUNTER_EXT)
        assert ext.name == "CounterIncrement"

    def test_rejects_zero_extension_classes(self):
        with pytest.raises(ExtensionRejectedError, match="exactly one"):
            compile_extension("X = 1\n")

    def test_rejects_two_extension_classes(self):
        source = COUNTER_EXT + '''
class Second(Extension):
    def handle_operation(self, request, local):
        return 2
'''
        with pytest.raises(ExtensionRejectedError, match="exactly one"):
            compile_extension(source)

    def test_namespace_is_restricted(self):
        # The class compiles, but dangerous builtins are absent at runtime.
        source = '''
class Sneaky(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/s")]

    def handle_operation(self, request, local):
        return len("ok")
'''
        ext = compile_extension(source)
        module_globals = ext.handle_operation.__globals__
        assert "open" not in module_globals["__builtins__"]
        assert "__import__" not in module_globals["__builtins__"]


class TestBudgets:
    def test_state_op_budget(self):
        state = MemoryState()
        for i in range(20):
            state.create(f"/data/{i}")
        ext = compile_extension(GREEDY_EXT)
        proxy = BudgetedState(state, SandboxLimits(max_state_ops=10))
        request = OperationRequest("read", "/greedy", client_id="c")
        with pytest.raises(BudgetExceededError, match="state ops"):
            ext.handle_operation(request, proxy)

    def test_creation_budget(self):
        source = '''
class Creator(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/mk")]

    def handle_operation(self, request, local):
        for record in local.sub_objects("/seeds/"):
            local.create(record.object_id.replace("seeds", "out"))
        return "ok"
'''
        state = MemoryState()
        for i in range(10):
            state.create(f"/seeds/{i}")
        ext = compile_extension(source)
        proxy = BudgetedState(
            state, SandboxLimits(max_state_ops=100, max_new_objects=3))
        with pytest.raises(BudgetExceededError, match="creation"):
            ext.handle_operation(
                OperationRequest("read", "/mk", client_id="c"), proxy)

    def test_within_budget_succeeds(self):
        state = MemoryState()
        state.create("/ctr", b"41")
        ext = compile_extension(COUNTER_EXT)
        proxy = BudgetedState(state, SandboxLimits())
        result = ext.handle_operation(
            OperationRequest("read", "/ctr-increment", client_id="c"), proxy)
        assert result == 42
        assert state.read("/ctr") == b"42"
        assert proxy.state_ops == 2

    def test_step_limiter(self):
        def spin():
            total = 0
            for i in (1,) * 10_000:
                total += i
            return total

        with pytest.raises(BudgetExceededError, match="steps"):
            run_contained(spin, max_steps=100)

    def test_step_limiter_allows_short_runs(self):
        assert run_contained(lambda: 1 + 1, max_steps=100) == 2


class TestCrashContainment:
    def test_crash_is_wrapped(self):
        state = MemoryState()
        ext = compile_extension(CRASHY_EXT)
        proxy = BudgetedState(state, SandboxLimits())
        with pytest.raises(ExtensionCrashedError, match="ZeroDivisionError"):
            run_contained(
                ext.handle_operation,
                OperationRequest("read", "/crashy", client_id="c"), proxy)

    def test_budget_error_passes_through(self):
        def exceed():
            raise BudgetExceededError("synthetic")

        with pytest.raises(BudgetExceededError, match="synthetic"):
            run_contained(exceed)


class TestManagerLifecycle:
    def test_register_and_match(self):
        manager = ExtensionManager()
        manager.register("ctr", COUNTER_EXT, owner="alice")
        request = OperationRequest("read", "/ctr-increment",
                                   client_id="alice")
        assert manager.match_operation(request).name == "ctr"

    def test_unacked_client_does_not_match(self):
        manager = ExtensionManager()
        manager.register("ctr", COUNTER_EXT, owner="alice")
        request = OperationRequest("read", "/ctr-increment", client_id="bob")
        assert manager.match_operation(request) is None

    def test_acknowledge_grants_access(self):
        manager = ExtensionManager()
        manager.register("ctr", COUNTER_EXT, owner="alice")
        manager.acknowledge("ctr", "bob")
        request = OperationRequest("read", "/ctr-increment", client_id="bob")
        assert manager.match_operation(request).name == "ctr"

    def test_acknowledge_unknown_raises(self):
        with pytest.raises(UnknownExtensionError):
            ExtensionManager().acknowledge("ghost", "bob")

    def test_deregister(self):
        manager = ExtensionManager()
        manager.register("ctr", COUNTER_EXT, owner="alice")
        manager.deregister("ctr")
        request = OperationRequest("read", "/ctr-increment",
                                   client_id="alice")
        assert manager.match_operation(request) is None

    def test_last_registered_wins(self):
        other = COUNTER_EXT.replace("CounterIncrement", "Newer")
        manager = ExtensionManager()
        manager.register("old", COUNTER_EXT, owner="alice")
        manager.register("new", other, owner="alice")
        request = OperationRequest("read", "/ctr-increment",
                                   client_id="alice")
        assert manager.match_operation(request).name == "new"

    def test_rejected_source_is_not_registered(self):
        manager = ExtensionManager()
        with pytest.raises(ExtensionRejectedError):
            manager.register("bad", "import os\n", owner="alice")
        assert manager.names() == []

    def test_event_matching_in_registration_order(self):
        manager = ExtensionManager()
        manager.register("first", EVENT_EXT, owner="a")
        manager.register(
            "second", EVENT_EXT.replace("DeletionLogger", "Another"),
            owner="a")
        event = EventNotice("deleted", "/clients/7")
        assert [r.name for r in manager.match_events(event)] == [
            "first", "second"]

    def test_event_pattern_mismatch(self):
        manager = ExtensionManager()
        manager.register("ev", EVENT_EXT, owner="a")
        assert manager.match_events(EventNotice("deleted", "/other/7")) == []
        assert manager.match_events(EventNotice("created", "/clients/7")) == []

    def test_suppresses_notification_requires_authorization(self):
        manager = ExtensionManager()
        manager.register("ev", EVENT_EXT, owner="a")
        event = EventNotice("deleted", "/clients/7")
        assert manager.suppresses_notification("a", event)
        assert not manager.suppresses_notification("stranger", event)

    def test_execute_operation_authorization(self):
        manager = ExtensionManager()
        record = manager.register("ctr", COUNTER_EXT, owner="alice")
        state = MemoryState()
        state.create("/ctr", b"0")
        with pytest.raises(NotAuthorizedError):
            manager.execute_operation(
                record,
                OperationRequest("read", "/ctr-increment", client_id="eve"),
                state)

    def test_execute_operation_end_to_end(self):
        manager = ExtensionManager()
        record = manager.register("ctr", COUNTER_EXT, owner="alice")
        state = MemoryState()
        state.create("/ctr", b"7")
        result = manager.execute_operation(
            record,
            OperationRequest("read", "/ctr-increment", client_id="alice"),
            state)
        assert result == 8
        assert manager.executions == 1

    def test_execute_event_end_to_end(self):
        manager = ExtensionManager()
        record = manager.register("ev", EVENT_EXT, owner="a")
        state = MemoryState()
        state.create("/log", b"")
        manager.execute_event(record, EventNotice("deleted", "/clients/42"),
                              state)
        assert state.exists("/log/42")


class TestManagerRecovery:
    def test_export_reload_round_trip(self):
        manager = ExtensionManager()
        manager.register("ctr", COUNTER_EXT, owner="alice")
        manager.acknowledge("ctr", "bob")
        manager.register("ev", EVENT_EXT, owner="carol")

        fresh = ExtensionManager()
        fresh.reload(manager.export_records())
        assert fresh.names() == ["ctr", "ev"]
        request = OperationRequest("read", "/ctr-increment", client_id="bob")
        assert fresh.match_operation(request).name == "ctr"

    def test_reload_preserves_registration_order(self):
        manager = ExtensionManager()
        manager.register("old", COUNTER_EXT, owner="a")
        manager.register(
            "new", COUNTER_EXT.replace("CounterIncrement", "B"), owner="a")
        fresh = ExtensionManager()
        fresh.reload(manager.export_records())
        request = OperationRequest("read", "/ctr-increment", client_id="a")
        assert fresh.match_operation(request).name == "new"
