"""Unit tests for the znode tree."""

import pytest

from repro.zk import (BadArgumentsError, BadVersionError, DataTree,
                      NoChildrenForEphemeralsError, NodeExistsError,
                      NoNodeError, NotEmptyError)
from repro.zk.data_tree import parent_of, split_path, validate_path


@pytest.fixture
def tree():
    return DataTree()


class TestPaths:
    def test_validate_rejects_relative(self):
        with pytest.raises(BadArgumentsError):
            validate_path("a/b")

    def test_validate_rejects_empty(self):
        with pytest.raises(BadArgumentsError):
            validate_path("")

    def test_validate_rejects_trailing_slash(self):
        with pytest.raises(BadArgumentsError):
            validate_path("/a/")

    def test_validate_rejects_empty_component(self):
        with pytest.raises(BadArgumentsError):
            validate_path("/a//b")

    def test_validate_rejects_dots(self):
        with pytest.raises(BadArgumentsError):
            validate_path("/a/../b")

    def test_root_is_valid(self):
        validate_path("/")

    def test_parent_of(self):
        assert parent_of("/a/b") == "/a"
        assert parent_of("/a") == "/"

    def test_parent_of_root_rejected(self):
        with pytest.raises(BadArgumentsError):
            parent_of("/")

    def test_split(self):
        assert split_path("/a/b/c") == ("/a/b", "c")
        assert split_path("/a") == ("/", "a")


class TestCreate:
    def test_create_and_read(self, tree):
        tree.create("/a", b"hello", zxid=5, now=1.0)
        data, stat = tree.get_data("/a")
        assert data == b"hello"
        assert stat.czxid == 5
        assert stat.version == 0
        assert stat.data_length == 5

    def test_create_requires_parent(self, tree):
        with pytest.raises(NoNodeError):
            tree.create("/a/b")

    def test_create_duplicate_rejected(self, tree):
        tree.create("/a")
        with pytest.raises(NodeExistsError):
            tree.create("/a")

    def test_create_updates_parent_stat(self, tree):
        tree.create("/a")
        tree.create("/a/b")
        stat = tree.exists("/a")
        assert stat.num_children == 1
        assert stat.cversion == 1

    def test_create_requires_bytes(self, tree):
        with pytest.raises(BadArgumentsError):
            tree.create("/a", "not-bytes")

    def test_ephemeral_cannot_have_children(self, tree):
        tree.create("/e", ephemeral_owner=1)
        with pytest.raises(NoChildrenForEphemeralsError):
            tree.create("/e/child")


class TestSequential:
    def test_sequential_names_are_monotone(self, tree):
        tree.create("/q")
        first = tree.create("/q/elem-", sequential=True)
        second = tree.create("/q/elem-", sequential=True)
        assert first == "/q/elem-0000000000"
        assert second == "/q/elem-0000000001"
        assert first < second

    def test_counter_never_reused_after_delete(self, tree):
        tree.create("/q")
        first = tree.create("/q/e-", sequential=True)
        tree.delete(first)
        second = tree.create("/q/e-", sequential=True)
        assert second != first

    def test_counter_is_per_parent(self, tree):
        tree.create("/q1")
        tree.create("/q2")
        assert tree.create("/q1/e-", sequential=True).endswith("0000000000")
        assert tree.create("/q2/e-", sequential=True).endswith("0000000000")

    def test_next_sequential_path_is_pure(self, tree):
        tree.create("/q")
        predicted = tree.next_sequential_path("/q/e-")
        actual = tree.create("/q/e-", sequential=True)
        assert predicted == actual


class TestSetData:
    def test_set_bumps_version(self, tree):
        tree.create("/a", b"v0")
        stat = tree.set_data("/a", b"v1", zxid=9, now=2.0)
        assert stat.version == 1
        assert stat.mzxid == 9
        assert tree.get_data("/a")[0] == b"v1"

    def test_conditional_set_matches(self, tree):
        tree.create("/a")
        tree.set_data("/a", b"x", version=0)
        with pytest.raises(BadVersionError):
            tree.set_data("/a", b"y", version=0)

    def test_unconditional_set(self, tree):
        tree.create("/a")
        tree.set_data("/a", b"x", version=-1)
        tree.set_data("/a", b"y", version=-1)
        assert tree.get_data("/a")[0] == b"y"

    def test_set_missing_raises(self, tree):
        with pytest.raises(NoNodeError):
            tree.set_data("/ghost", b"")


class TestDelete:
    def test_delete(self, tree):
        tree.create("/a")
        tree.delete("/a")
        assert tree.exists("/a") is None

    def test_delete_with_children_rejected(self, tree):
        tree.create("/a")
        tree.create("/a/b")
        with pytest.raises(NotEmptyError):
            tree.delete("/a")

    def test_conditional_delete(self, tree):
        tree.create("/a")
        tree.set_data("/a", b"x")
        with pytest.raises(BadVersionError):
            tree.delete("/a", version=0)
        tree.delete("/a", version=1)

    def test_delete_root_rejected(self, tree):
        with pytest.raises(BadArgumentsError):
            tree.delete("/")

    def test_delete_missing_raises(self, tree):
        with pytest.raises(NoNodeError):
            tree.delete("/ghost")


class TestEphemerals:
    def test_kill_session_removes_ephemerals(self, tree):
        tree.create("/e1", ephemeral_owner=7)
        tree.create("/e2", ephemeral_owner=7)
        tree.create("/keep", ephemeral_owner=8)
        doomed = tree.kill_session(7)
        assert sorted(doomed) == ["/e1", "/e2"]
        assert tree.exists("/e1") is None
        assert tree.exists("/keep") is not None

    def test_kill_session_unknown_is_noop(self, tree):
        assert tree.kill_session(999) == []

    def test_delete_clears_ephemeral_tracking(self, tree):
        tree.create("/e", ephemeral_owner=7)
        tree.delete("/e")
        assert tree.kill_session(7) == []

    def test_ephemerals_of(self, tree):
        tree.create("/e1", ephemeral_owner=7)
        assert tree.ephemerals_of(7) == ["/e1"]
        assert tree.ephemerals_of(8) == []


class TestChildren:
    def test_get_children_sorted(self, tree):
        tree.create("/p")
        for name in ("c", "a", "b"):
            tree.create(f"/p/{name}")
        assert tree.get_children("/p") == ["a", "b", "c"]

    def test_get_children_missing_raises(self, tree):
        with pytest.raises(NoNodeError):
            tree.get_children("/ghost")


class TestSnapshotRestore:
    def test_round_trip(self, tree):
        tree.create("/a", b"data")
        tree.create("/a/b")
        tree.create("/e", ephemeral_owner=3)
        tree.create("/q")
        tree.create("/q/s-", sequential=True)

        clone = DataTree()
        clone.restore(tree.snapshot())
        assert clone.fingerprint() == tree.fingerprint()
        assert clone.get_data("/a")[0] == b"data"
        # Ephemeral index is rebuilt.
        assert clone.ephemerals_of(3) == ["/e"]
        # Sequence counters survive.
        assert (clone.create("/q/s-", sequential=True)
                == tree.create("/q/s-", sequential=True))

    def test_snapshot_is_independent(self, tree):
        tree.create("/a", b"x")
        snap = tree.snapshot()
        tree.set_data("/a", b"y")
        clone = DataTree()
        clone.restore(snap)
        assert clone.get_data("/a")[0] == b"x"

    def test_fingerprint_differs_on_change(self, tree):
        tree.create("/a", b"x")
        before = tree.fingerprint()
        tree.set_data("/a", b"y")
        assert tree.fingerprint() != before
