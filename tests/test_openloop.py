"""Open-loop aggregate-client driver: spec validation, arrival
processes, skew, and the open-loop latency accounting."""

from __future__ import annotations

import math

import pytest

from repro.bench.openloop import (ARRIVALS, Workload, _zipf_cdf,
                                  run_openloop_workload)

SMALL = dict(clients=2_000, ops_per_client_s=1.0, keys=32)


# -- Workload spec -----------------------------------------------------------

def test_workload_defaults_validate():
    Workload().validate()


@pytest.mark.parametrize("bad", [
    dict(arrival="fractal"),
    dict(mix={"read": 0.5, "write": 0.2}),
    dict(mix={"read": 0.5, "scan": 0.5}),
    dict(clients=0),
    dict(burst_fraction=1.0),
    dict(arrival="bursty", burst_factor=20.0, burst_fraction=0.2),
    dict(churn_per_s=-1.0),
    dict(watch_fanout=-1),
])
def test_workload_rejects_bad_specs(bad):
    with pytest.raises(ValueError):
        Workload(**bad).validate()


def test_aggregate_rate():
    w = Workload(clients=100_000, ops_per_client_s=0.5)
    assert w.rate_ops_per_ms == pytest.approx(50.0)


# -- Zipf skew ---------------------------------------------------------------

def test_zipf_cdf_uniform_when_unskewed():
    cdf = _zipf_cdf(4, 0.0)
    assert cdf == pytest.approx([0.25, 0.5, 0.75, 1.0])


def test_zipf_cdf_concentrates_mass_on_low_ranks():
    cdf = _zipf_cdf(100, 0.99)
    assert cdf[0] > 0.15          # rank 1 takes a big bite
    assert cdf[9] > 0.5           # top-10 keys absorb most traffic
    assert cdf[-1] == 1.0
    assert all(b >= a for a, b in zip(cdf, cdf[1:]))


# -- end-to-end smoke --------------------------------------------------------

@pytest.mark.parametrize("arrival", ARRIVALS)
def test_openloop_sustains_offered_load(arrival):
    w = Workload(arrival=arrival, **SMALL)
    result = run_openloop_workload("zk", w, warmup_ms=50.0,
                                   measure_ms=300.0)
    assert result.clients == SMALL["clients"]
    # The ensemble sustains this offered load, so achieved tracks
    # offered (windowing quantization allows a few percent slack).
    offered = result.extra["offered_ops_per_s"]
    assert result.throughput_ops == pytest.approx(offered, rel=0.15)
    assert result.extra["executed"] == result.extra["arrivals"]
    assert result.completed_ops > 0


def test_openloop_percentiles_are_ordered():
    result = run_openloop_workload("zk", Workload(**SMALL),
                                   warmup_ms=50.0, measure_ms=300.0)
    assert (result.p50_latency_ms <= result.p99_latency_ms
            <= result.p999_latency_ms)
    assert not math.isnan(result.p999_latency_ms)


def test_openloop_latency_includes_queueing_delay():
    """Overload the pipe: open-loop tails must reflect waiting time.

    With one session and one in-flight slot, arrivals outpace service
    and each request waits behind the backlog — mean latency must
    exceed the unloaded RTT by a wide margin and the backlog must grow.
    """
    w = Workload(clients=8_000, ops_per_client_s=2.0, keys=8)
    loaded = run_openloop_workload("zk", w, warmup_ms=50.0,
                                   measure_ms=200.0, sessions=1,
                                   inflight_per_session=1)
    unloaded = run_openloop_workload(
        "zk", Workload(clients=50, ops_per_client_s=1.0, keys=8),
        warmup_ms=50.0, measure_ms=200.0)
    assert loaded.extra["max_backlog"] > 10
    assert loaded.mean_latency_ms > 10 * unloaded.mean_latency_ms


# -- session churn / watch fan-out riders ------------------------------------

def test_openloop_churn_and_watch_extras():
    w = Workload(churn_per_s=40.0, watch_fanout=4, **SMALL)
    result = run_openloop_workload("zk", w, warmup_ms=50.0,
                                   measure_ms=400.0)
    assert result.extra["churn_per_s"] == 40.0
    assert result.extra["churn_connects"] > 0
    assert result.extra["churn_closed"] > 0
    assert result.extra["watch_fanout"] == 4.0
    assert result.extra["watch_notifications"] > 0
    # The op stream still flows under churn + fan-out.
    assert result.completed_ops > 0


def test_openloop_extras_absent_when_knobs_off():
    result = run_openloop_workload("zk", Workload(**SMALL),
                                   warmup_ms=50.0, measure_ms=200.0)
    for key in ("churn_per_s", "churn_connects", "churn_closed",
                "churn_abandoned", "watch_fanout", "watch_notifications"):
        assert key not in result.extra


@pytest.mark.parametrize("kind", ("ds", "eds"))
def test_openloop_session_knobs_require_zk_family(kind):
    with pytest.raises(ValueError):
        run_openloop_workload(kind, Workload(churn_per_s=5.0, **SMALL))
    with pytest.raises(ValueError):
        run_openloop_workload(kind, Workload(watch_fanout=2, **SMALL))


def test_openloop_identical_across_kernels(monkeypatch):
    results = {}
    for kernel in ("heap", "calendar"):
        monkeypatch.setenv("REPRO_SIM_KERNEL", kernel)
        results[kernel] = run_openloop_workload(
            "zk", Workload(**SMALL), warmup_ms=50.0, measure_ms=200.0)
    assert results["heap"] == results["calendar"]
