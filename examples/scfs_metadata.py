#!/usr/bin/env python3
"""§7.2 use case: POSIX rename for a cloud file system's metadata store.

SCFS keeps file-system metadata in DepSpace: every file/directory is a
tuple whose name field encodes its path. Renaming a directory must
atomically rewrite the parent reference of all k children — impossible
through the fixed kernel (k+1 RPCs, observably non-atomic), trivial
with a custom rename extension (1 RPC, atomic).

This example writes its own extension (not one of the bundled recipes)
to show the full authoring workflow: source → verification →
registration → single-RPC use.

Run:  python examples/scfs_metadata.py
"""

from repro.bench import make_coords, make_ensemble, run_all

#: The rename extension, as a downstream user would write it.
RENAME_EXT = '''
class AtomicRename(Extension):
    def ops_subscriptions(self):
        return [OperationSubscription(("update",), "/mv")]

    def handle_operation(self, request, local):
        spec = request.data.decode()
        parts = spec.split("|")
        old = parts[0]
        new = parts[1]
        moved = 0
        for child in local.sub_objects(old):
            suffix = child.object_id[len(old):]
            local.create(new + suffix, child.data)
            local.delete(child.object_id)
            moved = moved + 1
        data = local.read(old)
        local.create(new, data)
        local.delete(old)
        return moved + 1
'''

N_FILES = 12


def build():
    ensemble = make_ensemble("eds", seed=77)
    coords, raw = make_coords(ensemble, "eds", 2)
    fs, observer = coords

    def populate():
        yield from fs.create("/home/alice", b"dir")
        for i in range(N_FILES):
            yield from fs.create(f"/home/alice/file{i:02d}",
                                 f"contents-{i}".encode())
        yield from fs.register_extension("atomic-rename", RENAME_EXT)

    run_all(ensemble, populate())
    return ensemble, fs, observer, raw


def traditional_rename(coord, old, new):
    """The fixed-kernel way: k+1 operations, not atomic."""
    rpcs = 0
    children = yield from coord.sub_objects(old)
    rpcs += 1
    for child in children:
        suffix = child.object_id[len(old):]
        yield from coord.create(new + suffix, child.data)
        yield from coord.delete(child.object_id)
        rpcs += 2
    data = yield from coord.read(old)
    yield from coord.create(new, data)
    yield from coord.delete(old)
    rpcs += 3
    return rpcs


def main():
    # --- traditional rename: count RPCs and catch it mid-flight -------------
    ensemble, fs, observer, _raw = build()
    mixed_states = []
    done = []

    def spy():
        while not done:
            old_children = yield from observer.sub_objects("/home/alice")
            new_children = yield from observer.sub_objects("/home/bob")
            if old_children and new_children:
                mixed_states.append(
                    (len(old_children), len(new_children)))
            yield ensemble.env.timeout(0.5)

    def renamer():
        rpcs = yield from traditional_rename(fs, "/home/alice", "/home/bob")
        done.append(True)
        return rpcs

    ensemble.env.process(spy())
    proc = ensemble.env.process(renamer())
    rpcs = ensemble.env.run(until=proc)
    print(f"traditional rename of a {N_FILES}-entry directory: "
          f"{rpcs} operations")
    print(f"  observer caught the directory in a mixed state "
          f"{len(mixed_states)} time(s), e.g. {mixed_states[:3]}")
    assert mixed_states, "the fixed-kernel rename is observably non-atomic"

    # --- extension rename: one RPC, never a mixed state ---------------------
    ensemble, fs, observer, _raw = build()
    mixed_states = []
    done = []

    def spy2():
        while not done:
            old_children = yield from observer.sub_objects("/home/alice")
            new_children = yield from observer.sub_objects("/home/bob")
            if old_children and new_children:
                mixed_states.append((len(old_children), len(new_children)))
            yield ensemble.env.timeout(0.5)

    def renamer2():
        moved = yield from fs.update("/mv", b"/home/alice|/home/bob")
        done.append(True)
        return moved

    ensemble.env.process(spy2())
    proc = ensemble.env.process(renamer2())
    moved = ensemble.env.run(until=proc)
    print(f"\nextension rename: 1 RPC moved {moved} objects atomically")
    print(f"  observer caught a mixed state {len(mixed_states)} time(s)")
    assert not mixed_states, "the extension rename must be atomic"

    def verify():
        children = yield from observer.sub_objects("/home/bob")
        gone = yield from observer.read("/home/alice")
        return len(children), gone

    count, gone = run_all(ensemble, verify())[0]
    assert count == N_FILES and gone is None
    print(f"  /home/bob now holds {count} files; /home/alice is gone.")
    print("\nPOSIX rename semantics retained — the paper's §7.2 point: "
          "impossible without extending the service.")


if __name__ == "__main__":
    main()
