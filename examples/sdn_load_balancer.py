#!/usr/bin/env python3
"""§7.1 use case: consistent load balancing for a distributed SDN controller.

Several controller nodes assign incoming network flows to backend
servers. Optimal round-robin assignment requires every controller to
draw globally unique, consecutive sequence numbers — a shared counter
on the coordination service, *inside* the flow-setup path.

The paper's argument: with plain ZooKeeper the counter caps the whole
control plane below ~2k flows/s, while the extension-based counter
sustains tens of thousands of assignments per second — more than
published distributed controllers forward.

Run:  python examples/sdn_load_balancer.py
"""

from repro.bench import make_coords, make_ensemble, run_all
from repro.recipes import ExtensionSharedCounter, TraditionalSharedCounter

N_CONTROLLERS = 8
N_BACKENDS = 4
MEASURE_MS = 250.0


class SdnController:
    """One controller node: assigns each new flow to a backend server."""

    def __init__(self, name, counter, backends):
        self.name = name
        self.counter = counter
        self.backends = backends
        self.assignments = []

    def handle_flow(self, flow_id):
        """Flow-setup path: draw a global sequence number, pick a server."""
        seq = yield from self.counter.increment()
        backend = self.backends[seq % len(self.backends)]
        self.assignments.append((flow_id, seq, backend))
        return backend


def drive(kind, recipe_cls, register):
    ensemble = make_ensemble(kind, seed=42)
    coords, _raw = make_coords(ensemble, kind, N_CONTROLLERS)
    counters = [recipe_cls(c) for c in coords]
    if register:
        run_all(ensemble, counters[0].setup(register=True))
        for counter in counters[1:]:
            run_all(ensemble, counter.setup(register=False))
    else:
        run_all(ensemble, counters[0].setup())

    backends = [f"server-{i}" for i in range(N_BACKENDS)]
    controllers = [
        SdnController(f"ctrl-{i}", counter, backends)
        for i, counter in enumerate(counters)
    ]
    end = ensemble.env.now + MEASURE_MS

    def flow_source(controller):
        flow = 0
        while ensemble.env.now < end:
            yield from controller.handle_flow(f"{controller.name}/flow{flow}")
            flow += 1

    for controller in controllers:
        ensemble.env.process(flow_source(controller))
    ensemble.env.run(until=end + 50.0)

    all_assignments = [a for c in controllers for a in c.assignments]
    flows_per_s = len(all_assignments) / (MEASURE_MS / 1000.0)

    # Round-robin optimality: globally consecutive sequence numbers mean
    # backend loads differ by at most one.
    per_backend = {b: 0 for b in backends}
    for _flow, _seq, backend in all_assignments:
        per_backend[backend] += 1
    spread = max(per_backend.values()) - min(per_backend.values())
    sequences = sorted(seq for _f, seq, _b in all_assignments)
    assert sequences == list(range(1, len(sequences) + 1)), \
        "sequence numbers must be consecutive and unique"
    return flows_per_s, per_backend, spread


def main():
    print(f"{N_CONTROLLERS} controller nodes x {N_BACKENDS} backends, "
          "round-robin via a shared counter\n")

    plain, loads, spread = drive("zk", TraditionalSharedCounter, False)
    print(f"plain ZooKeeper counter:      {plain:9.0f} flows/s "
          f"(backend spread {spread})")

    fast, loads, spread = drive("ezk", ExtensionSharedCounter, True)
    print(f"EZK counter extension:        {fast:9.0f} flows/s "
          f"(backend spread {spread})")
    print(f"\nper-backend load with EZK: {loads}")
    print(f"speedup in the flow-setup path: {fast / plain:.1f}x")
    print("(the paper: <2k flows/s without extensions vs ~25k with, "
          "more than published distributed controllers need)")


if __name__ == "__main__":
    main()
