#!/usr/bin/env python3
"""Leader election with failure detection (Figure 11 / §6.1.4).

Three application servers compete for leadership through the combined
operation+event extension: one blocking RPC returns when a server is
elected; when the leader dies (here: killed without warning), the
service's own failure detection deletes its liveness object, the event
extension appoints the oldest survivor, and the survivor's blocked call
returns — no client-side polling anywhere.

Run:  python examples/leader_failover.py
"""

from repro.bench import make_coords, make_ensemble, run_all
from repro.recipes import ExtensionElection


def main():
    ensemble = make_ensemble("ezk", seed=99)
    coords, raw = make_coords(ensemble, "ezk", 3)
    elections = [ExtensionElection(c) for c in coords]
    run_all(ensemble, elections[0].setup(register=True))
    for election in elections[1:]:
        run_all(ensemble, election.setup(register=False))

    env = ensemble.env
    timeline = []

    def app_server(election, name):
        yield from election.become_leader()
        timeline.append((env.now, f"{name} is now the leader"))

    for index, election in enumerate(elections):
        ensemble.env.process(app_server(election, f"app-{index}"))
    env.run(until=env.now + 50.0)

    leader_index = 0  # app-0 registered first, so it leads
    print("timeline (simulated ms):")
    for when, what in timeline:
        print(f"  t={when:8.2f}  {what}")

    print(f"\nkilling app-{leader_index} without warning "
          "(no close-session call, no goodbye)...")
    raw[leader_index].kill()

    # The leader's session expires; the event extension reappoints.
    env.run(until=env.now + 5000.0)
    for when, what in timeline[1:]:
        print(f"  t={when:8.2f}  {what}")

    assert len(timeline) >= 2, "failover must have appointed a new leader"
    death_to_crown_ms = timeline[1][0] - timeline[0][0]
    print(f"\nfailover completed; a survivor was crowned "
          f"{death_to_crown_ms:.0f} ms after the original election "
          "(bounded by the session timeout).")
    print("the client-side code was a single blocking call — the paper's "
          "point about extensions absorbing coordination logic.")


if __name__ == "__main__":
    main()
