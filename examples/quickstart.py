#!/usr/bin/env python3
"""Quickstart: make a coordination service extensible in ~40 lines.

Builds an EXTENSIBLE ZOOKEEPER ensemble (three simulated replicas),
registers the paper's shared-counter extension through the *standard*
API (a create on /em/...), and compares the traditional read+cas recipe
against the single-RPC extension under contention — the paper's
headline result (Figure 6) on your laptop.

Run:  python examples/quickstart.py
"""

from repro.bench import make_coords, make_ensemble, run_all
from repro.recipes import ExtensionSharedCounter, TraditionalSharedCounter

N_CLIENTS = 20
INCREMENTS_PER_CLIENT = 25


def drive(kind, recipe_cls, **setup_kwargs):
    ensemble = make_ensemble(kind, seed=7)
    coords, _raw = make_coords(ensemble, kind, N_CLIENTS)
    counters = [recipe_cls(c) for c in coords]
    run_all(ensemble, counters[0].setup(**setup_kwargs))
    if setup_kwargs:
        for counter in counters[1:]:
            run_all(ensemble, counter.setup(register=False))

    start = ensemble.env.now

    def worker(counter):
        for _ in range(INCREMENTS_PER_CLIENT):
            yield from counter.increment()

    run_all(ensemble, *[worker(c) for c in counters])
    elapsed_ms = ensemble.env.now - start
    final = run_all(ensemble, counters[0].read())[0]
    total = N_CLIENTS * INCREMENTS_PER_CLIENT
    assert final == total, f"lost updates! {final} != {total}"
    return total / (elapsed_ms / 1000.0), elapsed_ms


def main():
    print(f"{N_CLIENTS} clients x {INCREMENTS_PER_CLIENT} increments, "
          "3-replica ensembles\n")

    traditional_tput, traditional_ms = drive("zk", TraditionalSharedCounter)
    print(f"ZooKeeper, traditional read+cas recipe: "
          f"{traditional_tput:10.0f} increments/s "
          f"({traditional_ms:.0f} ms simulated)")

    extension_tput, extension_ms = drive("ezk", ExtensionSharedCounter,
                                         register=True)
    print(f"Extensible ZooKeeper, counter extension: "
          f"{extension_tput:10.0f} increments/s "
          f"({extension_ms:.0f} ms simulated)")

    print(f"\nspeedup: {extension_tput / traditional_tput:.1f}x "
          "(the paper reports ~20x at 50 clients)")
    print("both runs finished with zero lost updates.")


if __name__ == "__main__":
    main()
