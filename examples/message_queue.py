#!/usr/bin/env python3
"""§7 use case: a highly-available message queue on the coordination service.

The paper argues that extension-grade queue performance makes the
coordination service itself a viable (restricted) message-oriented
middleware à la ActiveMQ — reusing its replication and failover instead
of deploying another stateful system.

A pool of producers pushes jobs, a pool of consumers drains them via
the atomic head-removal extension; a replica crash in the middle loses
nothing.

Run:  python examples/message_queue.py
"""

from repro.bench import make_ensemble, run_all
from repro.recipes import ExtensionQueue

N_PRODUCERS = 4
N_CONSUMERS = 4
JOBS_PER_PRODUCER = 30


def main():
    ensemble = make_ensemble("ezk", seed=13)
    # Pin clients to the replicas that stay up: a lost reply during the
    # crash would otherwise make a client retry its (non-idempotent)
    # remove and drop a message — the same hazard real ZooKeeper clients
    # face when their server dies mid-request.
    raw = [
        ensemble.client(replica=f"ezk{i % 2}")
        for i in range(N_PRODUCERS + N_CONSUMERS)
    ]

    def connect_all():
        for client in raw:
            yield from client.connect()

    run_all(ensemble, connect_all())
    from repro.recipes import ZkCoordClient
    coords = [ZkCoordClient(c) for c in raw]
    queues = [ExtensionQueue(c) for c in coords]
    run_all(ensemble, queues[0].setup(register=True))
    for queue in queues[1:]:
        run_all(ensemble, queue.setup(register=False))

    producers = queues[:N_PRODUCERS]
    consumers = queues[N_PRODUCERS:]
    total_jobs = N_PRODUCERS * JOBS_PER_PRODUCER
    delivered = []

    def producer(queue, index):
        for job in range(JOBS_PER_PRODUCER):
            yield from queue.add(f"job:{index}:{job}".encode())

    def consumer(queue):
        while len(delivered) < total_jobs:
            message = yield from queue.remove(empty_ok=True)
            if message is None:
                yield ensemble.env.timeout(1.0)  # queue momentarily empty
                continue
            delivered.append(message)

    start = ensemble.env.now
    processes = [
        ensemble.env.process(producer(q, i))
        for i, q in enumerate(producers)
    ]
    processes += [ensemble.env.process(consumer(q)) for q in consumers]

    # Crash a backup replica mid-stream: the queue must not lose a message.
    def chaos():
        yield ensemble.env.timeout(5.0)
        ensemble.server("ezk2").crash()
        print(f"t={ensemble.env.now:7.2f} ms  replica ezk2 crashed "
              "(service continues on the remaining quorum)")

    ensemble.env.process(chaos())
    for process in processes:
        ensemble.env.run(until=process)
    elapsed_ms = ensemble.env.now - start

    assert len(delivered) == total_jobs
    assert len(set(delivered)) == total_jobs, "duplicate delivery!"
    per_producer = {}
    for message in delivered:
        _tag, producer_id, job = message.decode().split(":")
        per_producer.setdefault(producer_id, []).append(int(job))
    for producer_id, jobs in per_producer.items():
        assert jobs == sorted(jobs), "per-producer FIFO violated"

    print(f"\n{total_jobs} messages through the replicated queue in "
          f"{elapsed_ms:.1f} ms simulated "
          f"({total_jobs / (elapsed_ms / 1000.0):,.0f} msgs/s)")
    print("each message delivered exactly once, per-producer FIFO held, "
          "one replica down.")


if __name__ == "__main__":
    main()
