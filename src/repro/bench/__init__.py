"""Benchmark harness: workload drivers and table/figure generators.

``repro.bench.figures`` has one entry point per table and figure of the
paper's evaluation; ``repro.bench.workload`` holds the underlying
closed-loop drivers; ``repro.bench.systems`` builds the four evaluated
systems.
"""

from .figures import (FigureResult, client_counts, figure6, figure8,
                      figure10, figure12, figure13, overhead_regular_ops,
                      print_result, print_table1, print_table2, table1,
                      table2)
from .openloop import Workload, run_openloop_workload
from .systems import EXTENSIBLE, SYSTEMS, make_coords, make_ensemble, run_all
from .workload import (WorkloadResult, run_barrier_workload,
                       run_counter_workload, run_election_workload,
                       run_queue_with_regular_clients, run_queue_workload,
                       run_regular_op_latency)

__all__ = [
    "SYSTEMS", "EXTENSIBLE", "make_ensemble", "make_coords", "run_all",
    "WorkloadResult",
    "run_counter_workload", "run_queue_workload", "run_barrier_workload",
    "run_election_workload", "run_queue_with_regular_clients",
    "run_regular_op_latency",
    "Workload", "run_openloop_workload",
    "FigureResult", "client_counts", "print_result",
    "table1", "table2", "print_table1", "print_table2",
    "figure6", "figure8", "figure10", "figure12", "figure13",
    "overhead_regular_ops",
]
