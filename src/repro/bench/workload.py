"""Closed-loop workload drivers for every experiment in §6.

Each driver builds one of the four systems, spawns ``n`` closed-loop
clients (at most one outstanding request each, as in the paper), runs a
warm-up phase, measures for a fixed window of simulated time, and
returns a :class:`WorkloadResult` carrying the same metrics the paper's
figures plot: throughput, mean latency, and data sent by clients per
operation.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..recipes import (ExtensionBarrier, ExtensionElection, ExtensionQueue,
                       ExtensionSharedCounter, TraditionalBarrier,
                       TraditionalElection, TraditionalQueue,
                       TraditionalSharedCounter, ensure_object)
from ..sim import IntervalThroughput, LatencyRecorder
from .systems import EXTENSIBLE, make_coords, make_ensemble, run_all

__all__ = [
    "WorkloadResult",
    "run_counter_workload",
    "run_queue_workload",
    "run_barrier_workload",
    "run_election_workload",
    "run_queue_with_regular_clients",
    "run_regular_op_latency",
    "run_read_heavy_workload",
]


@dataclass
class WorkloadResult:
    """One figure cell: a (system, #clients) measurement."""

    system: str
    clients: int
    throughput_ops: float
    mean_latency_ms: float
    p99_latency_ms: float
    client_kb_per_op: float
    completed_ops: int
    p50_latency_ms: float = float("nan")
    p999_latency_ms: float = float("nan")
    extra: Dict[str, float] = field(default_factory=dict)

    def row(self) -> str:
        return (f"{self.system:<5} n={self.clients:<3d} "
                f"tput={self.throughput_ops:>10.1f} ops/s  "
                f"lat={self.mean_latency_ms:>8.3f} ms  "
                f"p50/p99/p999={self.p50_latency_ms:.3f}/"
                f"{self.p99_latency_ms:.3f}/{self.p999_latency_ms:.3f} ms  "
                f"KB/op={self.client_kb_per_op:>8.3f}  "
                f"(ops={self.completed_ops})")


class _Window:
    """Measurement bookkeeping shared by all drivers."""

    def __init__(self, ensemble, raw_clients, warmup_ms: float,
                 measure_ms: float):
        self.env = ensemble.env
        self.net = ensemble.net
        self.nodes = [c.node_id for c in raw_clients]
        self.start = self.env.now + warmup_ms
        self.end = self.start + measure_ms
        self.latency = LatencyRecorder(warmup_until=self.start)
        self.throughput = IntervalThroughput(self.start, self.end)
        self._bytes_at_start = 0

        def snap(_event):
            self._bytes_at_start = self._client_bytes()

        timer = self.env.timeout(warmup_ms)
        timer.add_callback(snap)

    def _client_bytes(self) -> int:
        return sum(self.net.bytes_sent[node] for node in self.nodes)

    @property
    def open_(self) -> bool:
        return self.env.now < self.end

    def record(self, started_at: float) -> None:
        now = self.env.now
        self.latency.record(now, now - started_at)
        self.throughput.record(now)

    def result(self, system: str, clients: int,
               extra: Optional[Dict[str, float]] = None) -> WorkloadResult:
        ops = self.throughput.completed
        window_bytes = self._client_bytes() - self._bytes_at_start
        kb_per_op = (window_bytes / 1024.0 / ops) if ops else float("nan")
        # One sort for all three percentiles (the sample list can run to
        # hundreds of thousands of entries under open-loop drivers).
        ordered = sorted(self.latency.samples)

        def pct(p: float) -> float:
            if not ordered:
                return float("nan")
            rank = max(1, math.ceil(p / 100.0 * len(ordered)))
            return ordered[rank - 1]

        return WorkloadResult(
            system=system, clients=clients,
            throughput_ops=self.throughput.ops_per_second,
            mean_latency_ms=self.latency.mean,
            p50_latency_ms=pct(50.0),
            p99_latency_ms=pct(99.0),
            p999_latency_ms=pct(99.9),
            client_kb_per_op=kb_per_op,
            completed_ops=ops,
            extra=dict(extra or {}))

    def run(self, drain_ms: float = 50.0) -> None:
        self.env.run(until=self.end)
        # Let the bytes snapshot settle exactly at the window edge.
        self.env.run(until=self.end + drain_ms)


def _setup_recipes(ensemble, kind, coords, traditional_cls, extension_cls,
                   **kwargs):
    """Instantiate + set up one recipe object per client."""
    if kind in EXTENSIBLE:
        recipes = [extension_cls(c, **kwargs) for c in coords]
        run_all(ensemble, recipes[0].setup(register=True))
        for recipe in recipes[1:]:
            run_all(ensemble, recipe.setup(register=False))
    else:
        recipes = [traditional_cls(c, **kwargs) for c in coords]
        run_all(ensemble, recipes[0].setup())
    return recipes


# ---------------------------------------------------------------------------
# Figure 6: shared counter
# ---------------------------------------------------------------------------

def run_counter_workload(kind: str, n_clients: int, warmup_ms: float = 100.0,
                         measure_ms: float = 500.0,
                         seed: int = 31) -> WorkloadResult:
    """Closed-loop counter increments (Figure 6)."""
    ensemble = make_ensemble(kind, seed=seed)
    coords, raw = make_coords(ensemble, kind, n_clients)
    counters = _setup_recipes(ensemble, kind, coords,
                              TraditionalSharedCounter,
                              ExtensionSharedCounter)
    window = _Window(ensemble, raw, warmup_ms, measure_ms)

    def worker(counter):
        while window.open_:
            started = window.env.now
            yield from counter.increment()
            window.record(started)

    for counter in counters:
        ensemble.env.process(worker(counter))
    window.run()
    extra = {}
    if kind not in EXTENSIBLE:
        attempts = sum(c.attempts for c in counters)
        successes = max(1, sum(c.successes for c in counters))
        extra["tries_per_success"] = attempts / successes
    return window.result(kind, n_clients, extra)


# ---------------------------------------------------------------------------
# Figure 8: distributed queue
# ---------------------------------------------------------------------------

def run_queue_workload(kind: str, n_clients: int, warmup_ms: float = 100.0,
                       measure_ms: float = 500.0, payload: bytes = b"",
                       seed: int = 32, config=None) -> WorkloadResult:
    """Each client repeatedly adds one element then removes one (§6.1.2).

    Throughput counts *elements through the queue* (add+remove pairs);
    KB/op is client-sent data per element, the paper's cost metric.
    ``config`` optionally overrides the ensemble's service config (the
    wall-clock microbenchmark uses it to toggle Zab batching); the
    result's ``extra['sim_events']`` reports how many kernel events the
    run processed so events/s per wall-clock second can be derived.
    """
    kwargs = {"config": config} if config is not None else {}
    ensemble = make_ensemble(kind, seed=seed, **kwargs)
    coords, raw = make_coords(ensemble, kind, n_clients)
    queues = _setup_recipes(ensemble, kind, coords, TraditionalQueue,
                            ExtensionQueue)
    window = _Window(ensemble, raw, warmup_ms, measure_ms)

    def worker(queue):
        while window.open_:
            started = window.env.now
            yield from queue.add(payload)
            yield from queue.remove()
            window.record(started)

    for queue in queues:
        ensemble.env.process(worker(queue))
    window.run()
    result = window.result(kind, n_clients)
    result.extra["sim_events"] = float(ensemble.env.events_processed)
    return result


# ---------------------------------------------------------------------------
# Figure 10: distributed barrier
# ---------------------------------------------------------------------------

def run_barrier_workload(kind: str, n_clients: int, warmup_ms: float = 100.0,
                         measure_ms: float = 500.0, max_rounds: int = 4000,
                         seed: int = 33) -> WorkloadResult:
    """Repeated barrier episodes; latency is the per-enter latency.

    Throughput (extra key ``rounds_per_second``) counts completed
    rounds; the headline metrics are the paper's: average enter latency
    and client data per enter call.
    """
    ensemble = make_ensemble(kind, seed=seed)
    coords, raw = make_coords(ensemble, kind, n_clients)
    barriers = _setup_recipes(ensemble, kind, coords, TraditionalBarrier,
                              ExtensionBarrier, threshold=n_clients)
    if kind not in EXTENSIBLE:
        # Traditional ZooKeeper needs each round's registration parent.
        def presetup():
            for round_id in range(max_rounds):
                yield from barriers[0].setup_round(round_id)

        run_all(ensemble, presetup())
    window = _Window(ensemble, raw, warmup_ms, measure_ms)

    def worker(barrier):
        for round_id in range(max_rounds):
            if not window.open_:
                return
            started = window.env.now
            yield from barrier.enter(round_id)
            window.record(started)

    for barrier in barriers:
        ensemble.env.process(worker(barrier))
    window.run()
    result = window.result(kind, n_clients)
    result.extra["rounds_per_second"] = (
        result.throughput_ops / max(1, n_clients))
    return result


# ---------------------------------------------------------------------------
# Figure 12: leader election
# ---------------------------------------------------------------------------

def run_election_workload(kind: str, n_clients: int,
                          warmup_ms: float = 100.0,
                          measure_ms: float = 500.0,
                          seed: int = 34) -> WorkloadResult:
    """Stress test: a newly appointed leader immediately abdicates.

    Throughput is leader changes per second; ``signaling latency`` is
    the delay between an abdication completing and the *next* leader's
    become_leader call returning (the paper's §6.1.4 metric, stored both
    as the latency column and in ``extra['signaling_latency_ms']``).
    """
    ensemble = make_ensemble(kind, seed=seed)
    coords, raw = make_coords(ensemble, kind, n_clients)
    elections = _setup_recipes(ensemble, kind, coords, TraditionalElection,
                               ExtensionElection)
    window = _Window(ensemble, raw, warmup_ms, measure_ms)
    last_abdication: List[Optional[float]] = [None]

    def worker(election, index):
        while window.open_:
            started = window.env.now
            yield from election.become_leader()
            now = window.env.now
            signal_origin = last_abdication[0]
            if signal_origin is not None and signal_origin >= started:
                window.latency.record(now, now - signal_origin)
            window.throughput.record(now)
            yield from election.abdicate()
            last_abdication[0] = window.env.now

    for index, election in enumerate(elections):
        ensemble.env.process(worker(election, index))
    window.run()
    result = window.result(kind, n_clients)
    result.extra["signaling_latency_ms"] = result.mean_latency_ms
    return result


# ---------------------------------------------------------------------------
# Figure 13: queue extension vs. regular clients
# ---------------------------------------------------------------------------

def run_queue_with_regular_clients(
        kind: str, queue_clients: int, regular_readers: int = 15,
        regular_writers: int = 15, object_bytes: int = 256,
        warmup_ms: float = 100.0, measure_ms: float = 500.0,
        seed: int = 35) -> WorkloadResult:
    """§6.2's mixed workload: the distributed-queue experiment plus 30
    regular clients reading/writing 256-byte objects.

    Returns queue throughput plus ``extra['regular_read_ms']`` and
    ``extra['regular_write_ms']``.
    """
    if kind not in EXTENSIBLE:
        raise ValueError("Figure 13 runs on the extensible systems only")
    ensemble = make_ensemble(kind, seed=seed)
    total = queue_clients + regular_readers + regular_writers
    coords, raw = make_coords(ensemble, kind, total)
    queue_coords = coords[:queue_clients]
    reader_coords = coords[queue_clients:queue_clients + regular_readers]
    writer_coords = coords[queue_clients + regular_readers:]

    queues = [ExtensionQueue(c) for c in queue_coords]
    run_all(ensemble, queues[0].setup(register=True))
    for queue in queues[1:]:
        run_all(ensemble, queue.setup(register=False))

    # Regular clients touch their own 256-byte objects.
    payload = b"x" * object_bytes

    def prepare(coord, index):
        yield from ensure_object(coord, f"/reg{index}", payload)

    for index, coord in enumerate(reader_coords + writer_coords):
        run_all(ensemble, prepare(coord, index))

    window = _Window(ensemble, raw[:queue_clients], warmup_ms, measure_ms)
    read_lat = LatencyRecorder(warmup_until=window.start)
    write_lat = LatencyRecorder(warmup_until=window.start)

    def queue_worker(queue):
        while window.open_:
            started = window.env.now
            yield from queue.add(b"")
            yield from queue.remove()
            window.record(started)

    def reader(coord, index):
        while window.open_:
            started = window.env.now
            yield from coord.read(f"/reg{index}")
            read_lat.record(window.env.now, window.env.now - started)

    def writer(coord, index):
        while window.open_:
            started = window.env.now
            yield from coord.update(f"/reg{index}", payload)
            write_lat.record(window.env.now, window.env.now - started)

    for queue in queues:
        ensemble.env.process(queue_worker(queue))
    for index, coord in enumerate(reader_coords):
        ensemble.env.process(reader(coord, index))
    for offset, coord in enumerate(writer_coords):
        ensemble.env.process(writer(coord, regular_readers + offset))
    window.run()
    result = window.result(kind, queue_clients)
    result.extra["regular_read_ms"] = read_lat.mean
    result.extra["regular_write_ms"] = write_lat.mean
    return result


# ---------------------------------------------------------------------------
# Read-path scaling: 90/10 read-heavy regular clients
# ---------------------------------------------------------------------------

def run_read_heavy_workload(
        kind: str, n_clients: int, read_fraction: float = 0.9,
        object_bytes: int = 256, warmup_ms: float = 100.0,
        measure_ms: float = 500.0, seed: int = 37,
        local_reads: bool = False, n_observers: int = 0,
        pin_leader: bool = False, config=None) -> WorkloadResult:
    """Fig-13-style regular clients, but read-dominated (default 90/10).

    Each client loops over its own 256-byte object, choosing read vs
    update with a per-client deterministic RNG. This is the workload the
    read-scaling layer is judged on:

    * ``pin_leader`` connects every client to replica 0 — the
      leader-only baseline in which all reads serialize on one CPU;
    * ``local_reads`` turns on session-consistent local reads (ZK
      family) or the BFT-SMaRt unordered-read optimization (DS family);
    * ``n_observers`` adds non-voting learners (ZK family only), which
      the ensemble's client spread then exercises;
    * ``config`` overrides the service config wholesale (e.g. a
      ``ZkConfig(kernel="raft")`` for the consensus-kernel comparison);
      ``local_reads`` is then applied on top of it.

    Extras carry split read/write latencies, in-window op counts, and
    ``sim_events`` for the wall-clock bench.
    """
    kwargs = {}
    if config is not None:
        kwargs["config"] = config
    if kind in ("zk", "ezk"):
        if local_reads:
            from ..zk.server import ZkConfig
            kwargs["config"] = dataclasses.replace(
                config or ZkConfig(), local_reads=True)
        if n_observers:
            kwargs["n_observers"] = n_observers
    else:
        if n_observers or pin_leader:
            raise ValueError(
                "observers / leader pinning apply to the ZK family only")
        if local_reads:
            from ..depspace.server import DsConfig
            kwargs["config"] = dataclasses.replace(
                config or DsConfig(), unordered_reads=True)
    ensemble = make_ensemble(kind, seed=seed, **kwargs)
    replica = ensemble.replica_ids[0] if pin_leader else None
    coords, raw = make_coords(ensemble, kind, n_clients, replica=replica)
    payload = b"x" * object_bytes

    def prepare(coord, index):
        yield from ensure_object(coord, f"/robj{index}", payload)

    for index, coord in enumerate(coords):
        run_all(ensemble, prepare(coord, index))

    window = _Window(ensemble, raw, warmup_ms, measure_ms)
    read_lat = LatencyRecorder(warmup_until=window.start)
    write_lat = LatencyRecorder(warmup_until=window.start)
    counts = {"reads": 0, "writes": 0}

    def worker(coord, index):
        rng = random.Random(f"read-heavy-{seed}-{index}")
        path = f"/robj{index}"  # built once, not per op
        while window.open_:
            started = window.env.now
            if rng.random() < read_fraction:
                yield from coord.read(path)
                read_lat.record(window.env.now, window.env.now - started)
                if started >= window.start:
                    counts["reads"] += 1
            else:
                yield from coord.update(path, payload)
                write_lat.record(window.env.now, window.env.now - started)
                if started >= window.start:
                    counts["writes"] += 1
            window.record(started)

    for index, coord in enumerate(coords):
        ensemble.env.process(worker(coord, index))
    window.run()
    result = window.result(kind, n_clients)
    result.extra["read_ms"] = read_lat.mean
    result.extra["write_ms"] = write_lat.mean
    result.extra["reads"] = float(counts["reads"])
    result.extra["writes"] = float(counts["writes"])
    result.extra["sim_events"] = float(ensemble.env.events_processed)
    return result


# ---------------------------------------------------------------------------
# §6.2: extensibility overhead on regular operations
# ---------------------------------------------------------------------------

def run_regular_op_latency(kind: str, n_clients: int = 10,
                           object_bytes: int = 256,
                           warmup_ms: float = 100.0,
                           measure_ms: float = 500.0,
                           seed: int = 36) -> WorkloadResult:
    """Plain read/write latency with no extensions registered.

    Comparing ZK↔EZK and DS↔EDS quantifies the cost of the extension
    machinery on clients that never trigger it (§6.2: < 0.4 %).
    """
    ensemble = make_ensemble(kind, seed=seed)
    coords, raw = make_coords(ensemble, kind, n_clients)
    payload = b"x" * object_bytes

    def prepare(coord, index):
        yield from ensure_object(coord, f"/obj{index}", payload)

    for index, coord in enumerate(coords):
        run_all(ensemble, prepare(coord, index))

    window = _Window(ensemble, raw, warmup_ms, measure_ms)
    read_lat = LatencyRecorder(warmup_until=window.start)
    write_lat = LatencyRecorder(warmup_until=window.start)

    def worker(coord, index):
        toggle = index % 2 == 0
        while window.open_:
            started = window.env.now
            if toggle:
                yield from coord.read(f"/obj{index}")
                read_lat.record(window.env.now, window.env.now - started)
            else:
                yield from coord.update(f"/obj{index}", payload)
                write_lat.record(window.env.now, window.env.now - started)
            window.record(started)

    for index, coord in enumerate(coords):
        ensemble.env.process(worker(coord, index))
    window.run()
    result = window.result(kind, n_clients)
    result.extra["regular_read_ms"] = read_lat.mean
    result.extra["regular_write_ms"] = write_lat.mean
    return result
