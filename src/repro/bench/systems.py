"""Builders for the four evaluated systems (ZK, EZK, DS, EDS).

The paper's configuration: every system tolerates one faulty server —
three replicas for (E)ZK, four for (E)DS — and each closed-loop client
has at most one request outstanding (§6).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..depspace import DsEnsemble
from ..depspace.bft import BftConfig
from ..depspace.server import DsConfig
from ..eds import EdsEnsemble
from ..ezk import EzkEnsemble
from ..raft import RaftConfig
from ..recipes import CoordClient, DsCoordClient, ZkCoordClient
from ..zk import ZkEnsemble
from ..zk.server import ZkConfig

__all__ = ["SYSTEMS", "EXTENSIBLE", "make_ensemble", "make_coords",
           "make_chaos_ensemble", "run_all", "client_node_ids"]

SYSTEMS = ("zk", "ezk", "ds", "eds")
EXTENSIBLE = frozenset({"ezk", "eds"})


def make_ensemble(kind: str, seed: int = 11, **kwargs):
    """Build and start one of the four evaluated systems."""
    if kind == "zk":
        ensemble = ZkEnsemble(n_replicas=3, seed=seed, **kwargs)
    elif kind == "ezk":
        ensemble = EzkEnsemble(n_replicas=3, seed=seed, **kwargs)
    elif kind == "ds":
        ensemble = DsEnsemble(f=1, seed=seed, **kwargs)
    elif kind == "eds":
        ensemble = EdsEnsemble(f=1, seed=seed, **kwargs)
    else:
        raise ValueError(f"unknown system {kind!r}")
    ensemble.start()
    return ensemble


def make_chaos_ensemble(kind: str, seed: int = 11, n_clients: int = 3,
                        kernel: Optional[str] = None, obs=None):
    """Ensemble + connected raw clients tuned for the chaos harness.

    ZK-family ensembles run with ``local_reads`` and one observer so
    fault schedules exercise the read-parking and observer-resync
    machinery; sessions and leases are stretched to 8 s so a ≤2 s
    fault window cannot expire a healthy-but-disconnected client (which
    would turn network faults into spurious session churn the checkers
    cannot distinguish from real violations). Clients connect before
    this returns — the harness injects faults into running workloads,
    not into bootstrap.

    ``kernel`` selects the consensus kernel (``None`` keeps the family
    default: Zab for ZK, PBFT for DS). ``"raft"`` runs the same
    ensembles over :mod:`repro.raft`, seeding the election-timeout RNG
    from the schedule seed so replays stay byte-identical.

    ``obs`` attaches an :class:`~repro.obs.ObsConfig` so chaos replays
    can dump a causal trace of the exact faulted run (``--trace`` on
    the replay CLI); ``None`` keeps the plane uninstalled and replays
    byte-identical to historical cells.
    """
    if kind in ("zk", "ezk"):
        cls = ZkEnsemble if kind == "zk" else EzkEnsemble
        config = ZkConfig(local_reads=True, obs=obs)
        if kernel is not None and kernel != "zab":
            config.kernel = kernel
            config.raft = RaftConfig(seed=seed)
        ensemble = cls(n_replicas=3, seed=seed, config=config, n_observers=1)
        ensemble.start()
        raw = [ensemble.client(session_timeout_ms=8000.0)
               for _ in range(n_clients)]

        def connect_all():
            for client in raw:
                yield from client.connect()

        proc = ensemble.env.process(connect_all())
        ensemble.env.run(until=proc)
    elif kind in ("ds", "eds"):
        cls = DsEnsemble if kind == "ds" else EdsEnsemble
        # Status gossip on: without PBFT's checkpoint stand-in a replica
        # healed from a partition after the last client request never
        # learns it missed a view (liveness, not figure-relevant).
        config = DsConfig(lease_ms=8000.0,
                          bft=BftConfig(status_interval_ms=500.0),
                          obs=obs)
        if kernel is not None and kernel != "pbft":
            config.kernel = kernel
            config.raft = RaftConfig(seed=seed)
        ensemble = cls(f=1, seed=seed, config=config)
        ensemble.start()
        raw = [ensemble.client() for _ in range(n_clients)]
    else:
        raise ValueError(f"unknown system {kind!r}")
    return ensemble, raw


def make_coords(ensemble, kind: str, n: int,
                replica: Optional[str] = None,
                client_kwargs: Optional[dict] = None
                ) -> Tuple[List[CoordClient], list]:
    """``n`` connected abstract clients plus the raw client objects.

    ``replica`` pins every client to one replica (ZK-family only) —
    the read-scaling benchmark uses it for its leader-only baseline.
    ``client_kwargs`` is forwarded to ``ensemble.client`` (e.g.
    ``{"cached_reads": True}`` for the lease-cache benchmarks).
    """
    extra = client_kwargs or {}
    if replica is not None:
        raw = [ensemble.client(replica=replica, **extra) for _ in range(n)]
    else:
        raw = [ensemble.client(**extra) for _ in range(n)]
    if kind in ("zk", "ezk"):
        def connect_all():
            for client in raw:
                yield from client.connect()

        proc = ensemble.env.process(connect_all())
        ensemble.env.run(until=proc)
        coords: List[CoordClient] = [ZkCoordClient(c) for c in raw]
    else:
        coords = [DsCoordClient(c) for c in raw]
    return coords, raw


def client_node_ids(raw_clients) -> List[str]:
    return [client.node_id for client in raw_clients]


def run_all(ensemble, *generators):
    """Run client processes to completion; returns their results."""
    procs = [ensemble.env.process(gen) for gen in generators]
    return [ensemble.env.run(until=proc) for proc in procs]
