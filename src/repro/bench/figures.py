"""One generator per table/figure of the paper's evaluation (§6).

Each ``figure*()`` function sweeps the paper's x-axis (number of
clients) over the relevant systems and returns a :class:`FigureResult`
whose rows mirror the published series. ``print_result`` renders the
same rows/series the paper plots. Full 6-point sweeps are expensive in
a discrete-event simulator; set ``REPRO_FULL=1`` for the paper's exact
client counts, otherwise a 4-point sweep is used.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .workload import (WorkloadResult, run_barrier_workload,
                       run_counter_workload, run_election_workload,
                       run_queue_with_regular_clients,
                       run_queue_workload, run_regular_op_latency)

__all__ = [
    "FigureResult", "client_counts", "print_result",
    "table1", "table2",
    "figure6", "figure8", "figure10", "figure12", "figure13",
    "overhead_regular_ops",
]

FULL_SWEEP = os.environ.get("REPRO_FULL", "") not in ("", "0")


def client_counts(minimum: int = 1) -> Tuple[int, ...]:
    """The figure x-axis: the paper's counts, or a reduced sweep."""
    counts = (1, 10, 20, 30, 40, 50) if FULL_SWEEP else (1, 10, 30, 50)
    return tuple(max(minimum, c) for c in counts if c >= minimum or c == 1)


@dataclass
class FigureResult:
    """A reproduced table/figure: named series of workload results."""

    name: str
    description: str
    series: Dict[str, List[WorkloadResult]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def factor(self, fast: str, slow: str, clients: int) -> float:
        """Throughput ratio fast/slow at a given client count."""
        def at(system):
            for result in self.series[system]:
                if result.clients == clients:
                    return result
            raise KeyError(f"no {system} point at {clients} clients")
        return at(fast).throughput_ops / max(1e-9, at(slow).throughput_ops)


def print_result(figure: FigureResult) -> str:
    lines = [f"== {figure.name}: {figure.description} =="]
    for system, results in figure.series.items():
        lines.append(f"-- {system} --")
        for result in results:
            lines.append("  " + result.row())
            for key, value in result.extra.items():
                lines.append(f"      {key} = {value:.3f}")
    for note in figure.notes:
        lines.append(f"  note: {note}")
    text = "\n".join(lines)
    print(text)
    return text


def _sweep(systems: Sequence[str], counts: Sequence[int],
           runner: Callable[..., WorkloadResult],
           **kwargs) -> Dict[str, List[WorkloadResult]]:
    return {
        system: [runner(system, n, **kwargs) for n in counts]
        for system in systems
    }


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

#: Table 1 rows: (system, data model, sync primitive, wait-free).
TABLE1_ROWS = [
    ("Boxwood", "Key-Value store", "Locks", "No"),
    ("Chubby", "(Small) File system", "Locks", "No"),
    ("Sinfonia", "Key-Value store", "Microtransactions", "Yes"),
    ("DepSpace", "Tuple space", "cas/replace ops", "Yes"),
    ("ZooKeeper", "Hierar. of data nodes", "Sequencers", "Yes"),
    ("etcd", "Hierar. of data nodes", "Sequen./Atomic ops", "Yes"),
    ("LogCabin", "Hierar. of data nodes", "Conditions", "Yes"),
]

#: Which Table 1 rows this repository actually implements, and where.
TABLE1_IMPLEMENTED = {
    "ZooKeeper": "repro.zk (DataTree sequential nodes = sequencers; wait-free)",
    "DepSpace": "repro.depspace (cas/replace on the tuple space; wait-free)",
}


def table1() -> List[Tuple[str, str, str, str]]:
    """Table 1: coordination services and their characteristics."""
    return list(TABLE1_ROWS)


def print_table1() -> str:
    lines = ["== Table 1: coordination services and their characteristics =="]
    header = f"{'System':<10} {'Data model':<22} {'Sync primitive':<20} Wait-free"
    lines.append(header)
    for system, model, primitive, wait_free in table1():
        line = f"{system:<10} {model:<22} {primitive:<20} {wait_free}"
        if system in TABLE1_IMPLEMENTED:
            line += f"   [implemented: {TABLE1_IMPLEMENTED[system]}]"
        lines.append(line)
    text = "\n".join(lines)
    print(text)
    return text


#: Table 2 rows: (abstract method, ZooKeeper mapping, DepSpace mapping).
TABLE2_ROWS = [
    ("create(o)", "create(o)", "out(o)"),
    ("delete(o)", "delete(o, ANY_VERSION)", "inp(o)"),
    ("read(o)", "getData(o)", "rdp(o)"),
    ("update(o, c)", "setData(o, c, ANY_VERSION)", "replace(o, ANY, nc)"),
    ("cas(o, cc, nc)", "setData(o, nc, version-of-last-read)",
     "replace(o, cc, nc)"),
    ("subObjects(o)", "getChildren(o) + getData(child)*",
     "rdAll(<o, SUB_ANY>)"),
    ("block(o)", "exists-watch, unblock on creation event", "rd(o)"),
    ("monitor(x, o)", "create o as ephemeral node",
     "out o as a lease tuple"),
]


def table2() -> List[Tuple[str, str, str]]:
    """Table 2: the abstract API and its per-service realization."""
    return list(TABLE2_ROWS)


def print_table2() -> str:
    lines = ["== Table 2: coordination-service methods and equivalences =="]
    lines.append(f"{'Method':<16} {'ZooKeeper':<40} DepSpace")
    for method, zk, ds in table2():
        lines.append(f"{method:<16} {zk:<40} {ds}")
    lines.append("  (live mappings: repro.recipes.zk_adapter / ds_adapter)")
    text = "\n".join(lines)
    print(text)
    return text


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------

_ALL = ("zk", "ezk", "ds", "eds")
_EXT = ("ezk", "eds")


def figure6(counts: Optional[Sequence[int]] = None,
            measure_ms: float = 400.0) -> FigureResult:
    """Figure 6: shared-counter throughput and latency vs #clients."""
    counts = counts or client_counts()
    figure = FigureResult(
        "Figure 6", "shared counter: throughput (ops/s) and latency (ms)")
    figure.series = _sweep(_ALL, counts, run_counter_workload,
                           measure_ms=measure_ms)
    ref = max(counts)
    figure.notes.append(
        f"EZK/ZK throughput factor at {ref} clients: "
        f"{figure.factor('ezk', 'zk', ref):.1f}x (paper: ~20x)")
    figure.notes.append(
        f"EDS/DS throughput factor at {ref} clients: "
        f"{figure.factor('eds', 'ds', ref):.1f}x")
    return figure


def figure8(counts: Optional[Sequence[int]] = None,
            measure_ms: float = 400.0) -> FigureResult:
    """Figure 8: queue throughput and client data (KB/op) vs #clients."""
    counts = counts or client_counts()
    figure = FigureResult(
        "Figure 8",
        "distributed queue: throughput (elements/s) and client KB per element")
    figure.series = _sweep(_ALL, counts, run_queue_workload,
                           measure_ms=measure_ms)
    ref = max(counts)
    figure.notes.append(
        f"EZK/ZK factor at {ref} clients: "
        f"{figure.factor('ezk', 'zk', ref):.1f}x (paper: 17x)")
    figure.notes.append(
        f"EDS/DS factor at {ref} clients: "
        f"{figure.factor('eds', 'ds', ref):.1f}x (paper: 24x)")
    return figure


def figure10(counts: Optional[Sequence[int]] = None,
             measure_ms: float = 400.0) -> FigureResult:
    """Figure 10: barrier latency and client data (KB/op) vs #clients."""
    counts = counts or client_counts(minimum=2)
    figure = FigureResult(
        "Figure 10",
        "distributed barrier: enter latency (ms) and client KB per enter")
    figure.series = _sweep(_ALL, counts, run_barrier_workload,
                           measure_ms=measure_ms)
    return figure


def figure12(counts: Optional[Sequence[int]] = None,
             measure_ms: float = 400.0) -> FigureResult:
    """Figure 12: election throughput and signaling latency vs #clients."""
    counts = counts or client_counts(minimum=2)
    figure = FigureResult(
        "Figure 12",
        "leader election: throughput (elections/s) and signaling latency (ms)")
    figure.series = _sweep(_ALL, counts, run_election_workload,
                           measure_ms=measure_ms)

    def signaling(system, clients):
        for result in figure.series[system]:
            if result.clients == clients:
                return result.extra.get("signaling_latency_ms", float("nan"))
        return float("nan")

    ref = max(counts)
    zk_gain = 1.0 - signaling("ezk", ref) / signaling("zk", ref)
    ds_gain = 1.0 - signaling("eds", ref) / signaling("ds", ref)
    figure.notes.append(
        f"EZK signaling latency {zk_gain:.0%} lower than ZooKeeper "
        "(paper: ~25% lower)")
    figure.notes.append(
        f"EDS signaling latency {ds_gain:.0%} lower than DepSpace "
        "(paper: ~45% lower)")
    return figure


def figure13(queue_counts: Optional[Sequence[int]] = None,
             measure_ms: float = 400.0) -> FigureResult:
    """Figure 13: regular read/write latency vs queue throughput."""
    queue_counts = queue_counts or ((1, 10, 20, 30, 40, 50) if FULL_SWEEP
                                    else (1, 10, 30, 50))
    figure = FigureResult(
        "Figure 13",
        "impact of the queue extension on 30 regular clients "
        "(15 readers + 15 writers, 256-byte objects)")
    figure.series = _sweep(_EXT, queue_counts,
                           run_queue_with_regular_clients,
                           measure_ms=measure_ms)
    return figure


def overhead_regular_ops(measure_ms: float = 400.0) -> FigureResult:
    """§6.2: latency of plain reads/writes, extensible vs. base system."""
    figure = FigureResult(
        "§6.2 overhead",
        "regular-operation latency with no extensions registered")
    figure.series = _sweep(_ALL, (10,), run_regular_op_latency,
                           measure_ms=measure_ms)

    def mean_of(system, key):
        return figure.series[system][0].extra[key]

    for base, ext in (("zk", "ezk"), ("ds", "eds")):
        for key in ("regular_read_ms", "regular_write_ms"):
            overhead = mean_of(ext, key) / mean_of(base, key) - 1.0
            figure.notes.append(
                f"{ext} vs {base} {key.replace('regular_', '').replace('_ms', '')}"
                f" overhead: {overhead:+.2%} (paper: < 0.4%)")
    return figure
