"""Open-loop aggregate clients: modeling 100k+ client populations.

The closed-loop drivers in :mod:`repro.bench.workload` spawn one
simulated process (and one session) per client, which caps the modeled
population at a few hundred before per-client kernel overhead dominates.
This module decouples the *modeled* population from the *simulated*
machinery, following the methodology critique in "How to Evaluate
Distributed Coordination Systems?" (PAPERS.md): real coordination
traffic is open-loop — arrivals do not wait for completions — with
skewed key popularity and tail-dominated latency.

One **arrival generator** process emits the aggregate request stream of
``Workload.clients`` virtual clients (Poisson, uniform, or bursty), each
request drawing a key from a Zipf-skewed popularity distribution and an
op from the read/write mix. A small pool of real sessions — each
pipelining many in-flight RPCs, like the multiplexed connections of a
proxy tier — executes the stream. Latency is measured from *arrival*
(not dispatch), so queueing delay under overload shows up in the tail
percentiles exactly as it would for a real open-loop population.

Usage::

    from repro.bench.openloop import Workload, run_openloop_workload
    result = run_openloop_workload(
        "ezk", Workload(mix={"read": 0.9, "write": 0.1},
                        skew=0.99, arrival="poisson",
                        clients=100_000, ops_per_client_s=0.5))
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..recipes import ensure_object
from .systems import make_coords, make_ensemble, run_all
from .workload import WorkloadResult, _Window

__all__ = ["Workload", "run_openloop_workload", "ARRIVALS"]

ARRIVALS = ("poisson", "uniform", "bursty")


@dataclass(frozen=True)
class Workload:
    """Declarative spec of an aggregate open-loop client population."""

    #: op mix; fractions must sum to 1 (keys: "read", "write").
    mix: Dict[str, float] = field(
        default_factory=lambda: {"read": 0.9, "write": 0.1})
    #: Zipf exponent over the key space (0 = uniform popularity;
    #: 0.99 matches the YCSB default).
    skew: float = 0.99
    #: arrival process: "poisson" | "uniform" | "bursty".
    arrival: str = "poisson"
    #: modeled client population (virtual clients, not sessions).
    clients: int = 100_000
    #: per-virtual-client request rate; the generator emits the
    #: aggregate ``clients * ops_per_client_s`` stream.
    ops_per_client_s: float = 0.5
    #: distinct objects the population touches.
    keys: int = 512
    #: bursty arrivals: peak-to-mean rate ratio and the fraction of
    #: each period spent at peak (mean rate is preserved).
    burst_factor: float = 5.0
    burst_fraction: float = 0.1
    burst_period_ms: float = 50.0
    #: session churn: short-lived sessions opened per second alongside
    #: the op stream (connect → ephemeral create → close, with every
    #: 4th abandoned to exercise expiry + reaping). 0 = off; zk family
    #: only.
    churn_per_s: float = 0.0
    #: watcher fleet pinned to the hottest key: every write to it fans
    #: out this many notifications. 0 = off; zk family only.
    watch_fanout: int = 0
    #: lease-protected client caching (``ZkConfig.leases`` +
    #: ``cached_reads=True`` sessions): hot reads served sub-RTT from
    #: client memory. Off = the historical plain read path; zk family
    #: only.
    cached_reads: bool = False
    #: chain-replicated hot-key tier: promoted keys route to a
    #: 3-member chain (writes at head, reads at tail) with the
    #: coordination tree as control plane. Off by default; zk family
    #: only.
    hot_chain: bool = False
    #: Zipf exponent for the *write* key choice; ``None`` reuses
    #: ``skew``. Read-hot configuration data is rarely also write-hot —
    #: ``zipf_hot`` sets 0.0 (uniform writes) so leases on hot keys
    #: survive long enough to matter.
    write_skew: Optional[float] = None

    @property
    def rate_ops_per_ms(self) -> float:
        return self.clients * self.ops_per_client_s / 1000.0

    def validate(self) -> None:
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"arrival {self.arrival!r}: expected one of {ARRIVALS}")
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"mix fractions sum to {total}, expected 1.0")
        if unknown := set(self.mix) - {"read", "write"}:
            raise ValueError(f"unknown mix ops: {sorted(unknown)}")
        if self.rate_ops_per_ms <= 0.0:
            raise ValueError("clients * ops_per_client_s must be positive")
        if not 0.0 <= self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in [0, 1)")
        if self.arrival == "bursty" and \
                self.burst_factor * self.burst_fraction >= 1.0:
            raise ValueError(
                "burst_factor * burst_fraction must stay below 1 so the "
                "off-peak rate remains positive")
        if self.churn_per_s < 0.0:
            raise ValueError("churn_per_s must be non-negative")
        if self.watch_fanout < 0:
            raise ValueError("watch_fanout must be non-negative")


def _zipf_cdf(n_keys: int, skew: float) -> List[float]:
    """Cumulative popularity of ``n_keys`` ranks under a Zipf(skew) law."""
    weights = [1.0 / (rank ** skew) for rank in range(1, n_keys + 1)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)
    cdf[-1] = 1.0
    return cdf


def run_openloop_workload(
        kind: str, workload: Workload, warmup_ms: float = 100.0,
        measure_ms: float = 500.0, seed: int = 41, object_bytes: int = 256,
        sessions: int = 16, inflight_per_session: int = 64,
        local_reads: bool = True, n_observers: int = 2) -> WorkloadResult:
    """Drive ``kind`` with the aggregate stream described by ``workload``.

    ``sessions * inflight_per_session`` bounds simultaneously in-flight
    requests (the aggregate pipe width); arrivals beyond it queue, and
    their queueing delay is charged to their latency. Read scaling
    (``local_reads`` + observers, ZK family) defaults on — the point of
    the open-loop driver is large populations, which are read-path
    bound.

    Returns a :class:`WorkloadResult` whose ``clients`` field is the
    *modeled* population; extras carry offered vs achieved rate, the
    arrival/backlog accounting, and ``sim_events`` for the wall-clock
    bench.
    """
    workload.validate()
    if kind not in ("zk", "ezk") and \
            (workload.churn_per_s or workload.watch_fanout
             or workload.cached_reads or workload.hot_chain):
        raise ValueError(
            "churn_per_s / watch_fanout / cached_reads / hot_chain require "
            "the zk family (sessions, watches and leases are ZooKeeper "
            "machinery)")
    kwargs = {}
    if kind in ("zk", "ezk"):
        if local_reads or workload.cached_reads:
            from ..zk.server import ZkConfig
            leases = None
            if workload.cached_reads:
                from ..zk.leases import LeaseConfig
                leases = LeaseConfig()
            kwargs["config"] = ZkConfig(local_reads=local_reads,
                                        leases=leases)
        if n_observers:
            kwargs["n_observers"] = n_observers
    elif local_reads:
        from ..depspace.server import DsConfig
        kwargs["config"] = DsConfig(unordered_reads=True)
    ensemble = make_ensemble(kind, seed=seed, **kwargs)
    env = ensemble.env
    client_kwargs = {"cached_reads": True} if workload.cached_reads else None
    coords, raw = make_coords(ensemble, kind, sessions,
                              client_kwargs=client_kwargs)
    payload = b"x" * object_bytes
    paths = [f"/ol{key}" for key in range(workload.keys)]

    def prepare(coord, path):
        yield from ensure_object(coord, path, payload)

    for index, path in enumerate(paths):
        run_all(ensemble, prepare(coords[index % sessions], path))

    window = _Window(ensemble, raw, warmup_ms, measure_ms)
    rng = random.Random(f"openloop-{kind}-{seed}")
    cdf = _zipf_cdf(workload.keys, workload.skew) if workload.skew else None
    if workload.write_skew is None:
        write_cdf = cdf
    else:
        write_cdf = _zipf_cdf(workload.keys, workload.write_skew) \
            if workload.write_skew else None
    read_fraction = workload.mix.get("read", 0.0)
    rate = workload.rate_ops_per_ms

    #: (arrival_time, is_read, path) requests awaiting a free slot.
    pending: deque = deque()
    #: parked executor slots waiting for work.
    idle: deque = deque()
    stats = {"arrivals": 0, "executed": 0, "max_backlog": 0,
             "reads": 0, "writes": 0}
    #: arrival-to-completion read latencies inside the measure window
    #: (the sub-RTT cache headline is a *read* percentile, and mixing
    #: revocation-delayed writes into one pool would bury it).
    read_lat: List[float] = []

    def next_gap() -> float:
        if workload.arrival == "uniform":
            return 1.0 / rate
        if workload.arrival == "bursty":
            period = workload.burst_period_ms
            in_burst = (env.now % period) < workload.burst_fraction * period
            factor = workload.burst_factor if in_burst else (
                (1.0 - workload.burst_factor * workload.burst_fraction)
                / (1.0 - workload.burst_fraction))
            return rng.expovariate(rate * factor)
        return rng.expovariate(rate)

    def generator():
        while window.open_:
            yield env.timeout(next_gap())
            if not window.open_:
                return
            # Draw order (key draw, then op coin) is part of the
            # recorded baselines: keep it even though the op now picks
            # which cdf interprets the key draw.
            if cdf is not None:
                u, base_key = rng.random(), None
            else:
                u, base_key = None, rng.randrange(workload.keys)
            is_read = rng.random() < read_fraction
            pick = cdf if is_read else write_cdf
            if pick is not None:
                key = bisect_right(
                    pick, u if u is not None
                    else (base_key + 0.5) / workload.keys)
            else:
                key = base_key if base_key is not None \
                    else int(u * workload.keys)
            if key >= workload.keys:  # guard the cdf[-1] == 1.0 edge
                key = workload.keys - 1
            request = (env.now, is_read, paths[key])
            pending.append(request)
            stats["arrivals"] += 1
            if len(pending) > stats["max_backlog"]:
                stats["max_backlog"] = len(pending)
            if idle:
                idle.popleft().succeed()

    def executor(coord, router=None):
        while True:
            while not pending:
                if not window.open_:
                    return
                slot = env.event()
                idle.append(slot)
                yield slot
            arrived, is_read, path = pending.popleft()
            if is_read:
                if router is not None:
                    yield from router.read(path)
                else:
                    yield from coord.read(path)
            else:
                if router is not None:
                    yield from router.update(path, payload)
                else:
                    yield from coord.update(path, payload)
            stats["executed"] += 1
            # Latency runs from *arrival*: open-loop queueing delay is
            # part of what the population experiences.
            window.record(arrived)
            if env.now >= window.start and env.now <= window.end:
                if is_read:
                    stats["reads"] += 1
                    read_lat.append(env.now - arrived)
                else:
                    stats["writes"] += 1

    # Session churn + watch fan-out riders (zk family, flag-gated).
    # Their RNG is a separate stream and their processes exist only
    # when the knobs are set, so default runs stay byte-identical.
    side_stats = {"churn_connects": 0, "churn_closed": 0,
                  "churn_abandoned": 0, "watch_notifications": 0}

    def churn_session(i: int):
        from ..zk.errors import ZkError
        client = ensemble.client(node_id=f"olchurn{i}",
                                 session_timeout_ms=2000.0, resilient=True)
        try:
            yield from client.connect()
        except ZkError:
            return
        side_stats["churn_connects"] += 1
        try:
            yield from client.create(f"/olchurn{i}", b"c", ephemeral=True)
        except ZkError:
            pass
        if i % 4 == 3:
            client.abandon()        # expiry sweep reaps the ephemeral
            side_stats["churn_abandoned"] += 1
            return
        try:
            yield from client.close()
            side_stats["churn_closed"] += 1
        except ZkError:
            pass

    def churner():
        churn_rng = random.Random(f"openloop-churn-{kind}-{seed}")
        rate_ms = workload.churn_per_s / 1000.0
        i = 0
        while window.open_:
            yield env.timeout(churn_rng.expovariate(rate_ms))
            if not window.open_:
                return
            env.process(churn_session(i))
            i += 1

    def watcher(i: int):
        from ..zk.errors import ZkError
        client = ensemble.client(node_id=f"olwatch{i}",
                                 session_timeout_ms=8000.0, resilient=True)
        try:
            yield from client.connect()
        except ZkError:
            return
        hot = paths[0]   # Zipf rank 1: the key writes hit most often
        while window.open_:
            waiter = client.wait_for_event(hot)
            try:
                yield from client.get_data(hot, watch=True)
            except ZkError:
                client.discard_waiter(hot, waiter)
                yield env.timeout(100.0)
                continue
            note = yield from client.await_notification(
                hot, waiter, deadline=env.timeout(1000.0))
            client.discard_waiter(hot, waiter)
            if note is not None:
                side_stats["watch_notifications"] += 1

    # Hot-chain tier: 3 chain members, one controller (own session),
    # and one router per executor session, all flag-gated.
    routers: list = []
    controller = None
    if workload.hot_chain:
        from ..zk.hotchain import (ChainNode, HotChainConfig,
                                   HotChainController, HotChainRouter)
        chain_config = HotChainConfig()
        chain_nodes = [ChainNode(env, ensemble.net, f"olchain{i}")
                       for i in range(3)]
        ctl_client = ensemble.client(node_id="olchainctl",
                                     session_timeout_ms=8000.0)

        def boot_controller():
            yield from ctl_client.connect()
            ctl = HotChainController(env, ensemble.net, ctl_client,
                                     chain_nodes, chain_config)
            yield from ctl.start()
            return ctl

        controller = run_all(ensemble, boot_controller())[0]
        routers = [HotChainRouter(client, controller.node_id, chain_config)
                   for client in raw]

    env.process(generator())
    if workload.churn_per_s:
        env.process(churner())
    for i in range(workload.watch_fanout):
        env.process(watcher(i))
    for index, coord in enumerate(coords):
        router = routers[index] if routers else None
        for _slot in range(inflight_per_session):
            env.process(executor(coord, router))
    window.run()

    result = window.result(kind, workload.clients)
    result.extra.update({
        "modeled_clients": float(workload.clients),
        "offered_ops_per_s": workload.rate_ops_per_ms * 1000.0,
        "arrivals": float(stats["arrivals"]),
        "executed": float(stats["executed"]),
        "max_backlog": float(stats["max_backlog"]),
        "sessions": float(sessions),
        "inflight_per_session": float(inflight_per_session),
        "sim_events": float(env.events_processed),
    })
    if workload.churn_per_s:
        result.extra.update({
            "churn_per_s": workload.churn_per_s,
            "churn_connects": float(side_stats["churn_connects"]),
            "churn_closed": float(side_stats["churn_closed"]),
            "churn_abandoned": float(side_stats["churn_abandoned"]),
        })
    if workload.watch_fanout:
        result.extra.update({
            "watch_fanout": float(workload.watch_fanout),
            "watch_notifications": float(
                side_stats["watch_notifications"]),
        })
    measured_s = measure_ms / 1000.0
    read_lat.sort()

    def read_pct(p: float) -> float:
        if not read_lat:
            return float("nan")
        rank = max(1, math.ceil(p / 100.0 * len(read_lat)))
        return read_lat[rank - 1]

    result.extra.update({
        "read_ops_per_s": stats["reads"] / measured_s,
        "write_ops_per_s": stats["writes"] / measured_s,
        "read_p50_ms": read_pct(50.0),
        "read_p99_ms": read_pct(99.0),
    })
    if workload.cached_reads:
        hits = sum(c._cache.stats["hits"] for c in raw)
        misses = sum(c._cache.stats["misses"] for c in raw)
        result.extra.update({
            "cache_hits": float(hits),
            "cache_misses": float(misses),
            "cache_hit_rate": hits / (hits + misses)
            if hits + misses else 0.0,
            "lease_revokes": float(
                sum(c._cache.stats["revokes"] for c in raw)),
        })
    if workload.hot_chain and controller is not None:
        result.extra.update({
            "chain_promotions": float(controller.stats["promotions"]),
            "chain_demotions": float(controller.stats["demotions"]),
            "chain_reads": float(
                sum(r.stats["chain_reads"] for r in routers)),
            "chain_writes": float(
                sum(r.stats["chain_writes"] for r in routers)),
            "chain_fallbacks": float(
                sum(r.stats["fallbacks"] for r in routers)),
        })
    return result
