"""Command-line entry point: regenerate any table/figure from the shell.

Usage::

    python -m repro.bench table1
    python -m repro.bench fig6 --clients 1 10 50 --measure-ms 400
    python -m repro.bench all
"""

from __future__ import annotations

import argparse
import sys

from . import figures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument(
        "target",
        choices=["table1", "table2", "fig6", "fig8", "fig10", "fig12",
                 "fig13", "overhead", "all"],
        help="which table/figure to regenerate")
    parser.add_argument(
        "--clients", type=int, nargs="+", default=None,
        help="client counts to sweep (default: 1 10 30 50)")
    parser.add_argument(
        "--measure-ms", type=float, default=400.0,
        help="simulated measurement window per cell (default 400)")
    args = parser.parse_args(argv)

    def run_figure(builder, **kwargs):
        figure = builder(**kwargs)
        figures.print_result(figure)

    sweeps = {
        "fig6": lambda: run_figure(figures.figure6, counts=args.clients,
                                   measure_ms=args.measure_ms),
        "fig8": lambda: run_figure(figures.figure8, counts=args.clients,
                                   measure_ms=args.measure_ms),
        "fig10": lambda: run_figure(figures.figure10, counts=args.clients,
                                    measure_ms=args.measure_ms),
        "fig12": lambda: run_figure(figures.figure12, counts=args.clients,
                                    measure_ms=args.measure_ms),
        "fig13": lambda: run_figure(figures.figure13,
                                    queue_counts=args.clients,
                                    measure_ms=args.measure_ms),
        "overhead": lambda: run_figure(figures.overhead_regular_ops,
                                       measure_ms=args.measure_ms),
        "table1": figures.print_table1,
        "table2": figures.print_table2,
    }
    targets = list(sweeps) if args.target == "all" else [args.target]
    for target in targets:
        sweeps[target]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
