"""Wall-clock microbenchmark for the simulation kernel (BENCH_core.json).

The figure benchmarks report *simulated* metrics; this module measures
how fast the kernel itself chews through events in *real* time. The
``--workload`` flag picks the driver:

* ``fig8-queue`` (default) — the Figure-8 distributed-queue driver
  (``run_queue_workload``) with 32 closed-loop clients;
* ``read-heavy`` — the 90/10 read-dominated regular-client driver
  (``run_read_heavy_workload``), measured twice per system: the
  leader-only baseline (all clients pinned to replica 0) and the
  read-scaled configuration (``local_reads`` + 2 observers), with the
  ``sim_ops_per_s`` ratio recorded as ``read_scaling_x``.

Each row records, per system:

* ``events_per_wall_s`` — kernel events processed per wall-clock second
  (the headline number the perf work is judged on),
* ``sim_ops_per_s`` / ``mean_latency_ms`` / ``client_kb_per_op`` — the
  simulated figure-level metrics, so a kernel speedup that accidentally
  changes the modelled behaviour is caught immediately.

Usage::

    PYTHONPATH=src python -m repro.bench.wallclock --baseline   # once
    PYTHONPATH=src python -m repro.bench.wallclock              # after changes
    PYTHONPATH=src python -m repro.bench.wallclock --workload read-heavy

The first form records the pre-change baseline into ``BENCH_core.json``;
the second re-measures, stores the result next to the baseline, and
prints the speedup. The file accumulates across PRs so the trend stays
visible.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, Optional

from ..sim import Environment, default_kernel, kernel_backend
from .workload import run_queue_workload, run_read_heavy_workload

__all__ = ["measure_queue", "measure_read_heavy", "measure_kernel",
           "measure_openloop", "measure_zipf_hot", "run_bench",
           "run_read_bench", "run_kernel_bench", "run_openloop_bench",
           "run_zipf_hot_bench", "run_phase_breakdown", "write_phase_table",
           "run_guard", "main"]

DEFAULT_OUTPUT = Path("BENCH_core.json")
CLIENTS = 32
MEASURE_MS = 500.0
SYSTEMS = ("zk", "ezk")
WORKLOADS = ("fig8-queue", "read-heavy", "kernel", "openloop", "zipf-hot")
READ_OBSERVERS = 2
#: zipf-hot saturation pair: enough offered load that the 3-replica
#: local-reads read path is the bottleneck in both cells, few wide
#: sessions so per-session hit rate is representative of a client that
#: actually rereads its hot keys.
ZIPF_HOT_SKEW = 1.2
ZIPF_HOT_MIX = {"read": 0.95, "write": 0.05}
#: --guard: fail when events/wall-s drops below this fraction of the
#: recorded row.
GUARD_THRESHOLD = 0.30


def _consensus_config(kernel: str):
    """ZkConfig selecting the consensus kernel; None for the Zab default.

    Returning None for "zab" keeps the default rows byte-identical to
    historical runs (the ensembles see no config object at all)."""
    if kernel == "zab":
        return None
    from ..zk.server import ZkConfig
    return ZkConfig(kernel=kernel)


def _batched_config():
    """A ZkConfig with Zab batching enabled, or None pre-batching."""
    from ..zk.server import ZkConfig
    from ..zk.zab import ZabConfig
    try:
        zab = ZabConfig(batch_window_ms=1.0, batch_max_txns=8)
    except TypeError:        # knobs not present (pre-change baseline)
        return None
    return ZkConfig(zab=zab)


def measure_queue(kind: str, config=None, repeat: int = 3,
                  clients: int = CLIENTS,
                  measure_ms: float = MEASURE_MS) -> Dict[str, float]:
    """Run the fig-8 queue driver ``repeat`` times; keep the fastest run.

    The simulated metrics are identical across repeats (the simulation
    is deterministic under a fixed seed); only the wall-clock numbers
    vary, and the minimum is the least noisy estimate of kernel cost.
    """
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = run_queue_workload(kind, clients, measure_ms=measure_ms,
                                    config=config)
        wall_s = time.perf_counter() - start
        if best is None or wall_s < best["wall_s"]:
            best = {
                "wall_s": round(wall_s, 4),
                "sim_events": result.extra["sim_events"],
                "events_per_wall_s": round(
                    result.extra["sim_events"] / wall_s, 1),
                "sim_ops_per_s": round(result.throughput_ops, 2),
                "mean_latency_ms": round(result.mean_latency_ms, 4),
                "client_kb_per_op": round(result.client_kb_per_op, 4),
                "completed_ops": result.completed_ops,
            }
    return best


def run_bench(repeat: int = 3, include_batched: bool = True,
              kernel: str = "zab") -> Dict[str, Dict[str, float]]:
    """Measure every system; adds ``<kind>+batch`` rows when available.

    ``kernel`` selects the consensus backend ("zab"/"raft"); batched
    rows are a Zab knob and are skipped for other kernels."""
    consensus = _consensus_config(kernel)
    rows: Dict[str, Dict[str, float]] = {}
    for kind in SYSTEMS:
        rows[kind] = measure_queue(kind, config=consensus, repeat=repeat)
    if include_batched and kernel == "zab":
        config = _batched_config()
        if config is not None:
            for kind in SYSTEMS:
                rows[f"{kind}+batch"] = measure_queue(
                    kind, config=config, repeat=repeat)
    return rows


def measure_read_heavy(kind: str, scaled: bool, repeat: int = 3,
                       clients: int = CLIENTS,
                       measure_ms: float = MEASURE_MS,
                       config=None) -> Dict[str, float]:
    """One read-heavy cell: leader-only baseline or read-scaled config."""
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = run_read_heavy_workload(
            kind, clients, measure_ms=measure_ms,
            local_reads=scaled,
            n_observers=READ_OBSERVERS if scaled else 0,
            pin_leader=not scaled, config=config)
        wall_s = time.perf_counter() - start
        if best is None or wall_s < best["wall_s"]:
            best = {
                "wall_s": round(wall_s, 4),
                "sim_events": result.extra["sim_events"],
                "events_per_wall_s": round(
                    result.extra["sim_events"] / wall_s, 1),
                "sim_ops_per_s": round(result.throughput_ops, 2),
                "mean_latency_ms": round(result.mean_latency_ms, 4),
                "read_latency_ms": round(result.extra["read_ms"], 4),
                "write_latency_ms": round(result.extra["write_ms"], 4),
                "client_kb_per_op": round(result.client_kb_per_op, 4),
                "completed_ops": result.completed_ops,
            }
    return best


def run_read_bench(repeat: int = 3, kernel: str = "zab") -> Dict[str, Dict]:
    """Leader-only vs read-scaled rows per system, plus the scaling ratio."""
    config = _consensus_config(kernel)
    rows: Dict[str, Dict] = {}
    for kind in SYSTEMS:
        leader_only = measure_read_heavy(kind, scaled=False, repeat=repeat,
                                         config=config)
        scaled = measure_read_heavy(kind, scaled=True, repeat=repeat,
                                    config=config)
        rows[kind] = {
            "leader_only": leader_only,
            "local_reads+2obs": scaled,
            "read_scaling_x": round(
                scaled["sim_ops_per_s"] / leader_only["sim_ops_per_s"], 3),
        }
    return rows


def _kernel_spin(kernel: str, chains: int = 64,
                 horizon_ms: float = 2000.0) -> int:
    """Raw dispatch load: no protocol code, just the event queue.

    ``chains`` self-rescheduling callbacks at staggered sub-millisecond
    periods (the hot band), plus the RPC-deadline pattern that bloats a
    plain heap: every eighth hot event also schedules a one-shot timer
    3 s out that never becomes due within the horizon, so dead entries
    accumulate in the queue exactly like uncancelled per-call deadline
    timers do in the client. Returns events processed.
    """
    env = Environment(kernel=kernel)
    defer = env.defer

    def noop():
        pass

    def make(period: float):
        calls = 0

        def fire():
            nonlocal calls
            calls += 1
            if not calls % 8:
                defer(3000.0, noop)   # parked deadline, never due
            defer(period, fire)
        return fire

    for i in range(chains):
        period = 0.05 + (i % 20) * 0.037
        defer(period * (i + 1) / chains, make(period))
    env.run(until=horizon_ms)
    return env.events_processed


def measure_kernel(kernel: Optional[str] = None, repeat: int = 3,
                   chains: int = 64,
                   horizon_ms: float = 2000.0) -> Dict[str, float]:
    """Events/wall-second of the bare queue kernel (no model code)."""
    kernel = kernel or default_kernel()
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        events = _kernel_spin(kernel, chains=chains, horizon_ms=horizon_ms)
        wall_s = time.perf_counter() - start
        if best is None or wall_s < best["wall_s"]:
            best = {
                "wall_s": round(wall_s, 4),
                "sim_events": events,
                "events_per_wall_s": round(events / wall_s, 1),
            }
    best["kernel"] = kernel
    best["backend"] = kernel_backend()
    return best


def run_kernel_bench(repeat: int = 3) -> Dict[str, Dict[str, float]]:
    """Raw-dispatch rows for both kernels."""
    return {kernel: measure_kernel(kernel, repeat=repeat)
            for kernel in ("heap", "calendar")}


def measure_openloop(kind: str, clients: int = 100_000,
                     ops_per_client_s: float = 0.5,
                     repeat: int = 2,
                     measure_ms: float = MEASURE_MS) -> Dict[str, float]:
    """One open-loop cell: ``clients`` modeled clients at the given rate."""
    from .openloop import Workload, run_openloop_workload
    workload = Workload(clients=clients, ops_per_client_s=ops_per_client_s)
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = run_openloop_workload(kind, workload,
                                       measure_ms=measure_ms)
        wall_s = time.perf_counter() - start
        if best is None or wall_s < best["wall_s"]:
            best = {
                "wall_s": round(wall_s, 4),
                "modeled_clients": clients,
                "offered_ops_per_s": result.extra["offered_ops_per_s"],
                "achieved_ops_per_s": round(result.throughput_ops, 1),
                "sim_events": result.extra["sim_events"],
                "events_per_wall_s": round(
                    result.extra["sim_events"] / wall_s, 1),
                "p50_ms": round(result.p50_latency_ms, 4),
                "p99_ms": round(result.p99_latency_ms, 4),
                "p999_ms": round(result.p999_latency_ms, 4),
                "max_backlog": result.extra["max_backlog"],
            }
    return best


def run_openloop_bench(repeat: int = 2) -> Dict[str, Dict[str, float]]:
    return {kind: measure_openloop(kind, repeat=repeat) for kind in SYSTEMS}


def measure_zipf_hot(kind: str, cached: bool, skew: float = ZIPF_HOT_SKEW,
                     saturate: bool = True, repeat: int = 1,
                     measure_ms: float = 400.0) -> Dict[str, float]:
    """One zipf-hot cell: Zipf(skew) 95/5 reads, uniform write keys.

    ``saturate=True`` offers well past the 3-replica local-reads read
    ceiling so achieved *read throughput* is the capacity headline;
    ``saturate=False`` offers a light load so the read p50 isolates the
    per-request path (the sub-RTT cache-hit claim).
    """
    from .openloop import Workload, run_openloop_workload
    if saturate:
        clients, ops, sessions, inflight = 550_000, 1.0, 4, 256
    else:
        clients, ops, sessions, inflight = 200_000, 0.5, 16, 64
    workload = Workload(mix=dict(ZIPF_HOT_MIX), skew=skew, clients=clients,
                        ops_per_client_s=ops, keys=512,
                        cached_reads=cached, write_skew=0.0)
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = run_openloop_workload(
            kind, workload, measure_ms=measure_ms, warmup_ms=150.0,
            n_observers=0, sessions=sessions,
            inflight_per_session=inflight)
        wall_s = time.perf_counter() - start
        if best is None or wall_s < best["wall_s"]:
            extra = result.extra
            best = {
                "wall_s": round(wall_s, 4),
                "offered_ops_per_s": extra["offered_ops_per_s"],
                "achieved_ops_per_s": round(result.throughput_ops, 1),
                "read_ops_per_s": round(extra["read_ops_per_s"], 1),
                "read_p50_ms": round(extra["read_p50_ms"], 4),
                "read_p99_ms": round(extra["read_p99_ms"], 4),
                "cache_hit_rate": round(
                    extra.get("cache_hit_rate", 0.0), 4),
                "sim_events": extra["sim_events"],
                "events_per_wall_s": round(
                    extra["sim_events"] / wall_s, 1),
            }
    return best


def run_zipf_hot_bench(skews=(0.6, 0.9, 1.2), repeat: int = 1
                       ) -> Dict[str, object]:
    """The zipf-hot section: saturation pair, latency pair, skew sweep.

    The headline ratio compares achieved read throughput with leases on
    vs the plain local-reads baseline on identical hardware (3 replicas,
    no observers) under the same saturating offered load.
    """
    baseline = measure_zipf_hot("zk", cached=False, repeat=repeat)
    cached = measure_zipf_hot("zk", cached=True, repeat=repeat)
    lat_baseline = measure_zipf_hot("zk", cached=False, saturate=False,
                                    repeat=repeat)
    lat_cached = measure_zipf_hot("zk", cached=True, saturate=False,
                                  repeat=repeat)
    sweep = {}
    for skew in skews:
        sweep[f"{skew:g}"] = {
            "baseline": measure_zipf_hot("zk", cached=False, skew=skew,
                                         saturate=False, repeat=repeat),
            "cached": measure_zipf_hot("zk", cached=True, skew=skew,
                                       saturate=False, repeat=repeat),
        }
    return {
        "mix": dict(ZIPF_HOT_MIX),
        "skew": ZIPF_HOT_SKEW,
        "saturated": {"baseline": baseline, "cached": cached},
        "light_load": {"baseline": lat_baseline, "cached": lat_cached},
        "read_speedup_x": round(
            cached["read_ops_per_s"] / baseline["read_ops_per_s"], 3),
        "read_p50_speedup_x": round(
            lat_baseline["read_p50_ms"] / lat_cached["read_p50_ms"], 1),
        "skew_sweep": sweep,
    }


PHASES_BEGIN = "<!-- obs-phases:begin -->"
PHASES_END = "<!-- obs-phases:end -->"
PHASES_DOC = Path("EXPERIMENTS.md")


def run_phase_breakdown(measure_ms: float = MEASURE_MS,
                        clients: int = CLIENTS) -> Dict[str, dict]:
    """Traced fig8 cells over Zab and Raft: per-phase latency breakdown.

    Runs the Figure-8 queue driver once per consensus kernel with the
    observability plane attached and telescopes every finished write
    trace into its ingress/broadcast/quorum/apply/reply phases. One
    traced repeat per kernel — the sim metrics are deterministic, and
    wall-clock speed is not what this mode measures.
    """
    from ..obs import ObsConfig, breakdown
    from ..zk.server import ZkConfig
    rows: Dict[str, dict] = {}
    for kernel in ("zab", "raft"):
        obs_cfg = ObsConfig()
        config = (ZkConfig(obs=obs_cfg) if kernel == "zab"
                  else ZkConfig(kernel="raft", obs=obs_cfg))
        run_queue_workload("zk", clients, measure_ms=measure_ms,
                           config=config)
        traces = [t.to_dict() for t in obs_cfg.runtime.tracer.traces()]
        rows[kernel] = breakdown(traces)
    return rows


def write_phase_table(rows: Dict[str, dict],
                      path: Path = PHASES_DOC) -> None:
    """Record the per-phase table into EXPERIMENTS.md (idempotent).

    The table lives between sentinel comments so re-runs replace it in
    place; a document without the sentinels gets the section appended.
    """
    from ..obs import READ_PHASES, WRITE_PHASES
    lines = [PHASES_BEGIN,
             "### Per-phase request latency (traced fig8 cell)",
             "",
             f"Figure-8 queue driver, {CLIENTS} closed-loop clients, "
             f"{MEASURE_MS:g} ms measured window, tracing on "
             "(`ZkConfig(obs=ObsConfig())`). Phases telescope between "
             "consecutive trace milestones, so per-pipeline phase sums "
             "equal end-to-end latency exactly.",
             "",
             "| kernel | pipeline | phase | n | mean (ms) | p99 (ms) |",
             "|---|---|---|---:|---:|---:|"]
    for kernel, bd in rows.items():
        for pipeline, phases in (("write", WRITE_PHASES),
                                 ("read", READ_PHASES)):
            for phase in phases:
                row = bd[pipeline].get(phase)
                if row is None:
                    continue
                lines.append(
                    f"| {kernel} | {pipeline} | {phase} | {row['count']} "
                    f"| {row['mean_ms']:.4f} | {row['p99_ms']:.4f} |")
    for kernel, bd in rows.items():
        recon = bd["write"]["_recon"]
        lines.append("")
        lines.append(
            f"Reconciliation ({kernel}, write): phase sum "
            f"{recon['phase_sum_ms']:.4f} ms vs end-to-end "
            f"{recon['end_to_end_ms']:.4f} ms over {recon['traces']} "
            f"traces.")
    lines.append(PHASES_END)
    block = "\n".join(lines)
    text = path.read_text() if path.exists() else ""
    if PHASES_BEGIN in text and PHASES_END in text:
        head, rest = text.split(PHASES_BEGIN, 1)
        _, tail = rest.split(PHASES_END, 1)
        text = head + block + tail
    else:
        if text and not text.endswith("\n"):
            text += "\n"
        text += "\n" + block + "\n"
    path.write_text(text)


def run_guard(payload: dict, threshold: float = GUARD_THRESHOLD) -> int:
    """Re-measure quickly; fail if any row regressed more than ``threshold``.

    Compares events/wall-second against the recorded ``current`` (fig8)
    and ``kernel`` rows in BENCH_core.json. Returns a process exit code.
    """
    failures = []

    def check(label: str, recorded: Optional[dict], measured: dict) -> None:
        if not recorded:
            print(f"  {label:<18} no recorded row; skipping")
            return
        floor = recorded["events_per_wall_s"] * (1.0 - threshold)
        got = measured["events_per_wall_s"]
        verdict = "ok" if got >= floor else "REGRESSED"
        print(f"  {label:<18} recorded={recorded['events_per_wall_s']:>11.1f}"
              f"  measured={got:>11.1f}  floor={floor:>11.1f}  {verdict}")
        if got < floor:
            failures.append(label)

    current = payload.get("current", {})
    for kind in SYSTEMS:
        check(f"fig8:{kind}", current.get(kind),
              measure_queue(kind, repeat=2))
    # The Raft consensus kernel shares the guard: a regression confined
    # to the non-default backend must fail the same check. Rows are
    # recorded by ``--workload fig8-queue --kernel raft``.
    raft_rows = payload.get("raft", {})
    for kind in SYSTEMS:
        check(f"raft:{kind}", raft_rows.get(kind),
              measure_queue(kind, config=_consensus_config("raft"),
                            repeat=2))
    kernel_rows = payload.get("kernel", {})
    for kernel in ("heap", "calendar"):
        check(f"kernel:{kernel}", kernel_rows.get(kernel),
              measure_kernel(kernel, repeat=2))
    zipf = payload.get("zipf_hot", {}).get("light_load", {})
    if zipf.get("cached"):
        # The cache path (leases + client cache + revocation) is new
        # hot-loop code: guard its kernel throughput like the others.
        check("zipf_hot:cached", zipf.get("cached"),
              measure_zipf_hot("zk", cached=True, saturate=False,
                               repeat=1))
    if failures:
        print(f"wallclock guard FAILED: {', '.join(failures)} dropped "
              f">{threshold:.0%} below the recorded rows")
        return 1
    print("wallclock guard passed")
    return 0


def _load(path: Path) -> dict:
    if path.exists():
        return json.loads(path.read_text())
    return {}


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", action="store_true",
                        help="record this run as the pre-change baseline")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--workload", choices=WORKLOADS,
                        default="fig8-queue",
                        help="driver to measure (default: fig8-queue)")
    parser.add_argument("--kernel", choices=("zab", "raft"), default="zab",
                        help="consensus backend for the fig8-queue and "
                             "read-heavy drivers (default: zab; raft rows "
                             "are recorded in their own sections)")
    parser.add_argument("--guard", action="store_true",
                        help="re-measure and fail if events/wall-s dropped "
                             f">{GUARD_THRESHOLD:.0%} below recorded rows")
    parser.add_argument("--phases", action="store_true",
                        help="run traced fig8 cells (zab + raft) and record "
                             "the per-phase latency table into "
                             f"{PHASES_DOC}")
    parser.add_argument("--skew", default="0.6,0.9,1.2",
                        help="comma-separated Zipf exponents for the "
                             "zipf-hot skew sweep (default: 0.6,0.9,1.2)")
    args = parser.parse_args(argv)

    if args.guard:
        return run_guard(_load(args.output))

    if args.phases:
        rows = run_phase_breakdown()
        write_phase_table(rows)
        for kernel, bd in rows.items():
            recon = bd["write"]["_recon"]
            print(f"  {kernel:<5} write traces={recon['traces']:>4}  "
                  f"phase sum={recon['phase_sum_ms']:.4f} ms  "
                  f"end-to-end={recon['end_to_end_ms']:.4f} ms")
        print(f"phase table recorded -> {PHASES_DOC}")
        return 0

    if args.workload == "kernel":
        rows = run_kernel_bench(repeat=args.repeat)
        payload = _load(args.output)
        payload["kernel"] = rows
        for kernel, row in rows.items():
            print(f"  {kernel:<9} events/s={row['events_per_wall_s']:>12.1f}"
                  f"  ({row['backend']})")
        if rows["heap"]["events_per_wall_s"]:
            ratio = (rows["calendar"]["events_per_wall_s"]
                     / rows["heap"]["events_per_wall_s"])
            print(f"  calendar/heap = {ratio:.2f}x")
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        return 0

    if args.workload == "openloop":
        rows = run_openloop_bench(repeat=args.repeat)
        payload = _load(args.output)
        payload["openloop"] = {
            "measure_ms": MEASURE_MS,
            "systems": rows,
        }
        for kind, row in rows.items():
            print(f"  {kind:<5} clients={row['modeled_clients']:,}  "
                  f"offered={row['offered_ops_per_s']:>9.1f} ops/s  "
                  f"achieved={row['achieved_ops_per_s']:>9.1f} ops/s  "
                  f"p50/p99/p999={row['p50_ms']:.3f}/{row['p99_ms']:.3f}/"
                  f"{row['p999_ms']:.3f} ms  wall={row['wall_s']:.2f}s")
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        return 0

    if args.workload == "zipf-hot":
        skews = tuple(float(s) for s in args.skew.split(",") if s)
        section = run_zipf_hot_bench(skews=skews, repeat=args.repeat)
        payload = _load(args.output)
        payload["zipf_hot"] = section
        sat = section["saturated"]
        print(f"  saturated: baseline={sat['baseline']['read_ops_per_s']:>10.1f}"
              f" reads/s  cached={sat['cached']['read_ops_per_s']:>10.1f}"
              f" reads/s  speedup={section['read_speedup_x']:.2f}x"
              f"  (hit rate {sat['cached']['cache_hit_rate']:.1%})")
        light = section["light_load"]
        print(f"  light:     p50 baseline={light['baseline']['read_p50_ms']:.4f}"
              f" ms  cached={light['cached']['read_p50_ms']:.4f} ms"
              f"  ({section['read_p50_speedup_x']:.0f}x)")
        for skew, pair in section["skew_sweep"].items():
            print(f"  skew={skew:<4} hit={pair['cached']['cache_hit_rate']:.1%}"
                  f"  p50={pair['cached']['read_p50_ms']:.4f} ms"
                  f"  (baseline {pair['baseline']['read_p50_ms']:.4f} ms)")
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        return 0

    if args.workload == "read-heavy":
        rows = run_read_bench(repeat=args.repeat, kernel=args.kernel)
        payload = _load(args.output)
        section = ("read_heavy" if args.kernel == "zab"
                   else f"read_heavy_{args.kernel}")
        payload[section] = {
            "clients": CLIENTS,
            "measure_ms": MEASURE_MS,
            "observers": READ_OBSERVERS,
            "systems": rows,
        }
        for kind, row in rows.items():
            print(f"  {kind:<5} leader-only="
                  f"{row['leader_only']['sim_ops_per_s']:>10.1f} ops/s  "
                  f"local_reads+{READ_OBSERVERS}obs="
                  f"{row['local_reads+2obs']['sim_ops_per_s']:>10.1f} ops/s  "
                  f"scaling={row['read_scaling_x']:.2f}x")
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        return 0

    rows = run_bench(repeat=args.repeat, include_batched=not args.baseline,
                     kernel=args.kernel)
    payload = _load(args.output)
    if args.kernel != "zab":
        # Non-default kernels live in their own section: the baseline /
        # current / speedup bookkeeping below tracks the Zab default.
        payload[args.kernel] = rows
        for kind, row in rows.items():
            print(f"  {args.kernel}:{kind:<6} "
                  f"events/s={row['events_per_wall_s']:>12.1f}  "
                  f"sim tput={row['sim_ops_per_s']:>9.1f} ops/s  "
                  f"lat={row['mean_latency_ms']:.3f} ms")
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        return 0
    payload.setdefault("workload", "fig8-queue")
    payload.setdefault("clients", CLIENTS)
    payload.setdefault("measure_ms", MEASURE_MS)

    if args.baseline or "baseline" not in payload:
        payload["baseline"] = rows
        print(f"baseline recorded -> {args.output}")
    else:
        payload["current"] = rows
        speedup = {}
        for kind, row in rows.items():
            base_kind = kind.split("+")[0]
            base = payload["baseline"].get(base_kind)
            if base:
                speedup[kind] = round(
                    row["events_per_wall_s"] / base["events_per_wall_s"], 3)
        payload["speedup_events_per_wall_s"] = speedup
        print(f"speedup vs baseline: {speedup}")

    for kind, row in rows.items():
        print(f"  {kind:<9} events/s={row['events_per_wall_s']:>12.1f}  "
              f"sim tput={row['sim_ops_per_s']:>9.1f} ops/s  "
              f"lat={row['mean_latency_ms']:.3f} ms  "
              f"KB/op={row['client_kb_per_op']:.3f}")

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
