"""Extensible distributed coordination (EuroSys '15) — full reproduction.

A production-quality Python library reproducing Distler, Bahn, Bessani,
Fischer, and Junqueira, *Extensible Distributed Coordination*
(EuroSys 2015): a model for safely extending coordination services with
sandboxed server-side code, implemented over two complete substrates —
a crash-tolerant ZooKeeper (primary-backup, Zab-like broadcast) and a
Byzantine-fault-tolerant DepSpace (tuple space over PBFT-style
ordering) — plus the paper's recipes, benchmarks, and use cases.

Package map
-----------

========================  ==================================================
``repro.sim``             deterministic discrete-event substrate
``repro.zk``              ZooKeeper-like service (CFT, primary-backup)
``repro.depspace``        DepSpace-like service (BFT, active replication)
``repro.core``            the paper's model: extensions, verifier, sandbox,
                          extension manager
``repro.ezk``             EXTENSIBLE ZOOKEEPER (§5.1)
``repro.eds``             EXTENSIBLE DEPSPACE (§5.2)
``repro.recipes``         Table 2 abstract API + the four recipes (§6.1)
``repro.bench``           workload drivers + one generator per table/figure
========================  ==================================================

Quickstart
----------

>>> from repro.bench import make_ensemble, make_coords, run_all
>>> from repro.recipes import ExtensionSharedCounter
>>> ensemble = make_ensemble("ezk")
>>> coords, _ = make_coords(ensemble, "ezk", 2)
>>> counters = [ExtensionSharedCounter(c) for c in coords]
>>> run_all(ensemble, counters[0].setup(register=True))  # doctest: +ELLIPSIS
[...]
>>> run_all(ensemble, counters[1].setup(register=False))  # doctest: +ELLIPSIS
[...]
>>> run_all(ensemble, counters[0].increment(), counters[1].increment())
[1, 2]
"""

from . import bench, core, depspace, eds, ezk, recipes, sim, zk

__version__ = "1.0.0"

__all__ = ["sim", "zk", "depspace", "core", "ezk", "eds", "recipes",
           "bench", "__version__"]
