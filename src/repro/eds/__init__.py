"""EXTENSIBLE DEPSPACE (EDS): the paper's §5.2 prototype.

The Byzantine-fault-tolerant DepSpace substrate plus an extension layer
at the bottom of the replica stack: operation extensions execute
deterministically at every replica inside the ordered request; event
extensions react to tuple insertions/removals/lease expiries and may
re-block unblocked operations.
"""

from .client import EdsClient
from .ensemble import EdsEnsemble
from .integration import EM_SPACE, EdsBinding, describe_ds_op
from .state_proxy import DsDirectState

__all__ = ["EdsClient", "EdsEnsemble", "EdsBinding", "DsDirectState",
           "EM_SPACE", "describe_ds_op"]
