"""EDS's direct state proxy: extensions execute on the live tuple space.

DepSpace is actively replicated, so an extension executes
deterministically at **every** replica inside the ordered request
(§5.2.2, §6.3). The proxy therefore mutates the replica's tuple space
directly — through the regular layer stack, with the invoking client's
privileges — while keeping an undo log so a crashing extension rolls
back atomically.

Object convention (Table 2's DepSpace column): a data object ``oid``
with content ``data`` is the 2-field tuple ``(oid, data)``; sub-objects
are tuples whose name field extends ``oid + "/"``.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..core.api import AbstractState, ObjectRecord
from ..core.errors import CoordStateError, NoObjectError, ObjectExistsError
from ..depspace.bft import RequestId
from ..depspace.protocol import (InpOp, OutOp, RdAllOp, RdOp, RdpOp,
                                 ReplaceOp)
from ..depspace.server import BLOCKED, DsEvent, DsReplica
from ..depspace.space import LeaseRecord
from ..depspace.tuples import ANY, Prefix

__all__ = ["DsDirectState"]


class DsDirectState(AbstractState):
    """AbstractState over a live DepSpace replica, with rollback."""

    def __init__(self, replica: DsReplica, client_id: str, ts: float,
                 events: List[DsEvent],
                 request_id: Optional[RequestId] = None,
                 space: str = "main"):
        self._replica = replica
        self._client_id = client_id
        self._ts = ts
        self._events = events
        self._request_id = request_id
        self._space = space
        self._undo: List[Callable[[], None]] = []
        self.blocked = False

    # -- plumbing ----------------------------------------------------------

    def _exec(self, op) -> Any:
        """Run one op through policy -> access -> space (no waiter wakes)."""
        return self._replica._execute_op(
            self._client_id, op, self._ts, self._events,
            request_id=self._request_id, wake=False)

    def rollback(self) -> None:
        """Undo every mutation this proxy performed, newest first."""
        raw = self._replica.space(self._space)
        for undo in reversed(self._undo):
            undo(raw)
        self._undo.clear()

    # -- AbstractState ---------------------------------------------------------

    def create(self, object_id: str, data: bytes = b"") -> str:
        if self._exec(RdpOp((object_id, ANY), space=self._space)) is not None:
            raise ObjectExistsError(object_id)
        entry = (object_id, data)
        self._exec(OutOp(entry, space=self._space))
        self._undo.append(lambda raw, entry=entry: raw.inp(entry))
        return object_id

    def delete(self, object_id: str) -> None:
        raw = self._replica.space(self._space)
        old = raw.rdp((object_id, ANY))
        lease = raw.lease_of(old) if old is not None else None
        taken = self._exec(InpOp((object_id, ANY), space=self._space))
        if taken is None:
            raise NoObjectError(object_id)
        self._undo.append(
            lambda raw, taken=taken, lease=lease: raw.out(taken, lease=lease))

    def read(self, object_id: str) -> bytes:
        found = self._exec(RdpOp((object_id, ANY), space=self._space))
        if found is None:
            raise NoObjectError(object_id)
        return found[1]

    def exists(self, object_id: str) -> bool:
        return self._exec(
            RdpOp((object_id, ANY), space=self._space)) is not None

    def update(self, object_id: str, data: bytes) -> None:
        old = self._exec(ReplaceOp((object_id, ANY), (object_id, data),
                                   space=self._space))
        if old is None:
            raise NoObjectError(object_id)
        self._undo.append(
            lambda raw, old=old, oid=object_id:
            raw.replace((oid, ANY), old))

    def cas(self, object_id: str, expected: bytes, new: bytes) -> bool:
        found = self._exec(RdpOp((object_id, ANY), space=self._space))
        if found is None:
            raise NoObjectError(object_id)
        if found[1] != expected:
            return False
        self.update(object_id, new)
        return True

    def sub_objects(self, object_id: str) -> List[ObjectRecord]:
        prefix = object_id.rstrip("/") + "/"
        found = self._exec(
            RdAllOp((Prefix(prefix), ANY), space=self._space))
        return [
            ObjectRecord(entry[0], entry[1], seq=index)
            for index, entry in enumerate(found)
        ]

    def block(self, object_id: str) -> None:
        if self._request_id is None:
            raise CoordStateError(
                "block() is only available to operation extensions")
        result = self._exec(RdOp((object_id, ANY), space=self._space))
        if result is BLOCKED:
            self.blocked = True
        # Otherwise the object already exists: the caller proceeds.

    def monitor(self, client_id: str, object_id: str,
                data: bytes = b"") -> None:
        if self._exec(RdpOp((object_id, ANY), space=self._space)) is not None:
            raise ObjectExistsError(object_id)
        lease_ms = self._replica.config.lease_ms
        entry = (object_id, data)
        # The lease belongs to the *monitored* client: its renewals keep
        # the object alive; its failure lets the lease expire (Table 2).
        self._replica.space(self._space).out(
            entry, lease=LeaseRecord(client_id, self._ts + lease_ms))
        self._events.append(DsEvent("inserted", self._space, entry))
        self._undo.append(lambda raw, entry=entry: raw.inp(entry))
