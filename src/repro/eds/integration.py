"""EXTENSIBLE DEPSPACE: the extension layer at the bottom of the stack.

Mirrors §5.2.2:

* a new **extension layer** sits directly above BFT ordering
  (``DsReplica.op_interceptor``): every ordered client request passes
  through it, and matches are redirected to operation extensions which
  execute **deterministically at every replica** via the direct state
  proxy;
* **events** are unblocks and tuple removals; event extensions run at
  every replica after the triggering request executes, and an extension
  can veto an unblock, making the blocked call block again
  (``DsReplica.unblock_filter``);
* **registration** travels as ordinary tuples in the dedicated ``_em``
  space that regular operations cannot touch: ``("ext", name, source)``
  to register, ``("ack", name)`` to acknowledge, an ``inp`` on the
  extension tuple to deregister. The persisted tuples are the §3.8
  fault-tolerance state — recovery rebuilds the registry from them.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..core import (EventNotice, ExtensionError, ExtensionManager,
                    OperationRequest, SandboxLimits, VerifierConfig)
from ..depspace.bft import BftRequest
from ..depspace.policy import PolicyViolationError
from ..depspace.protocol import (CasOp, DsOp, InOp, InpOp, OutOp, RdAllOp,
                                 RdOp, RdpOp, ReplaceOp)
from ..depspace.server import BLOCKED, DsEvent, DsReplica, Waiter
from ..depspace.tuples import ANY, Prefix, _Any
from .state_proxy import DsDirectState

__all__ = ["EdsBinding", "EM_SPACE", "describe_ds_op"]

EM_SPACE = "_em"
_MAX_EVENT_DEPTH = 8


def _is_any(value: Any) -> bool:
    return isinstance(value, _Any)


def describe_ds_op(op: DsOp, client_id: str) -> Optional[OperationRequest]:
    """Normalize a DepSpace op under the (name, payload) object convention."""
    if isinstance(op, RdpOp) and len(op.template) == 2 and \
            isinstance(op.template[0], str) and _is_any(op.template[1]):
        return OperationRequest("read", op.template[0], client_id)
    if isinstance(op, (RdOp, InOp)) and len(op.template) == 2 and \
            isinstance(op.template[0], str) and _is_any(op.template[1]):
        return OperationRequest("block", op.template[0], client_id)
    if isinstance(op, OutOp) and len(op.entry) == 2 and \
            isinstance(op.entry[0], str):
        return OperationRequest("create", op.entry[0], client_id,
                                op.entry[1] if isinstance(op.entry[1], bytes)
                                else b"")
    # The adapter realizes the object model's duplicate-rejecting create
    # as a name-unique conditional insert (cas) — same object operation.
    if isinstance(op, CasOp) and len(op.template) == 2 and \
            isinstance(op.template[0], str) and _is_any(op.template[1]) and \
            len(op.entry) == 2 and op.entry[0] == op.template[0]:
        return OperationRequest("create", op.entry[0], client_id,
                                op.entry[1] if isinstance(op.entry[1], bytes)
                                else b"")
    if isinstance(op, InpOp) and len(op.template) == 2 and \
            isinstance(op.template[0], str) and _is_any(op.template[1]):
        return OperationRequest("delete", op.template[0], client_id)
    if isinstance(op, ReplaceOp) and len(op.entry) == 2 and \
            isinstance(op.entry[0], str):
        return OperationRequest("update", op.entry[0], client_id,
                                op.entry[1] if isinstance(op.entry[1], bytes)
                                else b"")
    if isinstance(op, RdAllOp) and len(op.template) == 2 and \
            isinstance(op.template[0], Prefix):
        prefix = op.template[0].prefix.rstrip("/")
        return OperationRequest("sub_objects", prefix, client_id)
    return None


def _event_notice(event: DsEvent) -> Optional[EventNotice]:
    if event.space != "main" or len(event.entry) != 2:
        return None
    name = event.entry[0]
    if not isinstance(name, str):
        return None
    data = event.entry[1] if isinstance(event.entry[1], bytes) else b""
    if event.kind == "inserted":
        return EventNotice("created", name, data)
    if event.kind in ("removed", "expired"):
        return EventNotice("deleted", name, data)
    return None


class EdsBinding:
    """Installs an :class:`ExtensionManager` into one DepSpace replica."""

    def __init__(self, replica: DsReplica,
                 verifier_config: Optional[VerifierConfig] = None,
                 limits: Optional[SandboxLimits] = None):
        self.replica = replica
        self.manager = ExtensionManager(verifier_config, limits)
        replica.op_interceptor = self._intercept
        replica.event_hook = self._on_events
        replica.unblock_filter = self._filter_unblock
        replica.on_state_installed = lambda _r: self.rebuild()
        replica.read_router = self._must_order_read
        self._event_depth = 0

    # -- operation interception (every replica, at execution) -----------------

    def _intercept(self, request: BftRequest, ts: float, replica: DsReplica,
                   events: List[DsEvent]) -> Optional[tuple]:
        client_id = request.request_id.client_id
        op = request.op
        if getattr(op, "space", None) == EM_SPACE:
            return self._handle_em_op(client_id, op, ts)

        described = describe_ds_op(op, client_id)
        if described is None:
            return None
        record = self.manager.match_operation(described)
        if record is None:
            return None

        proxy = DsDirectState(replica, client_id, ts, events,
                              request_id=request.request_id)
        try:
            result = self.manager.execute_operation(record, described, proxy)
        except ExtensionError:
            proxy.rollback()
            raise
        replica._wake_waiters("main", ts, events)
        return (True, BLOCKED if proxy.blocked else result)

    def _must_order_read(self, client_id: str, op: DsOp) -> bool:
        """Fast-read gate: extension-consumed reads must be ordered."""
        if getattr(op, "space", None) == EM_SPACE:
            return True
        described = describe_ds_op(op, client_id)
        if described is None:
            return False
        return self.manager.match_operation(described) is not None

    # -- extension lifecycle via the _em space ---------------------------------

    def _handle_em_op(self, client_id: str, op: DsOp,
                      ts: float) -> Optional[tuple]:
        em_space = self.replica.space(EM_SPACE)
        if isinstance(op, OutOp) and len(op.entry) == 3 and \
                op.entry[0] == "ext":
            _tag, name, source = op.entry
            self.manager.register(name, source, owner=client_id)
            em_space.inp(("ext", name, ANY, ANY))
            em_space.out(("ext", name, source, client_id))
            return (True, True)
        if isinstance(op, OutOp) and len(op.entry) == 2 and \
                op.entry[0] == "ack":
            _tag, name = op.entry
            self.manager.acknowledge(name, client_id)
            em_space.out(("ack", name, client_id))
            return (True, True)
        if isinstance(op, InpOp) and len(op.template) >= 2 and \
                op.template[0] == "ext":
            name = op.template[1]
            self.manager.deregister(name)
            removed = em_space.inp(("ext", name, ANY, ANY))
            while em_space.inp(("ack", name, ANY)) is not None:
                pass
            return (True, removed is not None)
        raise PolicyViolationError(
            "the extension-manager space accepts only registration, "
            "acknowledgement, and deregistration operations")

    # -- events (every replica, §5.2.2) ------------------------------------------

    def _on_events(self, events: List[DsEvent], ts: float,
                   replica: DsReplica) -> None:
        if self._event_depth >= _MAX_EVENT_DEPTH:
            return
        self._event_depth += 1
        try:
            for event in events:
                notice = _event_notice(event)
                if notice is None:
                    continue
                for record in self.manager.match_events(notice):
                    follow_up: List[DsEvent] = []
                    proxy = DsDirectState(replica, record.owner, ts,
                                          follow_up)
                    try:
                        self.manager.execute_event(record, notice, proxy)
                    except ExtensionError:
                        proxy.rollback()
                        continue
                    replica._wake_waiters("main", ts, follow_up)
                    if follow_up:
                        self._on_events(follow_up, ts, replica)
        finally:
            self._event_depth -= 1

    # -- unblock veto (§5.2.2) -----------------------------------------------------

    def _filter_unblock(self, waiter: Waiter, entry: Tuple[Any, ...],
                        ts: float, replica: DsReplica) -> bool:
        """False re-blocks the waiter; extensions opt in by defining
        ``allow_unblock(event, local)``."""
        if len(entry) != 2 or not isinstance(entry[0], str):
            return True
        notice = EventNotice("created", entry[0],
                             entry[1] if isinstance(entry[1], bytes) else b"")
        client_id = waiter.request_id.client_id
        for record in self.manager.match_events(notice):
            allow = getattr(record.instance, "allow_unblock", None)
            if allow is None or not record.authorized(client_id):
                continue
            scratch: List[DsEvent] = []
            proxy = DsDirectState(replica, client_id, ts, scratch)
            try:
                if not allow(notice, proxy):
                    proxy.rollback()
                    return False
            except Exception:
                proxy.rollback()
        return True

    # -- recovery (§3.8) -------------------------------------------------------------

    def rebuild(self) -> None:
        """Reload the registry from the persisted _em tuples."""
        em_space = self.replica.space(EM_SPACE)
        registrations = em_space.rdall(
            ("ext", ANY, ANY, ANY))
        acks = em_space.rdall(("ack", ANY, ANY))
        records = []
        for _tag, name, source, owner in registrations:
            acked = [client for tag, ext, client in acks if ext == name]
            records.append((name, source, owner, acked))
        self.manager.reload(records)

