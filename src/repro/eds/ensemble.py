"""Builder for an EXTENSIBLE DEPSPACE ensemble."""

from __future__ import annotations

from typing import List, Optional

from ..core import SandboxLimits, VerifierConfig
from ..depspace.ensemble import DsEnsemble
from .client import EdsClient
from .integration import EdsBinding

__all__ = ["EdsEnsemble"]


class EdsEnsemble(DsEnsemble):
    """DepSpace ensemble with an extension layer at every replica.

    The verifier stays on the strict deterministic white list — EDS is
    actively replicated, so nondeterministic extensions would diverge
    replicas (§4.1.1, §6.3).
    """

    client_class = EdsClient

    def __init__(self, *args,
                 verifier_config: Optional[VerifierConfig] = None,
                 limits: Optional[SandboxLimits] = None,
                 name_prefix: str = "eds", **kwargs):
        super().__init__(*args, name_prefix=name_prefix, **kwargs)
        self.bindings: List[EdsBinding] = [
            EdsBinding(replica, verifier_config, limits)
            for replica in self.replicas
        ]

    def binding(self, node_id: str) -> EdsBinding:
        return self.bindings[self.replica_ids.index(node_id)]
