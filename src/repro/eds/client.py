"""EDS client library: extension lifecycle via the dedicated _em space."""

from __future__ import annotations

from ..depspace.client import DsClient
from ..depspace.tuples import ANY
from .integration import EM_SPACE

__all__ = ["EdsClient"]


class EdsClient(DsClient):
    """DepSpace client + the convenience methods of §5.2.2."""

    def register_extension(self, name: str, source: str):
        """Register an extension (tuple insert into the _em space).

        Raises :class:`~repro.core.errors.ExtensionRejectedError` when
        the replicas' verifiers refuse the code.
        """
        value = yield from self._call_em_out(("ext", name, source))
        return value

    def acknowledge_extension(self, name: str):
        """Opt in to an extension registered by another client (§3.6)."""
        value = yield from self._call_em_out(("ack", name))
        return value

    def deregister_extension(self, name: str):
        """Remove an extension (tuple take from the _em space)."""
        value = yield from self.inp("ext", name, ANY, space=EM_SPACE)
        return value

    def _call_em_out(self, entry):
        from ..depspace.protocol import OutOp
        value = yield from self._call(OutOp(tuple(entry), space=EM_SPACE))
        return value

    def ensure_lease_renewal(self, lease_ms: float | None = None) -> None:
        """Start renewing leases created on this client's behalf (e.g. by
        a monitor() call inside an extension)."""
        self._ensure_renewal("main", lease_ms or self.lease_ms)
