"""Raft consensus — the third :class:`~repro.core.broadcast.AtomicBroadcast`
kernel (alongside Zab and PBFT).

Payload-agnostic by construction: the peer stamps and replicates opaque
records built by an injectable ``record_factory``, so the same kernel
carries ZooKeeper transactions (``repro.zk`` with
``ZkConfig(kernel="raft")``) and DepSpace tuple-space requests
(``repro.depspace`` with ``DsConfig(kernel="raft")``) without this
package importing either family.
"""

from .peer import (AppendEntries, AppendReply, InstallSnapshot, RaftConfig,
                   RaftEntry, RaftPeer, RaftRole, RequestVote, SnapshotReply,
                   VoteReply)

__all__ = ["RaftConfig", "RaftPeer", "RaftRole", "RaftEntry", "RequestVote",
           "VoteReply", "AppendEntries", "AppendReply", "InstallSnapshot",
           "SnapshotReply"]
