"""A Raft peer implementing the :class:`AtomicBroadcast` contract.

The standard algorithm (Ongaro & Ousterhout), with the pieces the
conformance suite exercises:

* **leader election with randomized timeouts** — every follower draws
  its election timeout from a per-node seeded RNG, so elections stay
  deterministic per (config seed, node id) while still de-synchronizing
  candidacies;
* **pre-vote** — a follower first runs a non-binding poll at
  ``term + 1``; peers grant it only if they have not heard from a live
  leader recently and the candidate's log is up to date. Real terms are
  only bumped once a quorum would elect us, so a replica flapping in
  and out of partitions cannot inflate terms and depose healthy leaders
  (the churn-survival property the chaos matrix leans on);
* **log matching** — AppendEntries carries ``(prev_index, prev_term)``;
  a follower accepts only on an exact match, truncates a conflicting
  uncommitted suffix, and otherwise replies with a hint so the leader
  walks ``next_index`` back;
* **commit-index advancement** — the leader commits the highest index
  replicated on a quorum of voters *whose entry is from the current
  term* (figure 8 rule); followers advance to
  ``min(leader_commit, matched)``;
* **InstallSnapshot** — the leader compacts its shippable log at the
  commit point every ``snapshot_threshold`` entries; a follower too far
  behind receives the whole compacted prefix as one snapshot message
  (the delivery watermark survives the wholesale swap, exactly like a
  Zab full sync) and rejoins the AppendEntries flow at its edge.

Zxid mapping: an entry at global log index ``i`` appended in term ``t``
is stamped ``make_zxid(t, i)``. Terms never decrease along the log and
indexes strictly increase, so stamps are strictly increasing and the
tree server's bisect-by-zxid machinery works unchanged.

Like Zab, a freshly elected leader must not serve until its history is
authoritative: it proposes a **no-op barrier entry** for its term
(``noop_txn``) and reports ``is_leader`` only once that entry commits —
which, by the figure 8 rule, is also the moment every inherited entry
is committed. Durable state (term, vote, log, commit and delivery
pointers) survives ``crash()``, modelling an fsync'd log.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Set

from ..core.broadcast import (AtomicBroadcast, NotLeaderError, make_zxid)
from ..sim import Environment

__all__ = ["RaftConfig", "RaftPeer", "RaftRole", "RaftEntry", "RaftRecord",
           "RequestVote", "VoteReply", "AppendEntries", "AppendReply",
           "InstallSnapshot", "SnapshotReply"]


class RaftRole(str, Enum):
    FOLLOWER = "FOLLOWER"
    CANDIDATE = "CANDIDATE"
    LEADER = "LEADER"


@dataclass
class RaftConfig:
    heartbeat_ms: float = 50.0
    #: election timeout drawn uniformly from [min, max) per attempt.
    election_timeout_min_ms: float = 250.0
    election_timeout_max_ms: float = 500.0
    #: compact the shippable log at the commit point once it trails by
    #: this many entries; laggards then catch up via InstallSnapshot.
    #: 0 disables compaction (suffix backfill only).
    snapshot_threshold: int = 128
    #: run the pre-vote phase before bumping the real term.
    pre_vote: bool = True
    #: seed for the per-node election-timeout RNG.
    seed: int = 0


@dataclass
class RaftRecord:
    """Default record shape when no ``record_factory`` is injected."""

    zxid: int
    txn: object
    meta: object = None


@dataclass
class RaftEntry:
    term: int
    record: object


# -- protocol messages --------------------------------------------------------

@dataclass
class RequestVote:
    term: int
    candidate_id: str
    last_log_index: int
    last_log_term: int
    pre_vote: bool = False


@dataclass
class VoteReply:
    #: the term the request asked about (echoed back).
    term: int
    #: the responder's own current term (steps stale candidates down).
    responder_term: int
    voter_id: str
    granted: bool
    pre_vote: bool = False


@dataclass
class AppendEntries:
    term: int
    leader_id: str
    prev_index: int
    prev_term: int
    entries: List[RaftEntry] = field(default_factory=list)
    leader_commit: int = 0


@dataclass
class AppendReply:
    term: int
    follower_id: str
    success: bool
    #: on success: highest index now known matched.
    match_index: int = 0
    #: on failure: the follower's best guess at where logs agree.
    hint_index: int = 0


@dataclass
class InstallSnapshot:
    """The leader's compacted prefix, shipped wholesale.

    The receiver replaces its log prefix with ``entries`` (global
    indexes ``1..last_index``); its delivery watermark — which can only
    point inside the committed, hence agreed, prefix — carries over.
    """

    term: int
    leader_id: str
    last_index: int
    entries: List[RaftEntry]
    leader_commit: int


@dataclass
class SnapshotReply:
    term: int
    follower_id: str
    last_index: int


class RaftPeer(AtomicBroadcast):
    """One replica's endpoint of the Raft protocol."""

    def __init__(self, env: Environment, node_id: str, peer_ids: List[str],
                 send: Callable[[str, object], None],
                 deliver: Callable[[object], None],
                 config: Optional[RaftConfig] = None,
                 observer_ids: Optional[List[str]] = None,
                 is_observer: bool = False,
                 send_many: Optional[
                     Callable[[List[str], object], None]] = None,
                 record_factory: Optional[Callable] = None,
                 noop_txn: Optional[Callable[[], object]] = None):
        self.env = env
        self.node_id = node_id
        #: voting members other than us (for an observer: all voters).
        self.peer_ids = [p for p in peer_ids if p != node_id]
        self.n = len(peer_ids)
        self.quorum = self.n // 2 + 1
        self.observer_ids = [o for o in (observer_ids or []) if o != node_id]
        self._voter_set = frozenset(self.peer_ids)
        self.is_observer = is_observer
        self._send = send
        self._send_many = send_many
        self._deliver = deliver
        self.config = config or RaftConfig()
        self._record = record_factory or (
            lambda zxid, txn, meta: RaftRecord(zxid, txn, meta))
        self._noop_txn = noop_txn

        # durable state (survives crash(): an fsync'd log)
        self.current_term = 0
        self.voted_for: Optional[str] = None
        self._entries: List[RaftEntry] = []       # global index i = [i-1]
        self.commit_index = 0
        self.committed_zxid = 0
        self._delivered_upto = 0                  # count of delivered entries

        # volatile
        self.role = RaftRole.FOLLOWER
        self.leader_id: Optional[str] = None
        self._established = False
        self._noop_index = 0
        #: leader bookkeeping, per learner (voters + observers).
        self._next_index: Dict[str, int] = {}
        self._match_index: Dict[str, int] = {}
        #: compaction point: entries at or below ship only via snapshot.
        self._snap_index = 0
        #: election bookkeeping.
        self._votes: Set[str] = set()
        self._prevote_votes: Set[str] = set()
        self._prevote_term = 0
        self._rng = random.Random(f"{self.config.seed}/{node_id}")
        self._timeout_ms = self._draw_timeout()
        self._last_leader_contact = env.now
        self._alive = True
        self.on_role_change: Optional[Callable[[], None]] = None
        #: introspection counters (asserted by the conformance suite).
        self.snapshots_installed = 0
        self.snapshots_sent = 0

    # -- introspection ---------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return (self._alive and self.role is RaftRole.LEADER
                and self._established)

    @property
    def leadership_epoch(self) -> int:
        return self.current_term

    @property
    def log(self) -> List[object]:
        """The replicated records, in stamp order (contract view)."""
        return [e.record for e in self._entries]

    @property
    def last_zxid(self) -> int:
        return self._entries[-1].record.zxid if self._entries else 0

    @property
    def next_zxid(self) -> int:
        return make_zxid(self.current_term, len(self._entries) + 1)

    @property
    def _last_index(self) -> int:
        return len(self._entries)

    @property
    def _last_term(self) -> int:
        return self._entries[-1].term if self._entries else 0

    @property
    def _learners(self) -> List[str]:
        return (self.peer_ids + self.observer_ids if self.observer_ids
                else self.peer_ids)

    def _draw_timeout(self) -> float:
        return self._rng.uniform(self.config.election_timeout_min_ms,
                                 self.config.election_timeout_max_ms)

    def _term_at(self, index: int) -> int:
        return self._entries[index - 1].term if index else 0

    # -- lifecycle -------------------------------------------------------

    def bootstrap(self, leader_id: str, epoch: int = 1) -> None:
        """Install an initial leadership without running an election."""
        self.current_term = epoch
        self.leader_id = leader_id
        if leader_id == self.node_id:
            self.role = RaftRole.LEADER
            self._established = True  # empty history: nothing to confirm
            self._init_leader_state()
        else:
            self.role = RaftRole.FOLLOWER
        self._last_leader_contact = self.env.now
        self.env.process(self._ticker())

    def crash(self) -> None:
        """Stop participating. Durable state persists (disk)."""
        self._alive = False

    def recover(self) -> None:
        """Come back up as a follower; the leader's heartbeat AppendEntries
        probes repair our log via the normal next_index walk-back."""
        self._alive = True
        self.role = RaftRole.FOLLOWER
        self.leader_id = None
        self._established = False
        self._timeout_ms = self._draw_timeout()
        self._last_leader_contact = self.env.now
        self.env.process(self._ticker())

    # -- client of the protocol ------------------------------------------

    def propose(self, txn, meta=None) -> int:
        if not self.is_leader:
            raise NotLeaderError(self.node_id)
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("raft.proposals", self.node_id)
        index = self._append_local(txn, meta)
        zxid = self._entries[index - 1].record.zxid
        self._replicate_new(index)
        self._advance_commit()
        return zxid

    def _append_local(self, txn, meta) -> int:
        index = self._last_index + 1
        record = self._record(make_zxid(self.current_term, index), txn, meta)
        self._entries.append(RaftEntry(self.current_term, record))
        self._match_index[self.node_id] = index
        return index

    def _replicate_new(self, index: int) -> None:
        """Ship entry ``index`` to every learner already caught up; the
        heartbeat backfill covers laggards."""
        msg = AppendEntries(self.current_term, self.node_id, index - 1,
                            self._term_at(index - 1),
                            [self._entries[index - 1]], self.commit_index)
        ready = [p for p in self._learners
                 if self._next_index.get(p, index) == index]
        for peer in ready:
            self._next_index[peer] = index + 1
        if len(ready) == len(self._learners) and self._send_many is not None:
            self._send_many(ready, msg)
        else:
            for peer in ready:
                self._send(peer, msg)

    # -- message dispatch ------------------------------------------------

    def handle(self, src: str, msg: object) -> bool:
        """Process a protocol message; False if not a Raft message."""
        if not self._alive:
            return True
        if isinstance(msg, RequestVote):
            self._on_request_vote(src, msg)
        elif isinstance(msg, VoteReply):
            self._on_vote_reply(src, msg)
        elif isinstance(msg, AppendEntries):
            self._on_append_entries(src, msg)
        elif isinstance(msg, AppendReply):
            self._on_append_reply(src, msg)
        elif isinstance(msg, InstallSnapshot):
            self._on_install_snapshot(src, msg)
        elif isinstance(msg, SnapshotReply):
            self._on_snapshot_reply(src, msg)
        else:
            return False
        return True

    def _step_down(self, term: int) -> None:
        """A higher term exists: adopt it and revert to follower."""
        was_leader = self.is_leader
        self.current_term = term
        self.voted_for = None
        self.role = RaftRole.FOLLOWER
        self.leader_id = None
        self._established = False
        if was_leader and self.on_role_change:
            self.on_role_change()

    # -- elections -------------------------------------------------------

    def _ticker(self):
        """One loop per live incarnation: leader heartbeats double as
        backfill probes; followers watch for leader silence."""
        while self._alive:
            yield self.env.timeout(self.config.heartbeat_ms)
            if not self._alive:
                return
            if self.role is RaftRole.LEADER:
                self._replicate_all()
            elif not self.is_observer:
                silence = self.env.now - self._last_leader_contact
                if silence > self._timeout_ms:
                    self._start_prevote()

    def _start_prevote(self) -> None:
        # The attempt clock restarts with a fresh randomized draw, so a
        # failed round retries after a different interval (split-vote
        # de-synchronization).
        self._last_leader_contact = self.env.now
        self._timeout_ms = self._draw_timeout()
        # Pre-vote is non-binding, so a candidate retrying after a split
        # vote reverts to follower for the new poll.
        self.role = RaftRole.FOLLOWER
        if not self.config.pre_vote or self.quorum == 1:
            self._start_candidacy(self.current_term + 1)
            return
        self._prevote_term = self.current_term + 1
        self._prevote_votes = {self.node_id}
        poll = RequestVote(self._prevote_term, self.node_id,
                           self._last_index, self._last_term, pre_vote=True)
        for peer in self.peer_ids:
            self._send(peer, poll)

    def _start_candidacy(self, term: int) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("raft.elections", self.node_id)
        self.current_term = term
        self.voted_for = self.node_id
        self.role = RaftRole.CANDIDATE
        self.leader_id = None
        self._established = False
        self._votes = {self.node_id}
        if len(self._votes) >= self.quorum:
            self._become_leader()
            return
        ballot = RequestVote(self.current_term, self.node_id,
                             self._last_index, self._last_term)
        for peer in self.peer_ids:
            self._send(peer, ballot)

    def _fresh_leader(self) -> bool:
        """Have we heard from a live leader within the minimum timeout?
        (Leader stickiness: the pre-vote guard against partition churn.)"""
        return (self.leader_id is not None
                and (self.env.now - self._last_leader_contact)
                < self.config.election_timeout_min_ms)

    def _log_ok(self, last_log_term: int, last_log_index: int) -> bool:
        """Election restriction: candidate's log at least as up to date."""
        return ((last_log_term, last_log_index)
                >= (self._last_term, self._last_index))

    def _on_request_vote(self, src: str, msg: RequestVote) -> None:
        if self.is_observer:
            return  # observers never vote
        if msg.pre_vote:
            # Non-binding: no term adoption, no vote recorded.
            granted = (msg.term > self.current_term
                       and self._log_ok(msg.last_log_term, msg.last_log_index)
                       and not self._fresh_leader())
            self._send(src, VoteReply(msg.term, self.current_term,
                                      self.node_id, granted, pre_vote=True))
            return
        if msg.term > self.current_term:
            self._step_down(msg.term)
        granted = (msg.term == self.current_term
                   and self.voted_for in (None, msg.candidate_id)
                   and self._log_ok(msg.last_log_term, msg.last_log_index))
        if granted:
            self.voted_for = msg.candidate_id
            self._last_leader_contact = self.env.now
        self._send(src, VoteReply(msg.term, self.current_term,
                                  self.node_id, granted))

    def _vote_valid(self, msg: VoteReply) -> bool:
        """Does this granted reply count toward the phase we are in?

        The term/phase checks here are load-bearing: counting a stale
        or pre-vote grant as a real vote elects leaders without a real
        quorum (the conformance teeth tests pin exactly this).
        """
        if msg.pre_vote:
            return (self.role is RaftRole.FOLLOWER
                    and msg.term == self._prevote_term
                    and msg.term == self.current_term + 1)
        return (self.role is RaftRole.CANDIDATE
                and msg.term == self.current_term)

    def _on_vote_reply(self, src: str, msg: VoteReply) -> None:
        if msg.responder_term > self.current_term:
            self._step_down(msg.responder_term)
            return
        if not msg.granted or not self._vote_valid(msg):
            return
        if self.role is RaftRole.CANDIDATE:
            self._votes.add(msg.voter_id)
            if len(self._votes) >= self.quorum:
                self._become_leader()
        else:  # pre-vote phase
            self._prevote_votes.add(msg.voter_id)
            if len(self._prevote_votes) >= self.quorum:
                self._start_candidacy(self._prevote_term)

    def _become_leader(self) -> None:
        self.role = RaftRole.LEADER
        self.leader_id = self.node_id
        self._init_leader_state()
        # Barrier no-op: committing an entry of our own term is the only
        # safe way to commit the inherited suffix (figure 8), and its
        # commit is what flips is_leader on.
        txn = self._noop_txn() if self._noop_txn is not None else None
        self._noop_index = self._append_local(txn, None)
        self._established = False
        self._replicate_all()
        self._advance_commit()  # single-node ensembles commit instantly

    def _init_leader_state(self) -> None:
        nxt = self._last_index + 1
        self._next_index = {p: nxt for p in self._learners}
        self._match_index = {p: 0 for p in self._learners}
        self._match_index[self.node_id] = self._last_index

    # -- replication -----------------------------------------------------

    def _replicate_all(self) -> None:
        """Heartbeat: probe every learner from its next_index. An
        up-to-date learner gets an empty AppendEntries; a lagging one
        gets the missing suffix (or a snapshot past the compaction
        point). This one path is heartbeat, retransmission and
        backfill at once."""
        for peer in self._learners:
            self._send_entries(peer)

    def _send_entries(self, peer: str) -> None:
        nxt = self._next_index.get(peer, self._last_index + 1)
        if self._snap_index and nxt <= self._snap_index:
            self.snapshots_sent += 1
            self._send(peer, InstallSnapshot(
                self.current_term, self.node_id, self._snap_index,
                self._entries[:self._snap_index], self.commit_index))
            self._next_index[peer] = self._snap_index + 1
            return
        prev = nxt - 1
        self._send(peer, AppendEntries(
            self.current_term, self.node_id, prev, self._term_at(prev),
            self._entries[prev:], self.commit_index))
        self._next_index[peer] = self._last_index + 1

    def _prev_ok(self, prev_index: int, prev_term: int) -> bool:
        """Log matching: do we hold the leader's claimed predecessor?

        Skipping this check lets a follower graft entries onto a hole
        or a divergent suffix (the other conformance teeth target)."""
        if prev_index == 0:
            return True
        if prev_index > self._last_index:
            return False
        return self._term_at(prev_index) == prev_term

    def _note_leader(self, src: str, term: int) -> None:
        """A valid AppendEntries/InstallSnapshot from ``src``."""
        if term > self.current_term or self.role is not RaftRole.FOLLOWER:
            self.current_term = max(self.current_term, term)
            self.voted_for = None
            self.role = RaftRole.FOLLOWER
        changed = self.leader_id != src
        self.leader_id = src
        self._last_leader_contact = self.env.now
        if changed and self.on_role_change:
            self.on_role_change()

    def _on_append_entries(self, src: str, msg: AppendEntries) -> None:
        if msg.term < self.current_term:
            self._send(src, AppendReply(self.current_term, self.node_id,
                                        False, hint_index=self._last_index))
            return
        self._note_leader(src, msg.term)
        if not self._prev_ok(msg.prev_index, msg.prev_term):
            # Hint: our log can only agree at or below min(our last,
            # the claimed predecessor) — skip the leader straight there.
            hint = min(self._last_index, msg.prev_index - 1)
            self._send(src, AppendReply(self.current_term, self.node_id,
                                        False, hint_index=max(hint, 0)))
            return
        index = msg.prev_index
        for entry in msg.entries:
            index += 1
            if index <= self._last_index:
                if self._entries[index - 1].term == entry.term:
                    continue  # duplicate of what we hold
                # Conflict: drop the (necessarily uncommitted) suffix.
                assert index > self.commit_index, \
                    "raft: attempted truncation below the commit index"
                del self._entries[index - 1:]
            if index == self._last_index + 1:
                self._entries.append(entry)
            # else: mutated _prev_ok accepted a graft past a hole; the
            # entry is dropped and the (wrong) ack below exposes it.
        matched = min(index, self._last_index)
        if msg.leader_commit > self.commit_index:
            self._set_commit(min(msg.leader_commit, matched))
        self._send(src, AppendReply(self.current_term, self.node_id, True,
                                    match_index=matched))

    def _on_append_reply(self, src: str, msg: AppendReply) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if self.role is not RaftRole.LEADER or msg.term != self.current_term:
            return
        if msg.success:
            if msg.match_index > self._match_index.get(src, 0):
                self._match_index[src] = msg.match_index
            self._next_index[src] = max(self._next_index.get(src, 1),
                                        msg.match_index + 1)
            self._advance_commit()
        else:
            # Walk back (guided by the hint) and repair immediately.
            nxt = self._next_index.get(src, self._last_index + 1)
            self._next_index[src] = max(1, min(nxt - 1, msg.hint_index + 1))
            self._send_entries(src)

    def _advance_commit(self) -> None:
        if self.role is not RaftRole.LEADER:
            return
        # Highest index replicated on a quorum of *voters* (observers
        # never count), committable only if from the current term.
        matches = sorted(self._match_index.get(v, 0)
                         for v in (self.node_id, *self.peer_ids))
        candidate = matches[len(matches) - self.quorum]
        if candidate <= self.commit_index:
            return
        if self._term_at(candidate) != self.current_term:
            return
        self._set_commit(candidate)
        if not self._established and self.commit_index >= self._noop_index:
            self._established = True
            obs = self.env.obs
            if obs is not None:
                obs.metrics.inc("raft.leaderships", self.node_id)
            if self.on_role_change:
                self.on_role_change()
        self._maybe_compact()

    def _set_commit(self, index: int) -> None:
        if index <= self.commit_index:
            return
        self.commit_index = index
        self.committed_zxid = self._entries[index - 1].record.zxid
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("raft.commits", self.node_id)
        delivered = 0
        while (self._delivered_upto < self.commit_index
               and self._delivered_upto < len(self._entries)):
            record = self._entries[self._delivered_upto].record
            self._delivered_upto += 1
            delivered += 1
            self._deliver(record)
        if delivered and obs is not None:
            obs.metrics.inc("raft.deliveries", self.node_id, delivered)

    def _maybe_compact(self) -> None:
        threshold = self.config.snapshot_threshold
        if threshold and self.commit_index - self._snap_index >= threshold:
            self._snap_index = self.commit_index

    # -- snapshots -------------------------------------------------------

    def _on_install_snapshot(self, src: str, msg: InstallSnapshot) -> None:
        if msg.term < self.current_term:
            self._send(src, AppendReply(self.current_term, self.node_id,
                                        False, hint_index=self._last_index))
            return
        self._note_leader(src, msg.term)
        snap_term = msg.entries[-1].term if msg.entries else 0
        holds_edge = (msg.last_index <= self._last_index
                      and self._term_at(msg.last_index) == snap_term)
        if not holds_edge:
            # Wholesale prefix swap — we are either short of the
            # snapshot edge or divergent at it. Anything we held past
            # the edge is gone too: it is uncommitted (our commit point
            # is necessarily inside the snapshot) and the leader will
            # re-ship whatever of it survives. The delivery watermark is
            # a count into the committed prefix, which the snapshot
            # reproduces verbatim, so it carries over untouched.
            self._entries = list(msg.entries)
            self.snapshots_installed += 1
            obs = self.env.obs
            if obs is not None:
                obs.metrics.inc("raft.snapshots_installed", self.node_id)
        self._set_commit(min(msg.leader_commit, msg.last_index))
        self._send(src, SnapshotReply(self.current_term, self.node_id,
                                      msg.last_index))

    def _on_snapshot_reply(self, src: str, msg: SnapshotReply) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if self.role is not RaftRole.LEADER or msg.term != self.current_term:
            return
        if msg.last_index > self._match_index.get(src, 0):
            self._match_index[src] = msg.last_index
        self._next_index[src] = max(self._next_index.get(src, 1),
                                    msg.last_index + 1)
        self._advance_commit()
