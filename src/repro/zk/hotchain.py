"""NetChain-inspired chain-replicated hot-key tier.

The lease cache (``leases.py``) wins when hot keys are read-mostly; a
tiny *high-churn* object — a sequencer, a queue head pointer, a rate
counter — defeats it, because every write pays a revocation round
before it commits. NetChain's answer is to move such objects into a
dedicated chain-replicated fast tier and keep the coordination service
as its **control plane**:

* writes enter at the **head** and propagate hop-by-hop to the tail;
  only the **tail** acks, so an acked write is fully replicated;
* reads go to the **tail** only, which by the ack rule serves the last
  fully-replicated write — per-key linearizability without any client
  round to a leader;
* the chain's membership, the promoted key set, and a monotonically
  increasing **epoch** live in a znode (``/hotchain/config``) owned by
  the controller. Every data-plane message carries the sender's epoch;
  a member that was reconfigured away (or a client routing on a stale
  config) is fenced by the epoch check at the next hop and falls back
  to the coordination tree.

Promotion is driven by observed access frequency with hysteresis:
routers report per-key access counts, the controller promotes keys
that stay above a threshold for a full window and demotes only after
several consecutive quiet windows, so a key oscillating around the
threshold does not flap. Promotion copies the znode's current value
into the chain; demotion drains the tail's final value back into the
znode — both under an epoch bump, so the two copies can never both be
writable.

Known bounded races (documented, by design): a write acked by the old
chain *after* its key was demoted is not lost — the drain runs after
the epoch bump fences the head, so the ack could only have come from
the pre-bump tail state the drain reads. A write in flight *inside*
the chain during reconfiguration is nacked at the first hop holding
the new epoch and the client retries against the tree; it was never
acked, so nothing observable is lost.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..sim import Environment, Event, Network
from .client import ZkClient
from .errors import ZkError

__all__ = ["HotChainConfig", "ChainNode", "HotChainController",
           "HotChainRouter", "PromotionPolicy", "CONFIG_PATH"]

#: the control-plane znode: JSON {epoch, members, keys}.
CONFIG_PATH = "/hotchain/config"

_TIMED_OUT = object()


@dataclass(frozen=True)
class HotChainConfig:
    """Knobs for the chain tier (promotion policy + failure detection)."""

    #: accesses per report window that make a key chain-worthy.
    promote_accesses: int = 32
    #: consecutive windows below the threshold before demotion.
    demote_windows: int = 3
    #: routers report access counts (and the controller runs its
    #: policy/health tick) on this cadence.
    report_interval_ms: float = 100.0
    #: member liveness: a member whose pong is older than this many
    #: ticks is reconfigured out of the chain.
    probe_misses: int = 2
    #: data-plane RPC deadline at routers before falling back to ZK.
    rpc_timeout_ms: float = 50.0

    def validate(self) -> None:
        if self.promote_accesses < 1:
            raise ValueError("promote_accesses must be >= 1")
        if self.demote_windows < 1:
            raise ValueError("demote_windows must be >= 1")
        if self.report_interval_ms <= 0:
            raise ValueError("report_interval_ms must be positive")
        if self.rpc_timeout_ms <= 0:
            raise ValueError("rpc_timeout_ms must be positive")


# ---------------------------------------------------------------------------
# wire messages (data plane + control plane)
# ---------------------------------------------------------------------------


@dataclass
class ChainConfigure:
    """Controller -> member: adopt this epoch's membership and key set."""

    epoch: int
    members: Tuple[str, ...]
    keys: Tuple[str, ...]


@dataclass
class ChainWrite:
    """Client -> head."""

    xid: int
    key: str
    value: bytes
    origin: str


@dataclass
class ChainForward:
    """Hop-by-hop propagation; fenced by the epoch at every hop."""

    epoch: int
    xid: int
    key: str
    value: bytes
    version: int
    origin: str


@dataclass
class ChainWriteAck:
    """Tail -> origin: the write is fully replicated."""

    xid: int
    key: str
    version: int


@dataclass
class ChainRead:
    """Client -> tail."""

    xid: int
    key: str
    origin: str


@dataclass
class ChainReadReply:
    xid: int
    key: str
    value: bytes
    version: int


@dataclass
class ChainNack:
    """Any member -> origin: wrong epoch/role/key; go refresh + fall back."""

    xid: int
    key: str
    reason: str


@dataclass
class ChainDrain:
    """Controller -> tail: hand back a demoted key's final value."""

    xid: int
    key: str
    origin: str


@dataclass
class ChainDrainAck:
    xid: int
    key: str
    value: Optional[bytes]
    version: int


@dataclass
class ChainPing:
    seq: int
    origin: str


@dataclass
class ChainPong:
    seq: int
    member: str


@dataclass
class AccessReport:
    """Router -> controller: per-key access counts since the last report."""

    counts: Dict[str, int]


# ---------------------------------------------------------------------------
# data plane: one chain member
# ---------------------------------------------------------------------------


class ChainNode:
    """One chain member: an epoch-fenced in-memory store.

    Deliberately *not* a ZkServer — NetChain's point is that the fast
    tier is dumb and cheap (in-network switches there, a bare dict
    here); all policy lives in the controller.
    """

    def __init__(self, env: Environment, net: Network, node_id: str):
        self.env = env
        self.net = net
        self.node_id = node_id
        self.epoch = 0
        self.members: Tuple[str, ...] = ()
        self.keys: frozenset = frozenset()
        #: key -> (value, version); version is per-key, head-assigned.
        self.store: Dict[str, Tuple[bytes, int]] = {}
        #: final values of keys configured away, kept for the drain.
        self.retired: Dict[str, Tuple[bytes, int]] = {}
        self._alive = True
        net.register(node_id, self.handle_message)

    # -- roles -------------------------------------------------------------

    @property
    def is_head(self) -> bool:
        return bool(self.members) and self.members[0] == self.node_id

    @property
    def is_tail(self) -> bool:
        return bool(self.members) and self.members[-1] == self.node_id

    @property
    def successor(self) -> Optional[str]:
        if self.node_id not in self.members:
            return None
        index = self.members.index(self.node_id)
        if index + 1 < len(self.members):
            return self.members[index + 1]
        return None

    # -- fault injection ---------------------------------------------------

    def crash(self) -> None:
        self._alive = False
        self.net.crash(self.node_id)

    def recover(self) -> None:
        """Rejoin empty and epoch-zero: only a ChainConfigure (with a
        fresh seed of values through the head) makes us serve again."""
        self._alive = True
        self.net.recover(self.node_id)
        self.epoch = 0
        self.members = ()
        self.keys = frozenset()
        self.store.clear()

    # -- dispatch ----------------------------------------------------------

    def handle_message(self, src: str, msg: object) -> None:
        if not self._alive:
            return
        if isinstance(msg, ChainConfigure):
            self._on_configure(msg)
        elif isinstance(msg, ChainWrite):
            self._on_write(msg)
        elif isinstance(msg, ChainForward):
            self._on_forward(msg)
        elif isinstance(msg, ChainRead):
            self._on_read(msg)
        elif isinstance(msg, ChainDrain):
            self._on_drain(msg)
        elif isinstance(msg, ChainPing):
            self.net.send(self.node_id, msg.origin,
                          ChainPong(msg.seq, self.node_id))

    def _on_configure(self, msg: ChainConfigure) -> None:
        if msg.epoch < self.epoch:
            return                      # stale controller retry
        self.epoch = msg.epoch
        self.members = tuple(msg.members)
        new_keys = frozenset(msg.keys)
        for key in list(self.store):
            if key not in new_keys:
                self.retired[key] = self.store.pop(key)
        self.keys = new_keys

    def _on_write(self, msg: ChainWrite) -> None:
        obs = self.env.obs
        if not self.is_head or msg.key not in self.keys:
            if obs is not None:
                obs.metrics.inc("hotchain.nacks", self.node_id)
            self.net.send(self.node_id, msg.origin,
                          ChainNack(msg.xid, msg.key, "not head"))
            return
        if obs is not None:
            obs.metrics.inc("hotchain.writes", self.node_id)
        version = self.store.get(msg.key, (b"", 0))[1] + 1
        self.store[msg.key] = (msg.value, version)
        self._propagate(msg.xid, msg.key, msg.value, version, msg.origin)

    def _on_forward(self, msg: ChainForward) -> None:
        if msg.epoch != self.epoch or msg.key not in self.keys:
            # Epoch fence: a reconfiguration happened somewhere between
            # the head and us; the origin retries against the tree.
            self.net.send(self.node_id, msg.origin,
                          ChainNack(msg.xid, msg.key, "epoch fence"))
            return
        self.store[msg.key] = (msg.value, msg.version)
        self._propagate(msg.xid, msg.key, msg.value, msg.version, msg.origin)

    def _propagate(self, xid: int, key: str, value: bytes, version: int,
                   origin: str) -> None:
        nxt = self.successor
        if nxt is None:
            # We are the tail: the write is fully replicated — ack.
            self.net.send(self.node_id, origin,
                          ChainWriteAck(xid, key, version))
            return
        self.net.send(self.node_id, nxt,
                      ChainForward(self.epoch, xid, key, value, version,
                                   origin))

    def _on_read(self, msg: ChainRead) -> None:
        obs = self.env.obs
        if not self.is_tail or msg.key not in self.keys:
            if obs is not None:
                obs.metrics.inc("hotchain.nacks", self.node_id)
            self.net.send(self.node_id, msg.origin,
                          ChainNack(msg.xid, msg.key, "not tail"))
            return
        if obs is not None:
            obs.metrics.inc("hotchain.reads", self.node_id)
        value, version = self.store.get(msg.key, (b"", 0))
        self.net.send(self.node_id, msg.origin,
                      ChainReadReply(msg.xid, msg.key, value, version))

    def _on_drain(self, msg: ChainDrain) -> None:
        entry = self.retired.pop(msg.key, None) or self.store.get(msg.key)
        if entry is None:
            self.net.send(self.node_id, msg.origin,
                          ChainDrainAck(msg.xid, msg.key, None, 0))
            return
        self.net.send(self.node_id, msg.origin,
                      ChainDrainAck(msg.xid, msg.key, entry[0], entry[1]))


# ---------------------------------------------------------------------------
# promotion policy (pure, unit-testable)
# ---------------------------------------------------------------------------


class PromotionPolicy:
    """Frequency promotion with hysteresis (no flapping).

    ``observe`` a window's access counts, then ask :meth:`decide` which
    keys to promote (hot for the whole window) and which to demote
    (below threshold for ``demote_windows`` consecutive windows).
    """

    def __init__(self, config: HotChainConfig):
        self.config = config
        self.promoted: Set[str] = set()
        self._quiet: Dict[str, int] = {}

    def decide(self, counts: Dict[str, int]) -> Tuple[List[str], List[str]]:
        promote: List[str] = []
        demote: List[str] = []
        threshold = self.config.promote_accesses
        for key in sorted(counts):
            if counts[key] >= threshold and key not in self.promoted:
                promote.append(key)
        for key in sorted(self.promoted):
            if counts.get(key, 0) >= threshold:
                self._quiet.pop(key, None)
                continue
            quiet = self._quiet.get(key, 0) + 1
            self._quiet[key] = quiet
            if quiet >= self.config.demote_windows:
                demote.append(key)
        for key in promote:
            self.promoted.add(key)
            self._quiet.pop(key, None)
        for key in demote:
            self.promoted.discard(key)
            self._quiet.pop(key, None)
        return promote, demote


# ---------------------------------------------------------------------------
# control plane: the controller
# ---------------------------------------------------------------------------


class HotChainController:
    """Owns the chain config znode; promotes, demotes, and heals.

    Runs as one simulated process holding an ordinary :class:`ZkClient`
    — the coordination service is the chain's control plane exactly as
    NetChain uses it, so controller failover could ride an ephemeral
    leader election like any other recipe.
    """

    def __init__(self, env: Environment, net: Network, zk: ZkClient,
                 nodes: List[ChainNode],
                 config: Optional[HotChainConfig] = None):
        config = config or HotChainConfig()
        config.validate()
        self.env = env
        self.net = net
        self.zk = zk
        self.nodes = list(nodes)
        self.config = config
        self.node_id = f"{zk.node_id}.hcc"
        self.epoch = 0
        self.members: List[str] = [n.node_id for n in nodes]
        self.policy = PromotionPolicy(config)
        self._counts: Dict[str, int] = {}
        self._pongs: Dict[str, int] = {m: 0 for m in self.members}
        self._probe_seq = 0
        self._xid = 0
        self._pending: Dict[int, Event] = {}
        self._stopped = False
        self.stats = {"promotions": 0, "demotions": 0, "reconfigs": 0,
                      "members_dropped": 0}
        net.register(self.node_id, self._on_message)

    # -- inbox -------------------------------------------------------------

    def _on_message(self, src: str, msg: object) -> None:
        if isinstance(msg, AccessReport):
            for key, count in msg.counts.items():
                self._counts[key] = self._counts.get(key, 0) + count
        elif isinstance(msg, ChainPong):
            self._pongs[msg.member] = msg.seq
        elif isinstance(msg, (ChainWriteAck, ChainDrainAck, ChainNack)):
            future = self._pending.pop(msg.xid, None)
            if future is not None and not future.triggered:
                future.succeed(msg)

    def _rpc(self, dst: str, msg, xid: int):
        future = self.env.event()
        self._pending[xid] = future
        self.net.send(self.node_id, dst, msg)
        self.env.defer(self.config.rpc_timeout_ms, self._expire, xid, future)
        reply = yield future
        return None if reply is _TIMED_OUT else reply

    def _expire(self, xid: int, future: Event) -> None:
        if not future.triggered:
            self._pending.pop(xid, None)
            future.succeed(_TIMED_OUT)

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Generator: publish epoch 1 and start the policy/health loop."""
        try:
            yield from self.zk.create("/hotchain", b"")
        except ZkError:
            pass
        yield from self._publish()
        for node in self.nodes:
            if node.node_id in self.members:
                self.net.send(self.node_id, node.node_id,
                              self._configure_msg())
        self.env.process(self._run())

    def stop(self) -> None:
        self._stopped = True

    def _configure_msg(self) -> ChainConfigure:
        return ChainConfigure(self.epoch, tuple(self.members),
                              tuple(sorted(self.policy.promoted)))

    def _publish(self):
        """Write {epoch, members, keys} to the config znode."""
        self.epoch += 1
        payload = json.dumps({
            "epoch": self.epoch,
            "members": list(self.members),
            "keys": sorted(self.policy.promoted),
        }).encode()
        try:
            yield from self.zk.create(CONFIG_PATH, payload)
        except ZkError:
            yield from self.zk.set_data(CONFIG_PATH, payload)
        self.stats["reconfigs"] += 1

    def _run(self):
        while not self._stopped:
            yield self.env.timeout(self.config.report_interval_ms)
            if self._stopped:
                return
            changed = self._check_members()
            promote, demote = self.policy.decide(self._counts)
            self._counts = {}
            if changed or promote or demote:
                yield from self._reconfigure(promote, demote)
            self._probe_members()

    # -- failure detection -------------------------------------------------

    def _probe_members(self) -> None:
        self._probe_seq += 1
        for member in self.members:
            self.net.send(self.node_id, member,
                          ChainPing(self._probe_seq, self.node_id))

    def _check_members(self) -> bool:
        """Drop members whose pongs stopped; True when membership shrank."""
        horizon = self._probe_seq - self.config.probe_misses
        if horizon <= 0:
            return False
        dead = [m for m in self.members if self._pongs.get(m, 0) <= horizon]
        if not dead:
            return False
        self.members = [m for m in self.members if m not in dead]
        self.stats["members_dropped"] += len(dead)
        return True

    # -- reconfiguration ---------------------------------------------------

    def _reconfigure(self, promote: List[str], demote: List[str]):
        """Epoch bump + migrate: config first, then the key values.

        Order matters: the new epoch is published (znode, then members)
        *before* any value moves, so the old configuration is fenced
        when the migration reads or writes either copy.
        """
        if not self.members:
            # No chain left: everything falls back to the tree until a
            # member returns (routers nack-refresh onto the new config).
            self.policy.promoted.clear()
            promote, demote = [], []
        yield from self._publish()
        for node in self.nodes:
            self.net.send(self.node_id, node.node_id, self._configure_msg())
        head = self.members[0] if self.members else None
        tail = self.members[-1] if self.members else None
        for key in promote:
            # Seed the chain with the znode's current value through the
            # head; the tail ack means every member holds it.
            try:
                data, _stat = yield from self.zk.get_data(key)
            except ZkError:
                self.policy.promoted.discard(key)
                continue
            self._xid += 1
            reply = yield from self._rpc(
                head, ChainWrite(self._xid, key, data, self.node_id),
                self._xid)
            if not isinstance(reply, ChainWriteAck):
                self.policy.promoted.discard(key)
            else:
                self.stats["promotions"] += 1
        for key in demote:
            if tail is None:
                continue
            self._xid += 1
            reply = yield from self._rpc(
                tail, ChainDrain(self._xid, key, self.node_id), self._xid)
            if isinstance(reply, ChainDrainAck) and reply.value is not None:
                try:
                    yield from self.zk.set_data(key, reply.value)
                except ZkError:
                    pass
            self.stats["demotions"] += 1
        if promote:
            # The promoted set changed during seeding failures: publish
            # the truth so routers don't chase keys the chain refused.
            yield from self._publish()
            for node in self.nodes:
                self.net.send(self.node_id, node.node_id,
                              self._configure_msg())


# ---------------------------------------------------------------------------
# client side: the router
# ---------------------------------------------------------------------------


class HotChainRouter:
    """Routes a client's reads/writes: chain for promoted keys, ZK else.

    Wraps an ordinary :class:`ZkClient`; refreshes its routing table
    from the config znode on every nack or timeout (the stale-config
    client is exactly who the epoch fence is for).
    """

    def __init__(self, zk: ZkClient, controller_id: str,
                 config: Optional[HotChainConfig] = None):
        self.zk = zk
        self.env = zk.env
        self.net = zk.net
        self.config = config or HotChainConfig()
        self.controller_id = controller_id
        self.node_id = f"{zk.node_id}.hc"
        self.epoch = 0
        self.members: Tuple[str, ...] = ()
        self.keys: frozenset = frozenset()
        self._xid = 0
        self._pending: Dict[int, Event] = {}
        self._counts: Dict[str, int] = {}
        self._last_report = 0.0
        self.stats = {"chain_reads": 0, "chain_writes": 0, "fallbacks": 0,
                      "refreshes": 0}
        self.net.register(self.node_id, self._on_message)

    def _on_message(self, src: str, msg: object) -> None:
        if isinstance(msg, (ChainReadReply, ChainWriteAck, ChainNack)):
            future = self._pending.pop(msg.xid, None)
            if future is not None and not future.triggered:
                future.succeed(msg)

    # -- config ------------------------------------------------------------

    def refresh(self):
        """Re-read the config znode (nack/timeout recovery path)."""
        self.stats["refreshes"] += 1
        try:
            data, _stat = yield from self.zk.get_data(CONFIG_PATH)
            parsed = json.loads(data.decode())
        except (ZkError, ValueError):
            self.members = ()
            self.keys = frozenset()
            return
        if parsed["epoch"] >= self.epoch:
            self.epoch = parsed["epoch"]
            self.members = tuple(parsed["members"])
            self.keys = frozenset(parsed["keys"])

    def _note_access(self, key: str) -> bool:
        """Count the access; True when a report went out (refresh due)."""
        self._counts[key] = self._counts.get(key, 0) + 1
        if (self.env.now - self._last_report
                >= self.config.report_interval_ms):
            self._last_report = self.env.now
            counts, self._counts = self._counts, {}
            self.net.send(self.node_id, self.controller_id,
                          AccessReport(counts))
            return True
        return False

    # -- data plane --------------------------------------------------------

    def _rpc(self, dst: str, build):
        self._xid += 1
        xid = self._xid
        future = self.env.event()
        self._pending[xid] = future
        self.net.send(self.node_id, dst, build(xid))
        self.env.defer(self.config.rpc_timeout_ms, self._expire, xid, future)
        reply = yield future
        return None if reply is _TIMED_OUT else reply

    def _expire(self, xid: int, future: Event) -> None:
        if not future.triggered:
            self._pending.pop(xid, None)
            future.succeed(_TIMED_OUT)

    #: chain RPC attempts (each a timeout + config refresh) before a
    #: promoted key's operation gives up on the chain. The controller
    #: heals a dead member within ~``probe_misses`` report intervals,
    #: well inside this budget; exhausting it means the whole tier
    #: (or its controller) is gone.
    max_attempts = 10

    def read(self, path: str):
        """Chain tail read for promoted keys; ZK read otherwise.

        While the config says the key is promoted, the chain is the
        *only* authority — the znode copy is stale by design (synced at
        demotion). A failed tail RPC therefore refreshes the config and
        retries rather than reading the znode; the ZK path is taken
        only once the key leaves the config, or after ``max_attempts``
        (the catastrophic everyone-died case, where the znode copy —
        the value as of promotion or the last demotion — is the best
        surviving state).
        """
        if self._note_access(path):
            yield from self.refresh()
        for _ in range(self.max_attempts):
            if path not in self.keys or not self.members:
                break
            reply = yield from self._rpc(
                self.members[-1],
                lambda xid: ChainRead(xid, path, self.node_id))
            if isinstance(reply, ChainReadReply):
                self.stats["chain_reads"] += 1
                return reply.value
            self.stats["fallbacks"] += 1
            yield from self.refresh()
        value = yield from self.zk.get_data(path)
        return value[0] if isinstance(value, tuple) else value

    def update(self, path: str, data: bytes):
        """Chain head write for promoted keys; ZK write otherwise.

        Never writes the znode while the key is promoted: a direct
        znode write would be silently clobbered by the demotion drain
        (the tail's value wins). Retries the chain until it heals or
        the key is demoted out of the config.
        """
        if self._note_access(path):
            yield from self.refresh()
        for _ in range(self.max_attempts):
            if path not in self.keys or not self.members:
                break
            reply = yield from self._rpc(
                self.members[0],
                lambda xid: ChainWrite(xid, path, data, self.node_id))
            if isinstance(reply, ChainWriteAck):
                self.stats["chain_writes"] += 1
                return True
            self.stats["fallbacks"] += 1
            yield from self.refresh()
        yield from self.zk.set_data(path, data)
        return True
