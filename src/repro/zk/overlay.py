"""Copy-on-write overlay over a :class:`~repro.zk.data_tree.DataTree`.

Two consumers:

* the leader's prep stage uses an overlay to validate a ``MultiOp``
  atomically (all-or-nothing) against its speculative state, and
* Extensible ZooKeeper's sandbox state proxy runs extension code against
  an overlay, so the extension sees its own writes while the manager
  records the write-set as an ordered transaction list (the paper's
  multi-transaction construction, §5.1.2).

Reads fall through to the base tree until a path is touched; writes are
recorded both as projected state and as emitted transactions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .data_tree import DataTree, Stat, ZNode, split_path, validate_path
from .errors import (BadArgumentsError, NoChildrenForEphemeralsError,
                     NodeExistsError, NoNodeError, NotEmptyError,
                     BadVersionError)
from .txn import CreateTxn, DeleteTxn, SetDataTxn, Txn

__all__ = ["TreeOverlay"]

_TOMBSTONE = object()


class TreeOverlay:
    """A mutable view of ``base`` that records its write-set as txns."""

    def __init__(self, base: DataTree):
        self._base = base
        self._nodes: Dict[str, object] = {}  # path -> ZNode copy or _TOMBSTONE
        self.txns: List[Txn] = []

    # -- node lookup -----------------------------------------------------

    def _peek(self, path: str) -> Optional[ZNode]:
        """Current node at ``path`` (overlay-aware), or None."""
        if path in self._nodes:
            entry = self._nodes[path]
            return None if entry is _TOMBSTONE else entry  # type: ignore[return-value]
        if path in self._base:
            return self._base.node(path)
        return None

    def _materialize(self, path: str) -> ZNode:
        """Copy-on-write: private copy of the node for mutation."""
        entry = self._nodes.get(path)
        if entry is _TOMBSTONE:
            raise NoNodeError(path)
        if entry is not None:
            return entry  # type: ignore[return-value]
        if path not in self._base:
            raise NoNodeError(path)
        original = self._base.node(path)
        copy = ZNode(data=original.data, stat=original.stat.copy(),
                     children=set(original.children),
                     sequence_counter=original.sequence_counter)
        self._nodes[path] = copy
        return copy

    # -- read API (mirrors DataTree) ------------------------------------------

    def exists(self, path: str) -> Optional[Stat]:
        validate_path(path)
        node = self._peek(path)
        return node.stat.copy() if node is not None else None

    def get_data(self, path: str) -> Tuple[bytes, Stat]:
        validate_path(path)
        node = self._peek(path)
        if node is None:
            raise NoNodeError(path)
        return (node.data, node.stat.copy())

    def get_children(self, path: str) -> List[str]:
        validate_path(path)
        node = self._peek(path)
        if node is None:
            raise NoNodeError(path)
        return sorted(node.children)

    def children_nodes(self, path: str) -> List[Tuple[str, ZNode]]:
        """(child_path, node) for every child of ``path``, overlay-aware.

        Bulk read for directory-scan consumers (the EZK state proxy lists
        whole queue directories on every extension invocation): one pass
        over the children with plain dict probes, no per-child path
        validation or stat copies. Iteration order is unspecified; the
        nodes are shared, not copies — callers must not mutate them.
        """
        node = self._peek(path)
        if node is None:
            raise NoNodeError(path)
        prefix = "/" if path == "/" else path + "/"
        nodes = self._nodes
        base_nodes = self._base._nodes
        pairs = []
        for name in node.children:
            child = prefix + name
            entry = nodes.get(child)
            if entry is None:
                entry = base_nodes.get(child)
            elif entry is _TOMBSTONE:
                entry = None  # deleted in-overlay; parent link is stale
            if entry is None:
                raise NoNodeError(child)
            pairs.append((child, entry))
        return pairs

    # -- write API ------------------------------------------------------------

    def create(self, path: str, data: bytes = b"",
               ephemeral_owner: Optional[int] = None,
               sequential: bool = False,
               zxid: int = 0, now: float = 0.0) -> str:
        validate_path(path)
        if not isinstance(data, bytes):
            raise BadArgumentsError("znode data must be bytes")
        parent_path, _ = split_path(path)
        parent = self._peek(parent_path)
        if parent is None:
            raise NoNodeError(f"parent missing: {parent_path}")
        if parent.is_ephemeral:
            raise NoChildrenForEphemeralsError(parent_path)
        parent = self._materialize(parent_path)
        if sequential:
            actual = f"{path}{parent.sequence_counter:010d}"
            parent.sequence_counter += 1
        else:
            actual = path
        if self._peek(actual) is not None:
            raise NodeExistsError(actual)

        stat = Stat(czxid=zxid, mzxid=zxid, ctime=now, mtime=now,
                    ephemeral_owner=ephemeral_owner, data_length=len(data))
        self._nodes[actual] = ZNode(data=data, stat=stat)
        _, name = split_path(actual)
        parent.children.add(name)
        parent.stat.cversion += 1
        parent.stat.num_children = len(parent.children)
        self.txns.append(CreateTxn(actual, data, ephemeral_owner))
        return actual

    def set_data(self, path: str, data: bytes, version: int = -1,
                 zxid: int = 0, now: float = 0.0) -> Stat:
        validate_path(path)
        if not isinstance(data, bytes):
            raise BadArgumentsError("znode data must be bytes")
        node = self._peek(path)
        if node is None:
            raise NoNodeError(path)
        if version != -1 and node.stat.version != version:
            raise BadVersionError(
                f"{path}: expected v{version}, at v{node.stat.version}")
        node = self._materialize(path)
        node.data = data
        node.stat.version += 1
        node.stat.mzxid = zxid
        node.stat.mtime = now
        node.stat.data_length = len(data)
        self.txns.append(SetDataTxn(path, data))
        return node.stat.copy()

    def delete(self, path: str, version: int = -1) -> None:
        validate_path(path)
        if path == "/":
            raise BadArgumentsError("cannot delete the root")
        node = self._peek(path)
        if node is None:
            raise NoNodeError(path)
        if node.children:
            raise NotEmptyError(path)
        if version != -1 and node.stat.version != version:
            raise BadVersionError(
                f"{path}: expected v{version}, at v{node.stat.version}")
        self._materialize(path)  # ensure parent linkage below sees a copy
        self._nodes[path] = _TOMBSTONE
        parent_path, name = split_path(path)
        parent = self._materialize(parent_path)
        parent.children.discard(name)
        parent.stat.cversion += 1
        parent.stat.num_children = len(parent.children)
        self.txns.append(DeleteTxn(path))

    # -- introspection ------------------------------------------------------

    @property
    def dirty(self) -> bool:
        return bool(self.txns)

    def touched_paths(self) -> List[str]:
        return sorted(self._nodes)
