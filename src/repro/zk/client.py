"""ZooKeeper client library for simulated clients.

All calls are generator-based: recipe code runs inside a simulation
process and writes ``value = yield from client.get_data(path)`` — the
same shape as the paper's blocking pseudocode.

The library handles session establishment, request/reply matching,
timeouts with fail-over to another replica, watch-event dispatch, and
keep-alive pings.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..sim import Environment, Event, Network
from .errors import ConnectionLossError, from_code
from .txn import (ClientReply, ClientRequest, CloseSessionOp, CreateOp,
                  CreateSessionOp, DeleteOp, ExistsOp, GetChildrenOp,
                  GetDataOp, MultiOp, Op, PingOp, SetDataOp, SyncOp,
                  WatchNotification, ZxidClientRequest)

__all__ = ["ZkClient"]

_DEFAULT_TIMEOUT_MS = 3000.0

#: ConnectionLoss retry backoff: first retry keeps the historical 50 ms,
#: then doubles (with jitter) up to the cap so clients bounced by the
#: same election don't hammer the new leader in lockstep.
_RETRY_BASE_MS = 50.0
_RETRY_CAP_MS = 800.0

#: Sentinel delivered to a pending call when its timer expires first.
_TIMED_OUT = object()

#: How often a call with no deadline (a blocking primitive) probes its
#: replica's liveness — the stand-in for TCP noticing a broken socket.
_BLOCK_PROBE_MS = 500.0


class ZkClient:
    """One client endpoint; owns a session once :meth:`connect` completes."""

    def __init__(self, env: Environment, net: Network, node_id: str,
                 replicas: List[str], replica: Optional[str] = None,
                 session_timeout_ms: float = 2000.0,
                 track_zxid: bool = False):
        self.env = env
        self.net = net
        self.node_id = node_id
        self.replicas = list(replicas)
        self.replica = replica or self.replicas[0]
        self.session_timeout_ms = session_timeout_ms
        self.session_id: Optional[int] = None

        #: Session consistency (pair with ZkConfig.local_reads): stamp
        #: requests with the highest zxid this session has seen, so a
        #: lagging replica parks our reads instead of serving stale state.
        self.track_zxid = track_zxid
        self.last_zxid = 0
        # String-seeded so backoff jitter is deterministic per client
        # across processes (hash() of a str is salted per interpreter).
        self._retry_rng = random.Random(f"zkclient-backoff-{node_id}")

        self._xid = 0
        self._pending: Dict[int, Event] = {}
        self._event_waiters: Dict[str, List[Event]] = {}
        self.watch_callbacks: List[Callable[[WatchNotification], None]] = []
        self._closed = False
        net.register(node_id, self._on_message)

    # -- identity ----------------------------------------------------------

    @property
    def client_id(self) -> str:
        """The paper's 'client id': stringified session id."""
        if self.session_id is None:
            raise RuntimeError("client id unknown before connect()")
        return str(self.session_id)

    # -- inbox -------------------------------------------------------------

    def _on_message(self, src: str, msg: object) -> None:
        if isinstance(msg, ClientReply):
            # .zxid resolves to the class attribute (0) on plain replies,
            # avoiding a getattr-with-default miss per reply.
            zxid = msg.zxid
            if zxid > self.last_zxid:
                self.last_zxid = zxid
            future = self._pending.pop(msg.xid, None)
            if future is not None and not future.triggered:
                future.succeed(msg)
        elif isinstance(msg, WatchNotification):
            self._observe_zxid(msg.zxid)
            self._dispatch_watch(msg)

    def _observe_zxid(self, zxid: int) -> None:
        """Raise the session's last-seen zxid (replies and watch pushes)."""
        if zxid > self.last_zxid:
            self.last_zxid = zxid

    def _dispatch_watch(self, notification: WatchNotification) -> None:
        waiters = self._event_waiters.pop(notification.path, [])
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed(notification)
        for callback in list(self.watch_callbacks):
            callback(notification)

    # -- RPC core ----------------------------------------------------------

    def _expire(self, xid: int, future: Event) -> None:
        """Deliver the timeout sentinel if the call is still outstanding.

        The ``triggered`` check also protects retries that reuse the
        xid: a stale timer holds the *old* future and must not pop the
        replacement from ``_pending``.
        """
        if not future.triggered:
            self._pending.pop(xid, None)
            future.succeed(_TIMED_OUT)

    def _call(self, op: Op, timeout_ms: Optional[float] = _DEFAULT_TIMEOUT_MS):
        """Issue one request; retries on another replica after a timeout."""
        if self._closed:
            raise ConnectionLossError("client closed")
        self._xid += 1
        xid = self._xid
        session = self.session_id or 0
        attempts = 0
        loss_retries = 0
        while True:
            attempts += 1
            future = self.env.event()
            self._pending[xid] = future
            if self.track_zxid:
                request = ZxidClientRequest(session, xid, op,
                                            last_zxid=self.last_zxid)
            else:
                request = ClientRequest(session, xid, op)
            self.net.send(self.node_id, self.replica, request)
            if timeout_ms is not None:
                # Deadline as a deferred callback: one slotted Callback
                # instead of a Timeout event plus an AnyOf condition per
                # RPC (this is the client library's hottest line).
                self.env.defer(timeout_ms, self._expire, xid, future)
                reply = yield future
            else:
                reply = yield from self._await_blocking(xid, future, request)
            if reply is _TIMED_OUT:
                # Timed out: assume the replica is gone and fail over.
                if attempts >= 2 * len(self.replicas) + 1:
                    raise ConnectionLossError(
                        f"no replica answered after {attempts} attempts")
                self._failover()
                continue
            if not reply.ok:
                if reply.error_code == ConnectionLossError.code:
                    # Replica lost its leader: exponential backoff with
                    # jitter so retry storms don't synchronize during an
                    # election. The first retry keeps the fixed 50 ms
                    # delay; only later (rarer) retries draw jitter.
                    delay = min(_RETRY_CAP_MS,
                                _RETRY_BASE_MS * (2 ** loss_retries))
                    if loss_retries > 0:
                        delay *= 0.5 + self._retry_rng.random()
                    loss_retries += 1
                    yield self.env.timeout(delay)
                    if attempts >= 2 * len(self.replicas) + 1:
                        raise from_code(reply.error_code, reply.error_message)
                    continue
                raise from_code(reply.error_code, reply.error_message)
            return reply.value

    def _await_blocking(self, xid: int, future: Event, request) -> object:
        """Wait on a no-deadline (blocking) call, watching the connection.

        Blocking primitives may legitimately wait forever, so they carry
        no per-call timer — but a request lost to a crashed replica or a
        partition would hold the client hostage. Real clients notice the
        broken TCP connection; here the stand-ins are a periodic
        liveness probe of the connected replica (its death is reported
        as a timeout so the caller's retry loop fails over) and a slow
        retransmit of the same request — same xid, so the leader's
        at-most-once guard absorbs the duplicate when the original did
        get through, and re-executed reads are idempotent.
        """
        probes = 0
        while True:
            probe = self.env.timeout(_BLOCK_PROBE_MS)
            yield self.env.any_of([future, probe])
            if future.triggered:
                return future.value
            if self.net.is_crashed(self.replica):
                self._pending.pop(xid, None)
                return _TIMED_OUT
            probes += 1
            if probes % 2 == 0:
                self.net.send(self.node_id, self.replica, request)

    def _failover(self) -> None:
        index = self.replicas.index(self.replica)
        self.replica = self.replicas[(index + 1) % len(self.replicas)]

    # -- session lifecycle -------------------------------------------------

    def connect(self, client_label: str = ""):
        """Establish a session; starts the keep-alive ping loop."""
        session_id = yield from self._call(
            CreateSessionOp(self.session_timeout_ms,
                            client_label or self.node_id))
        self.session_id = session_id
        self.env.process(self._ping_loop())
        return session_id

    def close(self):
        """Close the session (server reaps ephemerals)."""
        try:
            yield from self._call(CloseSessionOp())
        finally:
            self._closed = True
        return True

    def kill(self) -> None:
        """Abrupt client death (no session close) for failure-injection tests."""
        self._closed = True
        self.net.crash(self.node_id)

    def _ping_loop(self):
        interval = self.session_timeout_ms / 3.0
        while not self._closed:
            self._xid += 1
            # Fire-and-forget: the reply (if any) finds no pending future.
            self.net.send(self.node_id, self.replica,
                          ClientRequest(self.session_id or 0, self._xid,
                                        PingOp()))
            yield self.env.timeout(interval)

    # -- ZooKeeper API -------------------------------------------------------

    def create(self, path: str, data: bytes = b"", ephemeral: bool = False,
               sequential: bool = False):
        """Create a znode; returns the actual (suffix-resolved) path."""
        value = yield from self._call(
            CreateOp(path, data, ephemeral, sequential))
        return value

    def delete(self, path: str, version: int = -1):
        """Delete a znode (conditional when ``version`` >= 0)."""
        yield from self._call(DeleteOp(path, version))
        return True

    def set_data(self, path: str, data: bytes, version: int = -1):
        """Overwrite znode data; returns the new Stat."""
        value = yield from self._call(SetDataOp(path, data, version))
        return value

    def get_data(self, path: str, watch: bool = False):
        """Read znode data; returns (data, Stat)."""
        value = yield from self._call(GetDataOp(path, watch))
        return value

    def get_children(self, path: str, watch: bool = False):
        """List child names (sorted)."""
        value = yield from self._call(GetChildrenOp(path, watch))
        return value

    def exists(self, path: str, watch: bool = False):
        """Stat if the node exists, else None (optionally arming a watch)."""
        value = yield from self._call(ExistsOp(path, watch))
        return value

    def multi(self, ops: List[Op]):
        """Atomic batch of update operations."""
        value = yield from self._call(MultiOp(list(ops)))
        return value

    def sync(self):
        """Flush to the leader; returns its committed zxid (no txn).

        For a zxid-tracking client the reply raises ``last_zxid`` to the
        leader's commit point, so the *next* local read observes every
        write that committed before the sync — ZooKeeper's recipe for a
        linearizable read (``sync(); read()``).
        """
        value = yield from self._call(SyncOp())
        return value

    # -- blocking / notification helpers --------------------------------------

    def wait_for_event(self, path: str) -> Event:
        """Future resolved by the next watch notification for ``path``."""
        waiter = self.env.event()
        self._event_waiters.setdefault(path, []).append(waiter)
        return waiter

    def discard_waiter(self, path: str, waiter: Event) -> None:
        waiters = self._event_waiters.get(path)
        if waiters and waiter in waiters:
            waiters.remove(waiter)
            if not waiters:
                del self._event_waiters[path]

    def await_notification(self, path: str, waiter: Event,
                           repoll_ms: float = 2 * _BLOCK_PROBE_MS):
        """Wait for ``waiter`` with a slow re-poll safety net.

        A watch notification raised while this client's replica was
        crashed or cut off is lost for good, so waiting on the watch
        alone can hang forever. Returns the notification when it
        arrives; returns None after ``repoll_ms`` so the caller can
        re-check state and re-arm (real clients get the same effect by
        re-registering watches on reconnect).
        """
        probe = self.env.timeout(repoll_ms)
        yield self.env.any_of([waiter, probe])
        if waiter.triggered:
            return waiter.value
        return None

    def block(self, path: str):
        """Wait until ``path`` exists (Table 2's ``block`` primitive).

        Traditional path: exists-with-watch, then wait for the creation
        notification. When an operation extension consumes the exists
        call, the server defers the reply instead (same client code).
        """
        while True:
            waiter = self.wait_for_event(path)
            result = yield from self._call(ExistsOp(path, watch=True),
                                           timeout_ms=None)
            if result is not None:
                # Either the node already exists (Stat) or an extension
                # unblocked us directly (('unblocked', path) payload).
                self.discard_waiter(path, waiter)
                return result
            notification = yield from self.await_notification(path, waiter)
            self.discard_waiter(path, waiter)
            if notification is not None:
                return notification
            # Lost-notification suspicion: loop to re-check and re-arm.
