"""ZooKeeper client library for simulated clients.

All calls are generator-based: recipe code runs inside a simulation
process and writes ``value = yield from client.get_data(path)`` — the
same shape as the paper's blocking pseudocode.

The library handles session establishment, request/reply matching,
timeouts with fail-over to another replica, watch-event dispatch, and
keep-alive pings.

Clients built with ``resilient=True`` additionally run a session
lifecycle state machine (CONNECTING → CONNECTED → SUSPENDED →
EXPIRED/CLOSED): on connection loss they fail over with the shared
:mod:`repro.core.retry` backoff, re-establish the session at another
replica carrying the last-seen zxid, and *re-register their armed
watches* — comparing the server's state against what was known when
each watch was armed, and synthesizing the notification for any event
that fired while the client was cut off. That replaces the lossy
re-poll hack in :meth:`ZkClient.await_notification` on the reconnect
path: a resilient client can wait on a watch indefinitely without
losing events to a crashed replica. Off by default — default-path
traffic and RNG draws are byte-identical to the non-resilient client.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple

from ..core.retry import ZK_RETRY_POLICY, RetryPolicy
from ..sim import Environment, Event, Network
from .data_tree import Stat
from .errors import ConnectionLossError, SessionExpiredError, from_code
from .leases import (CACHE_MISS, ClientReadCache, LeaseClientRequest,
                     LeasedReply, LeaseRelease, LeaseRevoke, LeaseRevokeAck)
from .txn import (ClientReply, ClientRequest, CloseSessionOp, CreateOp,
                  CreateSessionOp, DeleteOp, ExistsOp, GetChildrenOp,
                  GetDataOp, MultiOp, Op, PingOp, SetDataOp, SyncOp,
                  WatchNotification, ZxidClientRequest,
                  ZxidWatchNotification)
from .watches import EventType

__all__ = ["ZkClient", "SessionState"]

_DEFAULT_TIMEOUT_MS = 3000.0

#: Sentinel delivered to a pending call when its timer expires first.
_TIMED_OUT = object()

#: How often a call with no deadline (a blocking primitive) probes its
#: replica's liveness — the stand-in for TCP noticing a broken socket.
_BLOCK_PROBE_MS = 500.0

#: Per-attempt deadline for session re-establishment probes: short, so
#: a reconnecting client walks the replica list quickly.
_REARM_TIMEOUT_MS = 1000.0


class SessionState(str, enum.Enum):
    """Client-side session lifecycle (ZooKeeper's state machine)."""

    CONNECTING = "CONNECTING"   # no session yet (or re-connecting it)
    CONNECTED = "CONNECTED"     # session live, replica answering
    SUSPENDED = "SUSPENDED"     # replica unreachable; session may survive
    EXPIRED = "EXPIRED"         # server fenced us; session is gone
    CLOSED = "CLOSED"           # client closed (or was killed) locally


class ZkClient:
    """One client endpoint; owns a session once :meth:`connect` completes."""

    def __init__(self, env: Environment, net: Network, node_id: str,
                 replicas: List[str], replica: Optional[str] = None,
                 session_timeout_ms: float = 2000.0,
                 track_zxid: bool = False, resilient: bool = False,
                 retry: Optional[RetryPolicy] = None,
                 cached_reads: bool = False):
        self.env = env
        self.net = net
        self.node_id = node_id
        self.replicas = list(replicas)
        self.replica = replica or self.replicas[0]
        self.session_timeout_ms = session_timeout_ms
        self.session_id: Optional[int] = None

        #: Session consistency (pair with ZkConfig.local_reads): stamp
        #: requests with the highest zxid this session has seen, so a
        #: lagging replica parks our reads instead of serving stale state.
        self.track_zxid = track_zxid
        self.last_zxid = 0
        self.retry = retry or ZK_RETRY_POLICY
        # String-seeded so backoff jitter is deterministic per client
        # across processes (hash() of a str is salted per interpreter).
        self._backoff = self.retry.start(f"zkclient-backoff-{node_id}")

        #: Session-resilience machinery (all inert unless ``resilient``).
        self.resilient = resilient
        self.state = SessionState.CONNECTING
        self.session_listeners: List[Callable[[SessionState], None]] = []
        #: armed-watch bookkeeping for reconnect re-registration:
        #: ("data", path) -> (existed, mzxid) / ("child", path) -> names.
        self._watch_meta: Dict[Tuple[str, str], tuple] = {}
        self._reconnecting = False
        self._abandoned = False
        self._ping_xids: set = set()
        self._last_pong = 0.0

        #: Lease-protected read cache (pair with ``ZkConfig.leases``):
        #: hot-key ``get_data``/``exists`` answers are kept locally under
        #: a leader-granted lease and served at 0 RTT until the lease
        #: expires, is revoked, or any session hiccup flushes the cache.
        self.cached_reads = cached_reads
        self._cache: Optional[ClientReadCache] = (
            ClientReadCache() if cached_reads else None)

        self._xid = 0
        self._pending: Dict[int, Event] = {}
        self._event_waiters: Dict[str, List[Event]] = {}
        self.watch_callbacks: List[Callable[[WatchNotification], None]] = []
        self._closed = False
        net.register(node_id, self._on_message)

    # -- identity ----------------------------------------------------------

    @property
    def client_id(self) -> str:
        """The paper's 'client id': stringified session id."""
        if self.session_id is None:
            raise RuntimeError("client id unknown before connect()")
        return str(self.session_id)

    # -- inbox -------------------------------------------------------------

    def _on_message(self, src: str, msg: object) -> None:
        if isinstance(msg, ClientReply):
            # .zxid resolves to the class attribute (0) on plain replies,
            # avoiding a getattr-with-default miss per reply.
            zxid = msg.zxid
            if zxid > self.last_zxid:
                self.last_zxid = zxid
            if self._ping_xids and msg.xid in self._ping_xids:
                # Tracked keep-alive (resilient clients): the pong is a
                # liveness signal, and a fenced pong is how a client
                # with no outstanding calls learns its session expired.
                self._ping_xids.discard(msg.xid)
                if msg.ok:
                    self._last_pong = self.env.now
                elif msg.error_code == SessionExpiredError.code:
                    self._set_state(SessionState.EXPIRED)
                return
            future = self._pending.pop(msg.xid, None)
            if future is not None and not future.triggered:
                future.succeed(msg)
        elif isinstance(msg, WatchNotification):
            self._observe_zxid(msg.zxid)
            if self._cache is not None:
                # Watch-invalidation: the pushed change supersedes
                # whatever this client cached for the path.
                self._cache.drop(msg.path)
            if self._watch_meta:
                # The server-side watch is one-shot: it is no longer
                # armed, so drop it from the reconnect re-arm set.
                kind = ("child" if msg.event_type ==
                        EventType.NODE_CHILDREN_CHANGED.value else "data")
                self._watch_meta.pop((kind, msg.path), None)
            self._dispatch_watch(msg)
        elif isinstance(msg, LeaseRevoke):
            if self._cache is not None:
                self._cache.revoke(msg.path, msg.lease_id)
            # Always ack — a writer is blocked on it; an ack for a lease
            # this client never installed (revoke won the race with the
            # grant) is how the leader learns the path is clear.
            self.net.send(self.node_id, src, LeaseRevokeAck(
                self.session_id or 0, msg.path, msg.lease_id))

    def _observe_zxid(self, zxid: int) -> None:
        """Raise the session's last-seen zxid (replies and watch pushes)."""
        if zxid > self.last_zxid:
            self.last_zxid = zxid

    def _dispatch_watch(self, notification: WatchNotification) -> None:
        waiters = self._event_waiters.pop(notification.path, [])
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed(notification)
        for callback in list(self.watch_callbacks):
            callback(notification)

    # -- RPC core ----------------------------------------------------------

    def _expire(self, xid: int, future: Event) -> None:
        """Deliver the timeout sentinel if the call is still outstanding.

        The ``triggered`` check also protects retries that reuse the
        xid: a stale timer holds the *old* future and must not pop the
        replacement from ``_pending``.
        """
        if not future.triggered:
            self._pending.pop(xid, None)
            future.succeed(_TIMED_OUT)

    def _call(self, op: Op, timeout_ms: Optional[float] = _DEFAULT_TIMEOUT_MS):
        """Issue one request; retries on another replica after a timeout."""
        if self._closed:
            raise ConnectionLossError("client closed")
        if self.resilient and self.state is SessionState.EXPIRED \
                and not isinstance(op, CloseSessionOp):
            raise SessionExpiredError("session expired")
        self._xid += 1
        xid = self._xid
        session = self.session_id or 0
        attempts = 0
        loss_retries = 0
        obs = self.env.obs
        tracer = obs.tracer if obs is not None else None
        sent_at = self.env.now
        if tracer is not None:
            tracer.begin(self.node_id, xid, type(op).__name__, sent_at)
        while True:
            attempts += 1
            if attempts > 1:
                if tracer is not None:
                    tracer.retry(self.node_id, xid, self.env.now)
                if obs is not None:
                    obs.metrics.inc("client.retries")
            future = self.env.event()
            self._pending[xid] = future
            if (self._cache is not None
                    and isinstance(op, (GetDataOp, ExistsOp))
                    and not op.watch):
                # Cacheable read: the marker envelope invites the server
                # to piggyback a lease grant on the reply.
                request: ClientRequest = LeaseClientRequest(
                    session, xid, op, last_zxid=self.last_zxid)
            elif self.track_zxid:
                request = ZxidClientRequest(session, xid, op,
                                            last_zxid=self.last_zxid)
            else:
                request = ClientRequest(session, xid, op)
            self.net.send(self.node_id, self.replica, request)
            if timeout_ms is not None:
                # Deadline as a deferred callback: one slotted Callback
                # instead of a Timeout event plus an AnyOf condition per
                # RPC (this is the client library's hottest line).
                self.env.defer(timeout_ms, self._expire, xid, future)
                reply = yield future
            else:
                reply = yield from self._await_blocking(xid, future, request)
            if reply is _TIMED_OUT:
                # Timed out: assume the replica is gone and fail over.
                if attempts >= 2 * len(self.replicas) + 1:
                    if tracer is not None:
                        tracer.finish(self.node_id, xid, self.env.now, False)
                    raise ConnectionLossError(
                        f"no replica answered after {attempts} attempts")
                self._failover()
                if self.resilient and self.session_id is not None \
                        and not self._reconnecting:
                    # Re-establish at the new replica before retrying:
                    # re-arms our watches there and synthesizes any
                    # event that fired while the old replica was gone.
                    try:
                        yield from self._reestablish()
                    except ConnectionLossError:
                        pass    # keep walking the replica list below
                continue
            if not reply.ok:
                if reply.error_code == ConnectionLossError.code:
                    # Replica lost its leader: exponential backoff with
                    # jitter so retry storms don't synchronize during an
                    # election. The first retry keeps the fixed 50 ms
                    # delay; only later (rarer) retries draw jitter.
                    if self.resilient:
                        self._set_state(SessionState.SUSPENDED)
                    delay = self._backoff.delay(loss_retries)
                    loss_retries += 1
                    yield self.env.timeout(delay)
                    if attempts >= 2 * len(self.replicas) + 1:
                        if tracer is not None:
                            tracer.finish(self.node_id, xid, self.env.now,
                                          False)
                        raise from_code(reply.error_code, reply.error_message)
                    continue
                if reply.error_code == SessionExpiredError.code:
                    self._set_state(SessionState.EXPIRED)
                if tracer is not None:
                    tracer.finish(self.node_id, xid, self.env.now, False)
                raise from_code(reply.error_code, reply.error_message)
            if self.resilient:
                if self.state is SessionState.SUSPENDED:
                    self._set_state(SessionState.CONNECTED)
                self._note_watch(op, reply.value)
            if self._cache is not None:
                self._cache_note(op, reply)
            if obs is not None:
                if tracer is not None:
                    tracer.finish(self.node_id, xid, self.env.now, True)
                obs.metrics.observe("client.latency_ms", "",
                                    self.env.now - sent_at)
            return reply.value

    def _cache_note(self, op: Op, reply: ClientReply) -> None:
        """Maintain the read cache from a successful reply.

        Installs on a leased read reply; invalidates on this client's
        own writes (the lease protocol only fences *other* clients'
        cached copies — our own must drop immediately); flushes on a
        sync barrier, volunteering the lease ids back so blocked
        writers resume without waiting out the term.
        """
        cache = self._cache
        if isinstance(reply, LeasedReply):
            cache.install(op.path, reply.value, reply, self.env.now)
        elif isinstance(op, (SetDataOp, DeleteOp, CreateOp)):
            cache.drop(op.path)
        elif isinstance(op, MultiOp):
            for sub in op.ops:
                if isinstance(sub, (SetDataOp, DeleteOp, CreateOp)):
                    cache.drop(sub.path)
        elif isinstance(op, SyncOp):
            released = cache.drop_all()
            if released:
                self.net.send(self.node_id, self.replica,
                              LeaseRelease(self.session_id or 0,
                                           tuple(released)))

    def _await_blocking(self, xid: int, future: Event, request) -> object:
        """Wait on a no-deadline (blocking) call, watching the connection.

        Blocking primitives may legitimately wait forever, so they carry
        no per-call timer — but a request lost to a crashed replica or a
        partition would hold the client hostage. Real clients notice the
        broken TCP connection; here the stand-ins are a periodic
        liveness probe of the connected replica (its death is reported
        as a timeout so the caller's retry loop fails over) and a slow
        retransmit of the same request — same xid, so the leader's
        at-most-once guard absorbs the duplicate when the original did
        get through, and re-executed reads are idempotent.
        """
        probes = 0
        while True:
            probe = self.env.timeout(_BLOCK_PROBE_MS)
            yield self.env.any_of([future, probe])
            if future.triggered:
                return future.value
            if self.net.is_crashed(self.replica):
                self._pending.pop(xid, None)
                return _TIMED_OUT
            probes += 1
            if probes % 2 == 0:
                self.net.send(self.node_id, self.replica, request)

    def _failover(self) -> None:
        index = self.replicas.index(self.replica)
        self.replica = self.replicas[(index + 1) % len(self.replicas)]

    # -- session lifecycle -------------------------------------------------

    def _set_state(self, state: SessionState) -> None:
        if state is self.state:
            return
        self.state = state
        if self._cache is not None and state in (SessionState.SUSPENDED,
                                                 SessionState.EXPIRED,
                                                 SessionState.CLOSED):
            # Any session hiccup flushes the cache: a SUSPENDED client
            # may have missed revokes, and an EXPIRED one must never
            # serve another cached byte (the expiry-fencing contract).
            self._cache.drop_all()
        for listener in list(self.session_listeners):
            listener(state)

    def connect(self, client_label: str = ""):
        """Establish a session; starts the keep-alive ping loop."""
        self._set_state(SessionState.CONNECTING)
        session_id = yield from self._call(
            CreateSessionOp(self.session_timeout_ms,
                            client_label or self.node_id))
        self.session_id = session_id
        self._last_pong = self.env.now
        self._set_state(SessionState.CONNECTED)
        self.env.process(self._ping_loop())
        return session_id

    def close(self):
        """Close the session (server reaps ephemerals).

        Tolerates ``SESSION_EXPIRED``: if the leader expired the session
        before the close arrived (or a retried close raced the first
        copy), the server already reaped everything this close would —
        the session is just as gone either way.
        """
        try:
            yield from self._call(CloseSessionOp())
        except SessionExpiredError:
            pass
        finally:
            self._closed = True
            if self.state is not SessionState.EXPIRED:
                self._set_state(SessionState.CLOSED)
        return True

    def kill(self) -> None:
        """Abrupt client death (no session close) for failure-injection tests."""
        self._closed = True
        self._set_state(SessionState.CLOSED)
        self.net.crash(self.node_id)

    def abandon(self) -> None:
        """Stop keep-alive pings while leaving the client usable.

        Models a client whose liveness signal is gone (stalled process,
        dead NAT entry) but whose in-flight requests may still arrive:
        the leader will expire the session and reap its ephemerals, and
        any later call from this client must be *fenced* with
        ``SESSION_EXPIRED`` — never silently applied.
        """
        self._abandoned = True

    def _ping_loop(self):
        interval = self.session_timeout_ms / 3.0
        if not self.resilient:
            while not self._closed and not self._abandoned:
                # Keep-alives must survive the connected replica's death
                # even without the resilient state machine: with expiry
                # fencing on, a session silently starved of pings would
                # be fenced out from under a client that is merely
                # mid-failover on its request path.
                if self.net.is_crashed(self.replica):
                    self._failover()
                self._xid += 1
                # Fire-and-forget: the reply (if any) finds no pending
                # future.
                self.net.send(self.node_id, self.replica,
                              ClientRequest(self.session_id or 0, self._xid,
                                            PingOp()))
                yield self.env.timeout(interval)
            return
        while (not self._closed and not self._abandoned
                and self.state is not SessionState.EXPIRED):
            self._xid += 1
            xid = self._xid
            # Tracked ping: the pong timestamps replica liveness, so a
            # client parked on a watch (no outstanding request whose
            # timeout would notice) still detects its replica's death
            # and reconnects. The set is pruned so lost pings can't
            # grow it without bound.
            self._ping_xids.add(xid)
            if len(self._ping_xids) > 8:
                self._ping_xids = {x for x in self._ping_xids if x > xid - 64}
            self.net.send(self.node_id, self.replica,
                          ClientRequest(self.session_id or 0, xid, PingOp()))
            yield self.env.timeout(interval)
            if self._closed or self._abandoned:
                return
            if (self.env.now - self._last_pong > 2.0 * interval
                    and not self._reconnecting):
                self._failover()
                try:
                    yield from self._reestablish()
                except ConnectionLossError:
                    continue    # all replicas dark; retry next interval
                except SessionExpiredError:
                    return

    # -- session re-establishment (resilient clients) ----------------------

    def _reestablish(self):
        """Re-bind the session to the current replica after a suspicion.

        Walks the replica list with the shared backoff until one
        answers, re-arming every watch this client had armed and
        synthesizing notifications for events missed while cut off.
        Raises ``SessionExpiredError`` if a server fences us (the
        session is gone — EXPIRED is terminal), or
        ``ConnectionLossError`` when no replica answers.
        """
        if self._reconnecting or self.session_id is None or self._closed:
            return
        self._reconnecting = True
        self._set_state(SessionState.SUSPENDED)
        try:
            hops = 0
            while True:
                ok = yield from self._rearm_watches()
                if ok:
                    break
                hops += 1
                if hops > 2 * len(self.replicas):
                    raise ConnectionLossError(
                        "session re-establishment: no replica reachable")
                yield self.env.timeout(self._backoff.delay(hops - 1))
                self._failover()
            self._last_pong = self.env.now
            self._set_state(SessionState.CONNECTED)
        finally:
            self._reconnecting = False

    def _rearm_watches(self):
        """One watch re-registration pass at the current replica.

        Returns False when the replica did not answer (caller fails
        over). For every watch armed before the disconnect, re-issues
        the arming read and compares the server's state against what
        was known at arm time — existence and mzxid for data watches,
        the child-name set for child watches. Any difference means the
        one-shot notification fired while we were cut off, so the
        equivalent event is synthesized locally; otherwise the watch is
        re-armed server-side with refreshed knowledge.
        """
        for (kind, path), known in sorted(self._watch_meta.items()):
            if kind == "data":
                op: Op = ExistsOp(path, watch=True)
            else:
                op = GetChildrenOp(path, watch=True)
            reply = yield from self._probe(op)
            if reply is _TIMED_OUT:
                return False
            if not reply.ok:
                if reply.error_code == SessionExpiredError.code:
                    self._set_state(SessionState.EXPIRED)
                    raise from_code(reply.error_code, reply.error_message)
                if reply.error_code == ConnectionLossError.code:
                    return False
                if kind == "child":
                    # Parent deleted in the gap: its membership changed.
                    self._watch_meta.pop((kind, path), None)
                    self._synthesize(EventType.NODE_CHILDREN_CHANGED, path,
                                     reply.zxid)
                continue
            self._compare_rearmed(kind, path, known, reply)
        if self._watch_meta:
            return True
        # No watches to re-arm: a ping round-trip both confirms the
        # replica answers and re-points our session's notification
        # routing at it (fenced pong => the session is gone).
        reply = yield from self._probe(PingOp())
        if reply is _TIMED_OUT:
            return False
        if not reply.ok:
            if reply.error_code == SessionExpiredError.code:
                self._set_state(SessionState.EXPIRED)
                raise from_code(reply.error_code, reply.error_message)
            return False
        return True

    def _probe(self, op: Op, timeout_ms: float = _REARM_TIMEOUT_MS):
        """One single-attempt raw RPC to the current replica (no retry)."""
        self._xid += 1
        xid = self._xid
        future = self.env.event()
        self._pending[xid] = future
        session = self.session_id or 0
        if self.track_zxid:
            request = ZxidClientRequest(session, xid, op,
                                        last_zxid=self.last_zxid)
        else:
            request = ClientRequest(session, xid, op)
        self.net.send(self.node_id, self.replica, request)
        self.env.defer(timeout_ms, self._expire, xid, future)
        reply = yield future
        return reply

    def _compare_rearmed(self, kind: str, path: str, known: tuple,
                         reply) -> None:
        """Diff the re-armed read against arm-time knowledge."""
        value = reply.value
        if kind == "data":
            existed, mzxid = known
            if value is None:
                if existed:
                    self._watch_meta.pop((kind, path), None)
                    self._synthesize(EventType.NODE_DELETED, path,
                                     reply.zxid)
                else:
                    self._watch_meta[(kind, path)] = (False, 0)
            elif isinstance(value, Stat):
                if not existed:
                    self._watch_meta.pop((kind, path), None)
                    self._synthesize(EventType.NODE_CREATED, path,
                                     reply.zxid)
                elif value.mzxid > mzxid:
                    self._watch_meta.pop((kind, path), None)
                    self._synthesize(EventType.NODE_DATA_CHANGED, path,
                                     reply.zxid)
                else:
                    self._watch_meta[(kind, path)] = (True, value.mzxid)
            else:
                # An operation extension consumed the re-arm (e.g. an
                # ('unblocked', path) payload): no server-side watch was
                # armed, and the path the client was waiting on exists.
                self._watch_meta.pop((kind, path), None)
                if not existed:
                    self._synthesize(EventType.NODE_CREATED, path,
                                     reply.zxid)
        else:
            if not isinstance(value, (list, tuple)):
                self._watch_meta.pop((kind, path), None)
                return
            names = tuple(value)
            if names != known:
                self._watch_meta.pop((kind, path), None)
                self._synthesize(EventType.NODE_CHILDREN_CHANGED, path,
                                 reply.zxid)
            else:
                self._watch_meta[(kind, path)] = names

    def _synthesize(self, event_type: EventType, path: str,
                    zxid: int) -> None:
        """Deliver a locally-manufactured notification for a missed event."""
        self._observe_zxid(zxid)
        session = self.session_id or 0
        if zxid:
            note: WatchNotification = ZxidWatchNotification(
                session, event_type.value, path, zxid=zxid)
        else:
            note = WatchNotification(session, event_type.value, path)
        self._dispatch_watch(note)

    def _note_watch(self, op: Op, value) -> None:
        """Record arm-time knowledge for a read that set a watch.

        Values that are not plain read results (an operation extension
        consumed the call) are skipped: no server-side watch was armed.
        """
        if isinstance(op, ExistsOp) and op.watch:
            if value is None:
                self._watch_meta[("data", op.path)] = (False, 0)
            elif isinstance(value, Stat):
                self._watch_meta[("data", op.path)] = (True, value.mzxid)
        elif isinstance(op, GetDataOp) and op.watch:
            if (isinstance(value, tuple) and len(value) == 2
                    and isinstance(value[1], Stat)):
                self._watch_meta[("data", op.path)] = (True, value[1].mzxid)
        elif isinstance(op, GetChildrenOp) and op.watch:
            if isinstance(value, (list, tuple)):
                self._watch_meta[("child", op.path)] = tuple(value)

    # -- ZooKeeper API -------------------------------------------------------

    def create(self, path: str, data: bytes = b"", ephemeral: bool = False,
               sequential: bool = False):
        """Create a znode; returns the actual (suffix-resolved) path."""
        value = yield from self._call(
            CreateOp(path, data, ephemeral, sequential))
        return value

    def delete(self, path: str, version: int = -1):
        """Delete a znode (conditional when ``version`` >= 0)."""
        yield from self._call(DeleteOp(path, version))
        return True

    def set_data(self, path: str, data: bytes, version: int = -1):
        """Overwrite znode data; returns the new Stat."""
        value = yield from self._call(SetDataOp(path, data, version))
        return value

    def get_data(self, path: str, watch: bool = False):
        """Read znode data; returns (data, Stat)."""
        if self._cache is not None and not watch:
            hit = self._cache.data(path, self.env.now)
            if hit is not CACHE_MISS:
                obs = self.env.obs
                if obs is not None:
                    obs.metrics.inc("client.cache_hits")
                # 0 RTT: a sliver of local CPU, no network.
                yield self.env.timeout(self._cache.hit_cost_ms)
                return hit
        value = yield from self._call(GetDataOp(path, watch))
        return value

    def get_children(self, path: str, watch: bool = False):
        """List child names (sorted)."""
        value = yield from self._call(GetChildrenOp(path, watch))
        return value

    def exists(self, path: str, watch: bool = False):
        """Stat if the node exists, else None (optionally arming a watch)."""
        if self._cache is not None and not watch:
            hit = self._cache.stat(path, self.env.now)
            if hit is not CACHE_MISS:
                obs = self.env.obs
                if obs is not None:
                    obs.metrics.inc("client.cache_hits")
                yield self.env.timeout(self._cache.hit_cost_ms)
                return hit
        value = yield from self._call(ExistsOp(path, watch))
        return value

    def multi(self, ops: List[Op]):
        """Atomic batch of update operations."""
        value = yield from self._call(MultiOp(list(ops)))
        return value

    def sync(self):
        """Flush to the leader; returns its committed zxid (no txn).

        For a zxid-tracking client the reply raises ``last_zxid`` to the
        leader's commit point, so the *next* local read observes every
        write that committed before the sync — ZooKeeper's recipe for a
        linearizable read (``sync(); read()``).
        """
        value = yield from self._call(SyncOp())
        return value

    # -- blocking / notification helpers --------------------------------------

    def wait_for_event(self, path: str) -> Event:
        """Future resolved by the next watch notification for ``path``."""
        waiter = self.env.event()
        self._event_waiters.setdefault(path, []).append(waiter)
        return waiter

    def discard_waiter(self, path: str, waiter: Event) -> None:
        waiters = self._event_waiters.get(path)
        if waiters and waiter in waiters:
            waiters.remove(waiter)
            if not waiters:
                del self._event_waiters[path]

    def await_notification(self, path: str, waiter: Event,
                           repoll_ms: float = 2 * _BLOCK_PROBE_MS,
                           deadline: Optional[Event] = None):
        """Wait for ``waiter``; how depends on the client's resilience.

        ``deadline`` (resilient path only) bounds the wait: when that
        event fires first, None is returned — the watch stays armed
        server-side, so callers must tolerate a later notification.

        Non-resilient path — the historical re-poll safety net: a watch
        notification raised while this client's replica was crashed or
        cut off is lost for good, so waiting on the watch alone could
        hang forever. Returns the notification when it arrives; returns
        None after ``repoll_ms`` so the caller can re-check state and
        re-arm.

        Resilient path — no re-poll: reconnect re-arms the watch set
        and synthesizes missed events, so the watch alone is safe to
        wait on. The periodic probe only checks replica health (a
        crashed replica can't push notifications) and triggers
        re-establishment; None is returned only if the session expires
        or the client closes mid-wait.
        """
        if not self.resilient:
            probe = self.env.timeout(repoll_ms)
            yield self.env.any_of([waiter, probe])
            if waiter.triggered:
                return waiter.value
            return None
        while True:
            probe = self.env.timeout(_BLOCK_PROBE_MS)
            events = [waiter, probe]
            if deadline is not None:
                events.append(deadline)
            yield self.env.any_of(events)
            if waiter.triggered:
                return waiter.value
            if deadline is not None and deadline.triggered:
                return None
            if self.state is SessionState.EXPIRED or self._closed:
                return None
            if self.net.is_crashed(self.replica) and not self._reconnecting:
                self._failover()
                try:
                    yield from self._reestablish()
                except ConnectionLossError:
                    continue
                except SessionExpiredError:
                    return None

    def block(self, path: str):
        """Wait until ``path`` exists (Table 2's ``block`` primitive).

        Traditional path: exists-with-watch, then wait for the creation
        notification. When an operation extension consumes the exists
        call, the server defers the reply instead (same client code).
        """
        while True:
            waiter = self.wait_for_event(path)
            result = yield from self._call(ExistsOp(path, watch=True),
                                           timeout_ms=None)
            if result is not None:
                # Either the node already exists (Stat) or an extension
                # unblocked us directly (('unblocked', path) payload).
                self.discard_waiter(path, waiter)
                return result
            notification = yield from self.await_notification(path, waiter)
            self.discard_waiter(path, waiter)
            if notification is not None:
                return notification
            # Lost-notification suspicion: loop to re-check and re-arm.
