"""Zab-like primary-backup atomic broadcast.

A deliberately compact rendition of ZooKeeper's replication protocol
with the properties the paper's evaluation depends on:

* the **leader** turns updates into transactions, assigns them gapless
  zxids ``(epoch << 32) | counter``, and streams PROPOSALs to followers
  — singly by default, or batched into BatchProposals when the config
  enables leader-side batching (``batch_window_ms``/``batch_max_txns``);
* followers append in FIFO order and ACK (cumulatively for a batch);
  the leader commits an entry once a **majority** (itself included) has
  acked, delivers it locally, and broadcasts COMMIT — batches also
  piggyback the commit watermark, pipelining delivery at followers;
* committed entries are delivered **in zxid order, exactly once** at
  every live replica;
* on leader failure, followers elect the reachable replica with the
  highest ``(last_zxid, node_id)`` and the new leader syncs everyone with
  its log; an up-to-date follower resyncing over a SyncRequest receives
  only the log suffix after its last zxid;
* a replica recovering from a crash rejoins by asking the current leader
  for a sync;
* **observers** are non-voting learners (ZooKeeper's read-scaling
  replicas): they receive proposals, commits, heartbeats, and leader
  syncs like followers, but they never ack, never vote, and never count
  toward the commit or establishment quorum — adding observers widens
  read capacity without widening the write quorum.

Durable state (log + committed pointer) survives a simulated crash,
modelling an fsync'd transaction log.
"""

from __future__ import annotations

import operator
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional

from ..core.broadcast import (AtomicBroadcast, NotLeaderError, make_zxid,
                              zxid_counter, zxid_epoch)
from ..sim import Environment
from .txn import RequestMeta, Txn, TxnRecord

#: Key for bisecting a (zxid-sorted) log by zxid.
_record_zxid = operator.attrgetter("zxid")

# Zxid helpers and NotLeaderError live in repro.core.broadcast now (the
# kernel-neutral home); re-exported here for the historical import path.
__all__ = ["ZabConfig", "ZabPeer", "Role", "NotLeaderError", "make_zxid",
           "zxid_epoch", "zxid_counter"]


class Role(str, Enum):
    LEADER = "LEADER"
    FOLLOWER = "FOLLOWER"
    LOOKING = "LOOKING"


@dataclass
class ZabConfig:
    heartbeat_ms: float = 50.0
    election_timeout_ms: float = 200.0
    election_window_ms: float = 60.0
    #: Leader-side proposal batching. With ``batch_max_txns = 1`` (the
    #: default) every update is proposed on its own, exactly as before
    #: batching existed — same messages, same byte counts. Raising it
    #: lets the leader accumulate up to that many transactions (or wait
    #: at most ``batch_window_ms``) and ship them as one BatchProposal,
    #: which followers ack cumulatively.
    batch_window_ms: float = 0.0
    batch_max_txns: int = 1


# -- protocol messages --------------------------------------------------------

@dataclass
class Proposal:
    epoch: int
    record: TxnRecord


@dataclass
class BatchProposal:
    """Several consecutive proposals in one message (leader batching).

    ``committed_zxid`` piggybacks the leader's commit watermark so
    followers can deliver earlier entries without waiting for the next
    standalone Commit — the pipelining half of the batching change.
    """

    epoch: int
    records: List[TxnRecord]
    committed_zxid: int


@dataclass
class Ack:
    epoch: int
    zxid: int


@dataclass
class Commit:
    epoch: int
    zxid: int


@dataclass
class Heartbeat:
    epoch: int
    leader_id: str
    committed_zxid: int


@dataclass
class Vote:
    term: int
    last_zxid: int
    node_id: str


@dataclass
class CurrentLeader:
    epoch: int
    leader_id: str


@dataclass
class NewLeader:
    """Leader -> follower log sync.

    ``log`` holds the suffix strictly after ``prefix_zxid``; a prefix of
    0 means the full log. Sync replies to a follower whose claimed
    position exists in the leader's log ship only the missing suffix.
    """

    epoch: int
    log: List[TxnRecord]
    committed_zxid: int
    prefix_zxid: int = 0


@dataclass
class NewLeaderAck:
    epoch: int


@dataclass
class SyncRequest:
    last_zxid: int


class ZabPeer(AtomicBroadcast):
    """One replica's endpoint of the broadcast protocol."""

    def __init__(self, env: Environment, node_id: str, peer_ids: List[str],
                 send: Callable[[str, object], None],
                 deliver: Callable[[TxnRecord], None],
                 config: Optional[ZabConfig] = None,
                 observer_ids: Optional[List[str]] = None,
                 is_observer: bool = False,
                 send_many: Optional[
                     Callable[[List[str], object], None]] = None):
        self.env = env
        self.node_id = node_id
        #: voting members other than us (for an observer: all voters).
        self.peer_ids = [p for p in peer_ids if p != node_id]
        self.n = len(peer_ids)
        self.quorum = self.n // 2 + 1
        #: non-voting learners this peer streams to when leading.
        self.observer_ids = [o for o in (observer_ids or []) if o != node_id]
        self._observer_set = frozenset(self.observer_ids)
        self.is_observer = is_observer
        self._send = send
        self._send_many = send_many
        self._deliver = deliver
        self.config = config or ZabConfig()

        self.role = Role.LOOKING
        self.epoch = 0
        self.leader_id: Optional[str] = None
        self.log: List[TxnRecord] = []
        self.committed_zxid = 0
        self._delivered_upto = 0      # index into log, not zxid
        self._counter = 0

        # leader bookkeeping
        self._acked: Dict[str, int] = {}
        #: The values of ``_acked``, kept sorted ascending so the quorum
        #: watermark is one index lookup instead of a sort per ack.
        self._ack_values: List[int] = []
        self._establish_acks: set[str] = set()
        self._established = False
        #: Proposals appended to the log but not yet sent to followers.
        self._pending_batch: List[TxnRecord] = []
        self._flush_scheduled = False

        # election bookkeeping
        self._votes: Dict[str, tuple[int, str]] = {}
        self._term = 0
        self._election_pending = False
        self._last_leader_contact = env.now
        #: throttle for heartbeat-driven lag resyncs (see _on_heartbeat).
        self._last_lag_sync = -1.0
        #: True between joining a leader and receiving its NewLeader log
        #: reconciliation. Until then our log suffix is suspect — it may
        #: hold uncommitted proposals from a dead epoch — so delivery is
        #: frozen: advancing the commit pointer over such an entry would
        #: apply (and ack!) a transaction the cluster never committed,
        #: silently diverging this replica's tree.
        self._sync_pending = False
        self._alive = True
        self.on_role_change: Optional[Callable[[], None]] = None

    # -- introspection ---------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self._alive and self.role is Role.LEADER and self._established

    @property
    def leadership_epoch(self) -> int:
        return self.epoch

    @property
    def _learners(self) -> List[str]:
        """Everyone a leader streams to: voting followers + observers."""
        if not self.observer_ids:
            return self.peer_ids
        return self.peer_ids + self.observer_ids

    @property
    def last_zxid(self) -> int:
        return self.log[-1].zxid if self.log else 0

    def _fan_out(self, msg: object) -> None:
        """Send ``msg`` to every learner (voting followers + observers).

        Leader fan-out is the hottest send path in the system (one copy
        per learner per proposal/commit/heartbeat). When the transport
        provides a batched ``send_many`` the payload is sized once for
        the whole fan-out; destinations, ordering, and per-destination
        latency draws are identical to the sequential loop.
        """
        learners = self._learners
        if self._send_many is not None:
            self._send_many(learners, msg)
            return
        for peer in learners:
            self._send(peer, msg)

    # -- bootstrap ---------------------------------------------------------

    def bootstrap(self, leader_id: str, epoch: int = 1) -> None:
        """Establish an initial configuration without running an election."""
        self.epoch = epoch
        self._term = epoch
        self.leader_id = leader_id
        if leader_id == self.node_id:
            self.role = Role.LEADER
            self._established = True
            self._acked = {self.node_id: 0}
            self._ack_values = [0]
        else:
            self.role = Role.FOLLOWER
        self._last_leader_contact = self.env.now
        self.env.process(self._heartbeat_loop())
        self.env.process(self._failure_detector_loop())

    # -- crash / recovery --------------------------------------------------

    def crash(self) -> None:
        """Stop participating. Log and committed pointer persist (disk)."""
        self._alive = False
        self._pending_batch = []
        self._flush_scheduled = False

    def recover(self) -> None:
        """Come back up; rejoin by looking for the current leader."""
        self._alive = True
        self.role = Role.LOOKING
        self.leader_id = None
        self._established = False
        self._pending_batch = []
        self._flush_scheduled = False
        self._last_leader_contact = self.env.now
        # Our log may end in proposals that died with our old epoch
        # (e.g. we led, proposed, crashed before the quorum acked):
        # freeze delivery until a leader reconciles the log.
        self._sync_pending = True
        # Probe for a leader; if none answers, the failure detector will
        # eventually start an election.
        for peer in self.peer_ids:
            self._send(peer, SyncRequest(self.last_zxid))
        self.env.process(self._heartbeat_loop())
        self.env.process(self._failure_detector_loop())

    # -- client of the protocol -----------------------------------------------

    @property
    def next_zxid(self) -> int:
        """The zxid the next :meth:`propose` call will assign (leader only).

        Lets the server stamp speculative state with the real zxid
        before proposing: prep → propose runs in one event, so nothing
        can advance the counter in between.
        """
        return make_zxid(self.epoch, self._counter + 1)

    def propose(self, txn: Txn, meta: Optional[RequestMeta] = None) -> int:
        """Leader-only: append an update to the replicated log.

        The record is logged (and self-acked) immediately; whether it is
        shipped right away or rides a batch depends on the config. With
        the default ``batch_max_txns = 1`` this sends one Proposal per
        call, exactly like the pre-batching protocol.
        """
        if not self.is_leader:
            raise NotLeaderError(self.node_id)
        self._counter += 1
        zxid = make_zxid(self.epoch, self._counter)
        record = TxnRecord(zxid=zxid, txn=txn, meta=meta)
        self.log.append(record)
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("zab.proposals", self.node_id)
        self._ack_update(self.node_id, zxid)
        self._pending_batch.append(record)
        if (len(self._pending_batch) >= self.config.batch_max_txns
                or self.config.batch_window_ms <= 0.0):
            self._flush_batch()
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            self.env.defer(self.config.batch_window_ms, self._flush_timer)
        self._advance_commit()
        return zxid

    def _flush_timer(self) -> None:
        self._flush_scheduled = False
        if self._alive and self.role is Role.LEADER:
            self._flush_batch()

    def _flush_batch(self) -> None:
        batch = self._pending_batch
        if not batch:
            return
        self._pending_batch = []
        if len(batch) == 1:
            msg: object = Proposal(self.epoch, batch[0])
        else:
            msg = BatchProposal(self.epoch, batch, self.committed_zxid)
        self._fan_out(msg)

    # -- message dispatch ------------------------------------------------------

    def handle(self, src: str, msg: object) -> bool:
        """Process a protocol message; returns False if not a Zab message."""
        if not self._alive:
            return True
        if isinstance(msg, Proposal):
            self._on_proposal(src, msg)
        elif isinstance(msg, BatchProposal):
            self._on_batch_proposal(src, msg)
        elif isinstance(msg, Ack):
            self._on_ack(src, msg)
        elif isinstance(msg, Commit):
            self._on_commit(src, msg)
        elif isinstance(msg, Heartbeat):
            self._on_heartbeat(src, msg)
        elif isinstance(msg, Vote):
            self._on_vote(src, msg)
        elif isinstance(msg, CurrentLeader):
            self._on_current_leader(src, msg)
        elif isinstance(msg, NewLeader):
            self._on_new_leader(src, msg)
        elif isinstance(msg, NewLeaderAck):
            self._on_new_leader_ack(src, msg)
        elif isinstance(msg, SyncRequest):
            self._on_sync_request(src, msg)
        else:
            return False
        return True

    # -- replication ---------------------------------------------------------

    def _on_proposal(self, src: str, msg: Proposal) -> None:
        if msg.epoch < self.epoch or self.role is not Role.FOLLOWER:
            return
        if src != self.leader_id:
            return
        if self._sync_pending:
            # Unreconciled log suffix: appending (and acking!) on top of
            # it would bury a dead-epoch entry mid-log, where the sync's
            # last-zxid prefix check cannot see it. The pending
            # NewLeader reply carries these entries anyway.
            return
        # FIFO channels make proposals arrive in order within an epoch.
        if self.log and msg.record.zxid <= self.last_zxid:
            return  # duplicate
        zxid = msg.record.zxid
        if zxid_epoch(self.last_zxid) == zxid_epoch(zxid):
            expected = self.last_zxid + 1
        else:
            expected = make_zxid(zxid_epoch(zxid), 1)
        if zxid != expected:
            # We missed something (e.g. a healed partition): resync.
            self._send(src, SyncRequest(self.last_zxid))
            return
        self.log.append(msg.record)
        if not self.is_observer:
            self._send(src, Ack(self.epoch, msg.record.zxid))

    def _on_batch_proposal(self, src: str, msg: BatchProposal) -> None:
        if msg.epoch < self.epoch or self.role is not Role.FOLLOWER:
            return
        if src != self.leader_id:
            return
        if self._sync_pending:
            return  # see _on_proposal: no appends on an unreconciled log
        appended = False
        for record in msg.records:
            zxid = record.zxid
            last = self.last_zxid
            if self.log and zxid <= last:
                continue  # duplicate (e.g. resent after a resync)
            if zxid_epoch(last) == zxid_epoch(zxid):
                expected = last + 1
            else:
                expected = make_zxid(zxid_epoch(zxid), 1)
            if zxid != expected:
                # Gap: ack what we appended, then ask for a resync.
                self._send(src, SyncRequest(self.last_zxid))
                break
            self.log.append(record)
            appended = True
        if appended and not self.is_observer:
            # One cumulative ack for the whole appended run.
            self._send(src, Ack(self.epoch, self.last_zxid))
        # Piggybacked commit watermark (capped at what we actually hold).
        watermark = min(msg.committed_zxid, self.last_zxid)
        if watermark > self.committed_zxid:
            self.committed_zxid = watermark
            self._deliver_committed()

    def _on_ack(self, src: str, msg: Ack) -> None:
        if self.role is not Role.LEADER or msg.epoch != self.epoch:
            return
        if src in self._observer_set:
            return  # observers never count toward the commit quorum
        if self._ack_update(src, msg.zxid):
            self._advance_commit()

    def _ack_update(self, node: str, zxid: int) -> bool:
        """Record ``node`` has acked up to ``zxid``; True if it advanced."""
        previous = self._acked.get(node)
        if previous is not None:
            if zxid <= previous:
                return False
            del self._ack_values[bisect_left(self._ack_values, previous)]
        self._acked[node] = zxid
        insort(self._ack_values, zxid)
        return True

    def _advance_commit(self) -> None:
        if not self.is_leader:
            return
        values = self._ack_values
        if len(values) < self.quorum:
            return
        # The quorum watermark: the highest zxid acked by >= quorum nodes.
        candidate = values[len(values) - self.quorum]
        # Only commit entries from the current epoch directly (older entries
        # are committed transitively, as in Raft/Zab).
        if candidate <= self.committed_zxid:
            return
        if zxid_epoch(candidate) != self.epoch:
            return
        self.committed_zxid = candidate
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("zab.commits", self.node_id)
        self._deliver_committed()
        self._fan_out(Commit(self.epoch, candidate))

    def _on_commit(self, src: str, msg: Commit) -> None:
        if self.role is not Role.FOLLOWER or src != self.leader_id:
            return
        if msg.zxid > self.committed_zxid:
            self.committed_zxid = msg.zxid
            self._deliver_committed()

    def _deliver_committed(self) -> None:
        if self._sync_pending:
            return  # log suffix unreconciled; see _sync_pending above
        delivered = 0
        while (self._delivered_upto < len(self.log)
               and self.log[self._delivered_upto].zxid <= self.committed_zxid):
            record = self.log[self._delivered_upto]
            self._delivered_upto += 1
            delivered += 1
            self._deliver(record)
        if delivered:
            obs = self.env.obs
            if obs is not None:
                obs.metrics.inc("zab.deliveries", self.node_id, delivered)

    # -- liveness ----------------------------------------------------------

    def _heartbeat_loop(self):
        while self._alive:
            if self.is_leader:
                beat = Heartbeat(self.epoch, self.node_id, self.committed_zxid)
                self._fan_out(beat)
            yield self.env.timeout(self.config.heartbeat_ms)

    def _failure_detector_loop(self):
        while self._alive:
            yield self.env.timeout(self.config.heartbeat_ms)
            if self.role is Role.LEADER or self.is_observer:
                continue
            silence = self.env.now - self._last_leader_contact
            if silence > self.config.election_timeout_ms and not self._election_pending:
                self._start_election()

    def _on_heartbeat(self, src: str, msg: Heartbeat) -> None:
        if msg.epoch < self.epoch:
            return
        if msg.epoch > self.epoch or self.role is Role.LOOKING:
            # A leader exists that we did not know about: join it. Our
            # log may end in proposals from a dead epoch (we were the
            # deposed leader, or followed one): until this leader's
            # NewLeader reply reconciles the log, delivering anything is
            # unsafe — the heartbeat's committed_zxid covers *its*
            # history, not our divergent suffix.
            self.epoch = msg.epoch
            self._term = max(self._term, msg.epoch)
            self.leader_id = msg.leader_id
            self.role = Role.FOLLOWER
            self._sync_pending = True
            self._last_lag_sync = self.env.now
            self._send(src, SyncRequest(self.last_zxid))
        self._last_leader_contact = self.env.now
        if self.role is not Role.FOLLOWER or src != self.leader_id:
            return
        if self._sync_pending:
            # Reconciliation in flight: re-request it at heartbeat pace
            # (the previous SyncRequest or its reply may have been lost;
            # without a retry a single drop would freeze this replica).
            now = self.env.now
            if now - self._last_lag_sync >= self.config.heartbeat_ms:
                self._last_lag_sync = now
                self._send(src, SyncRequest(self.last_zxid))
            return
        if msg.committed_zxid > self.committed_zxid:
            # Commit catch-up: only up to what we actually hold.
            self.committed_zxid = min(msg.committed_zxid, self.last_zxid)
            self._deliver_committed()
        if msg.committed_zxid > self.last_zxid:
            # The leader committed entries we never received (a healed
            # partition with no follow-up proposal to trip the gap
            # check). Ask for the missing suffix — this is what bounds
            # how long a session-consistent read can stay parked at a
            # lagging replica. Throttled so one resync is in flight per
            # heartbeat interval, not one per heartbeat received.
            now = self.env.now
            if now - self._last_lag_sync >= self.config.heartbeat_ms:
                self._last_lag_sync = now
                self._send(src, SyncRequest(self.last_zxid))

    # -- election ------------------------------------------------------------

    def _start_election(self) -> None:
        if self.is_observer:
            return  # observers never vote; they wait for a new leader
        self.role = Role.LOOKING
        self._established = False
        self.leader_id = None
        self._pending_batch = []
        self._term += 1
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("zab.elections", self.node_id)
        self._votes = {self.node_id: (self.last_zxid, self.node_id)}
        self._election_pending = True
        vote = Vote(self._term, self.last_zxid, self.node_id)
        for peer in self.peer_ids:
            self._send(peer, vote)
        self.env.process(self._election_decision())

    def _election_decision(self):
        yield self.env.timeout(self.config.election_window_ms)
        self._election_pending = False
        if not self._alive or self.role is not Role.LOOKING:
            return
        if len(self._votes) < self.quorum:
            # Not enough participants reachable; retry after a timeout.
            self._last_leader_contact = self.env.now
            return
        winner = max(self._votes.values())[1]
        if winner == self.node_id:
            self._become_leader()
        # Otherwise wait for the winner's NewLeader message.

    def _on_vote(self, src: str, msg: Vote) -> None:
        if self.is_observer or msg.term < self._term:
            return
        fresh_leader = (self.leader_id is not None
                        and (self.env.now - self._last_leader_contact)
                        <= self.config.election_timeout_ms)
        if self.role is not Role.LOOKING and fresh_leader:
            # We know a live leader; tell the candidate instead of joining.
            self._send(src, CurrentLeader(self.epoch, self.leader_id))
            return
        if msg.term > self._term:
            self._term = msg.term
            self.role = Role.LOOKING
            self._established = False
            self.leader_id = None
            self._votes = {self.node_id: (self.last_zxid, self.node_id)}
            vote = Vote(self._term, self.last_zxid, self.node_id)
            for peer in self.peer_ids:
                self._send(peer, vote)
            if not self._election_pending:
                self._election_pending = True
                self.env.process(self._election_decision())
        self._votes[msg.node_id] = (msg.last_zxid, msg.node_id)

    def _on_current_leader(self, src: str, msg: CurrentLeader) -> None:
        if msg.epoch >= self.epoch and self.role is Role.LOOKING:
            self.epoch = msg.epoch
            self.leader_id = msg.leader_id
            self.role = Role.FOLLOWER
            self._last_leader_contact = self.env.now
            self._sync_pending = True
            self._send(msg.leader_id, SyncRequest(self.last_zxid))

    def _become_leader(self) -> None:
        self.epoch = self._term
        self.role = Role.LEADER
        self.leader_id = self.node_id
        self._counter = 0
        self._acked = {self.node_id: self.last_zxid}
        self._ack_values = [self.last_zxid]
        self._establish_acks = {self.node_id}
        self._established = False
        self._pending_batch = []
        # Zab: the elected leader's log *is* the authoritative history
        # (it holds the highest zxid in its quorum) — nothing to
        # reconcile against.
        self._sync_pending = False
        # Establishment syncs everyone from scratch: full log (prefix 0).
        sync = NewLeader(self.epoch, list(self.log), self.last_zxid)
        self._fan_out(sync)
        if self.quorum == 1:  # degenerate single-node ensemble
            self._finish_establishment()

    def _on_new_leader(self, src: str, msg: NewLeader) -> None:
        if msg.epoch < self.epoch:
            return
        self.epoch = msg.epoch
        self._term = max(self._term, msg.epoch)
        self.leader_id = src
        self.role = Role.FOLLOWER
        self._last_leader_contact = self.env.now
        self._pending_batch = []
        self._sync_pending = False  # this message IS the reconciliation
        # Where had we delivered up to? (Read before any log surgery.)
        delivered_zxid = (self.log[self._delivered_upto - 1].zxid
                          if self._delivered_upto else 0)
        if msg.prefix_zxid:
            # Incremental sync: we must hold the claimed prefix exactly.
            idx = bisect_right(self.log, msg.prefix_zxid, key=_record_zxid)
            if idx == 0 or self.log[idx - 1].zxid != msg.prefix_zxid:
                # We do not: fall back to a full sync.
                self._send(src, SyncRequest(0))
                return
            del self.log[idx:]  # drop anything diverging past the prefix
            self.log.extend(msg.log)
        else:
            # Full sync: adopt the leader's log wholesale.
            self.log = list(msg.log)
        # Preserve our delivery progress across the log swap.
        self._delivered_upto = bisect_right(self.log, delivered_zxid,
                                            key=_record_zxid)
        if msg.committed_zxid > self.committed_zxid:
            self.committed_zxid = msg.committed_zxid
        self._deliver_committed()
        if not self.is_observer:
            self._send(src, NewLeaderAck(self.epoch))
        if self.on_role_change:
            self.on_role_change()

    def _on_new_leader_ack(self, src: str, msg: NewLeaderAck) -> None:
        if self.role is not Role.LEADER or msg.epoch != self.epoch:
            return
        if src in self._observer_set:
            return  # observers never count toward establishment
        self._establish_acks.add(src)
        self._ack_update(src, self.last_zxid)
        if len(self._establish_acks) >= self.quorum and not self._established:
            self._finish_establishment()

    def _finish_establishment(self) -> None:
        self._established = True
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("zab.leaderships", self.node_id)
        # Commit the whole inherited log (Zab: NEW_LEADER quorum-ack implies
        # everything in the new leader's history is committed).
        if self.last_zxid > self.committed_zxid:
            self.committed_zxid = self.last_zxid
        self._deliver_committed()
        self._fan_out(Commit(self.epoch, self.committed_zxid))
        if self.on_role_change:
            self.on_role_change()

    def _on_sync_request(self, src: str, msg: SyncRequest) -> None:
        if self.role is not Role.LEADER:
            return
        # Incremental sync: if the follower's claimed position exists in
        # our log, ship only the suffix after it; otherwise (diverged or
        # unknown zxid) fall back to the full log.
        prefix_zxid = 0
        suffix = None
        if msg.last_zxid:
            idx = bisect_right(self.log, msg.last_zxid, key=_record_zxid)
            if idx and self.log[idx - 1].zxid == msg.last_zxid:
                prefix_zxid = msg.last_zxid
                suffix = self.log[idx:]
        if suffix is None:
            suffix = list(self.log)
        self._send(src, NewLeader(self.epoch, suffix,
                                  self.committed_zxid, prefix_zxid))
