"""ZooKeeper-like coordination service (crash fault tolerant, primary-backup).

A faithful-in-structure reimplementation of the substrate the paper's
EZK prototype extends: hierarchical versioned znodes with ephemeral and
sequential nodes, one-shot watches, sessions with expiry, a
request-processor chain, and a Zab-like atomic broadcast.
"""

from .client import SessionState, ZkClient
from .data_tree import DataTree, Stat, ZNode
from .ensemble import ZkEnsemble
from .errors import (BadArgumentsError, BadVersionError, ConnectionLossError,
                     NoChildrenForEphemeralsError, NodeExistsError,
                     NoNodeError, NotEmptyError, SessionExpiredError, ZkError)
from .hotchain import (ChainNode, HotChainConfig, HotChainController,
                       HotChainRouter, PromotionPolicy)
from .leases import ClientReadCache, LeaseConfig, LeaseTable
from .overlay import TreeOverlay
from .server import (Forward, InterceptResult, StateEvent, ZkConfig, ZkServer,
                     ZkTimings)
from .sessions import ExpiryClock, HeartbeatTracker, Session, SessionTable
from .txn import (ClientReply, ClientRequest, CreateOp, CreateTxn, DeleteOp,
                  DeleteTxn, ErrorTxn, ExistsOp, GetChildrenOp, GetDataOp,
                  MultiOp, MultiTxn, Op, RequestMeta, SetDataOp, SetDataTxn,
                  Txn, TxnRecord, WatchNotification)
from .watches import EventType, WatchEvent, WatchManager
from .zab import NotLeaderError, Role, ZabConfig, ZabPeer

__all__ = [
    "ZkClient", "SessionState", "ZkEnsemble", "ZkServer", "ZkConfig",
    "ZkTimings", "LeaseConfig", "LeaseTable", "ClientReadCache",
    "HotChainConfig", "ChainNode", "HotChainController", "HotChainRouter",
    "PromotionPolicy",
    "DataTree", "Stat", "ZNode", "TreeOverlay",
    "SessionTable", "Session", "HeartbeatTracker", "ExpiryClock",
    "WatchManager", "WatchEvent", "EventType",
    "ZabPeer", "ZabConfig", "Role", "NotLeaderError",
    "Forward", "InterceptResult", "StateEvent",
    "ZkError", "NoNodeError", "NodeExistsError", "BadVersionError",
    "NotEmptyError", "NoChildrenForEphemeralsError", "SessionExpiredError",
    "ConnectionLossError", "BadArgumentsError",
    "Op", "CreateOp", "DeleteOp", "SetDataOp", "GetDataOp", "GetChildrenOp",
    "ExistsOp", "MultiOp", "Txn", "CreateTxn", "DeleteTxn", "SetDataTxn",
    "MultiTxn", "ErrorTxn", "TxnRecord", "RequestMeta", "ClientRequest",
    "ClientReply", "WatchNotification",
]
