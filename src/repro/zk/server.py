"""A ZooKeeper replica: request-processor chain over the Zab substrate.

Mirrors the architecture in the paper's Figure 3:

* the **prep** stage (leader only) validates update operations against a
  speculative tree (current state + all prepped-but-uncommitted txns) and
  turns them into deterministic transactions;
* the **proposal** stage is :class:`~repro.zk.zab.ZabPeer`;
* the **final** stage applies committed transactions at every replica,
  answers the originating client, and fires watches.

Reads take ZooKeeper's fast path: they execute at the replica the client
is connected to, against its locally committed state, without touching
the leader.

With ``ZkConfig.local_reads`` enabled the fast path additionally
enforces **session consistency**: requests carry the session's
last-seen zxid, replies carry the zxid the replica answered at, and a
replica whose applied state lags a request's zxid parks the read until
it catches up. A ``SyncOp`` (leader round-trip, no transaction) lets a
client upgrade its next local read to a linearizable one. Replicas may
also be **observers** — non-voting learners that apply the committed
stream and serve reads but never widen the write quorum (§ DESIGN 7).

Extensible ZooKeeper hooks in at exactly the points §5.1.2 describes,
via three attributes that default to ``None``:

* ``extension_router`` — ``(session_id, op) -> bool``; when true the
  request is routed to the leader even if it is a read, because an
  operation extension will consume it;
* ``op_interceptor`` — called at the prep stage; may return an
  :class:`InterceptResult` whose multi-transaction replaces the normal
  translation;
* ``event_hook`` — called at apply time with the state-change events of
  the applied transaction (leader runs event extensions; every replica
  may suppress client notifications).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from bisect import bisect_right

from ..sim import Environment, FifoResource, Network
from .data_tree import DataTree, Stat, split_path
from .errors import (ConnectionLossError, SessionExpiredError, ZkError,
                     from_code, to_code)
from .leases import (LeaseClientRequest, LeaseConfig, LeaseDeny, LeaseGrant,
                     LeasedReply, LeaseRelease, LeaseRequest, LeaseRevoke,
                     LeaseRevokeAck, LeaseTable, WriteGate)
from .overlay import TreeOverlay
from .sessions import ConsistencyTracker, ExpiryClock, SessionTable
from .txn import (ClientReply, ClientRequest, CloseSessionOp, CloseSessionTxn,
                  CreateOp, CreateSessionOp, CreateSessionTxn, CreateTxn,
                  DeleteOp, DeleteTxn, ErrorTxn, ExistsOp, GetChildrenOp,
                  GetDataOp, MultiOp, MultiTxn, Op, PingOp, RequestMeta,
                  SetDataOp, SetDataTxn, SyncOp, Txn, TxnRecord,
                  WatchNotification, ZxidReply, ZxidWatchNotification,
                  is_update)
from ..core.broadcast import make_zk_kernel
from ..obs import (M_DELIVER, M_INGRESS, M_PROPOSE, M_REPLY,
                   FourLetterReply, FourLetterRequest, Observability,
                   ObsConfig)
from ..raft import RaftConfig
from .watches import EventType, WatchEvent, WatchManager
from .zab import ZabConfig

__all__ = ["ZkTimings", "ZkConfig", "ZkServer", "Forward", "SessionPing",
           "InterceptResult", "StateEvent"]


@dataclass
class ZkTimings:
    """Per-stage CPU service times (ms) for one replica."""

    read_execute_ms: float = 0.015
    prep_ms: float = 0.015
    log_write_ms: float = 0.015
    apply_ms: float = 0.01
    extension_exec_ms: float = 0.01   # extra prep cost when an extension runs


@dataclass
class ZkConfig:
    timings: ZkTimings = field(default_factory=ZkTimings)
    #: consensus kernel behind the AtomicBroadcast interface: "zab"
    #: (the default, byte-identical to the pre-interface build) or
    #: "raft". The tree server, sessions, watches, leases and reads
    #: are kernel-agnostic — they program against the contract.
    kernel: str = "zab"
    zab: ZabConfig = field(default_factory=ZabConfig)
    #: Raft tuning; None applies RaftConfig() when kernel="raft".
    raft: Optional[RaftConfig] = None
    session_timeout_ms: float = 2000.0
    expiry_sweep_ms: float = 100.0
    #: Session-consistent local reads (ZooKeeper's real read path).
    #: Replies and watch notifications carry the replica's zxid, clients
    #: stamp requests with their last-seen zxid, and lagging replicas
    #: park reads until they catch up. Off by default — the figure
    #: benchmarks reproduce the seed bit-for-bit with this off.
    local_reads: bool = False
    #: Expiry fencing: a request stamped with a session id whose close
    #: has been *applied* (or, at the leader, proposed) is rejected with
    #: ``SESSION_EXPIRED`` instead of silently executed. Fencing keys on
    #: the recorded closed-set, never on mere table absence, so a
    #: lagging replica that has not applied a session's creation yet
    #: never fences a healthy client. On by default: the default figure
    #: workloads never close sessions, so their traffic is unchanged.
    expiry_fencing: bool = True
    #: Leader-granted read leases for client-side caching (see
    #: ``leases.py``). ``None`` (the default) keeps every path — wire
    #: sizes, scheduling, replies — bit-identical to a lease-free build;
    #: set to a :class:`LeaseConfig` to let ``cached_reads`` clients
    #: serve hot-key reads from local memory at 0 RTT.
    leases: Optional[LeaseConfig] = None
    #: deterministic tracing + metrics (see ``repro.obs``). ``None``
    #: (the default) leaves ``env.obs`` unset, so every instrumentation
    #: point costs one attribute read and the run is byte-identical to
    #: an unobserved one.
    obs: Optional[ObsConfig] = None


@dataclass
class Forward:
    """Follower -> leader relay of an update request."""

    request: ClientRequest
    origin_replica: str
    client_node: str


@dataclass
class SessionPing:
    session_id: int


@dataclass
class StateEvent:
    """One state change produced by applying a transaction."""

    event_type: EventType
    path: str
    data: bytes = b""
    #: session of the client whose request produced this change (None for
    #: server-internal transactions such as expiry-driven deletions).
    origin_session: Optional[int] = None


@dataclass
class InterceptResult:
    """What an operation extension produced at the prep stage."""

    txn: Txn                      # usually a MultiTxn
    result: Any = None            # piggybacked reply value
    block_path: Optional[str] = None   # defer the reply until this path is created


class ZkServer:
    """One replica of the (extensible-ready) ZooKeeper service."""

    def __init__(self, env: Environment, net: Network, node_id: str,
                 peer_ids: List[str], config: Optional[ZkConfig] = None,
                 observer_ids: Optional[List[str]] = None,
                 is_observer: bool = False):
        self.env = env
        self.net = net
        self.node_id = node_id
        self.peer_ids = list(peer_ids)
        self.config = config or ZkConfig()
        self.timings = self.config.timings
        self.is_observer = is_observer

        self.tree = DataTree()
        self.sessions = SessionTable()
        self.watches = WatchManager()
        # Bucketed expiry tracking: a sweep visits only due buckets
        # instead of scanning every session (ZooKeeper's ExpiryQueue).
        self.heartbeats = ExpiryClock(tick_ms=self.config.expiry_sweep_ms)
        self.read_floors = ConsistencyTracker()
        self.cpu = FifoResource(env, name=f"{node_id}.cpu")

        #: sessions whose client is connected to *this* replica.
        self.local_sessions: Dict[int, str] = {}
        #: path -> [(session_id, xid, client_node)] replies deferred until create.
        self._deferred_blocks: Dict[str, List[Tuple[int, int, str]]] = {}
        #: zxid of the last transaction applied to our tree.
        self._applied_zxid = 0
        #: reads waiting for this replica to catch up to a session's zxid:
        #: (required zxid, meta, op, wants_lease), drained as txns apply.
        self._parked_reads: List[Tuple[int, RequestMeta, Op, bool]] = []
        #: leader-only: (client_node, xid) -> zxid for every update this
        #: leadership has proposed, rebuilt from the log on election.
        #: Clients reuse the xid when they retry after a timeout, so a
        #: hit here means the update already travelled the pipeline —
        #: re-executing it would double-apply non-idempotent extension
        #: ops (see _prep).
        self._proposed_xids: Dict[Tuple[str, int], int] = {}
        #: leader-only: sessions whose CloseSessionTxn this leadership
        #: has *proposed* but possibly not yet applied. Closes the
        #: propose→apply fencing window (no update for the session may
        #: land after its close in zxid order) and makes the expiry
        #: sweep exactly-once (a slow commit must not be re-proposed).
        #: Reset on role change: an uncommitted close dies with the old
        #: leadership, a committed one is visible via the session table.
        self._closing_sessions: set = set()
        #: lease machinery (None unless ``config.leases`` is set): the
        #: leader's grant/gate book, a follower's parked grant waits,
        #: and the per-replica read-heat window (promotion hysteresis).
        self._lease_table: Optional[LeaseTable] = (
            LeaseTable(self.config.leases)
            if self.config.leases is not None else None)
        self._lease_waits: Dict[int, tuple] = {}
        self._lease_wait_seq = 0
        self._read_heat: Dict[str, int] = {}
        self._heat_window_start = 0.0
        if self._lease_table is not None:
            # Closed-session grant index cleanup rides the session
            # table's own close path (replicated, exactly-once).
            self.sessions.on_close = self._lease_table.forget_session
        #: expiry clock paused (crashed or not leading): the first
        #: healthy sweep after a pause *rebases* every session instead
        #: of expiring it, so a long election cannot mass-expire clients
        #: whose pings had no leader to reach. Starts False so the
        #: bootstrap leader's very first sweeps behave exactly as before.
        self._expiry_paused = False

        # An observer's broadcast endpoint lists the voting replicas as
        # its peers but never votes or acks; a voter additionally knows
        # the observers so it can stream to them when it leads. The
        # kernel behind the AtomicBroadcast interface is selected by
        # ``config.kernel`` — Zab (the default) or Raft; every call
        # site below goes through the contract, never the protocol.
        voting = peer_ids if is_observer else [node_id] + list(peer_ids)
        self.broadcast = make_zk_kernel(
            env, node_id, voting, send=self._zab_send,
            deliver=self._on_deliver, config=self.config,
            observer_ids=observer_ids, is_observer=is_observer,
            send_many=self._zab_send_many,
            # Raft's post-election barrier entry: an error txn with no
            # meta applies as a no-op (no reply, no tree change) but
            # still advances the zxid stream gaplessly.
            noop_txn=lambda: ErrorTxn("CONNECTION_LOSS", "leader barrier"))
        self.broadcast.on_role_change = self._on_role_change
        self._spec_tree: Optional[DataTree] = None

        # EZK hooks (see module docstring).
        self.extension_router: Optional[Callable[[int, Op], bool]] = None
        self.op_interceptor: Optional[
            Callable[[RequestMeta, Op, "ZkServer"], Optional[InterceptResult]]] = None
        self.event_hook: Optional[
            Callable[[List[StateEvent], "ZkServer"], None]] = None
        #: notification filter: (session_id, WatchEvent) -> suppress?
        self.notification_filter: Optional[
            Callable[[int, WatchEvent], bool]] = None
        #: called after a crash-recovery rejoin (EZK rebuilds its
        #: extension registry from the /em index, §3.8).
        self.on_recover: Optional[Callable[["ZkServer"], None]] = None

        # Observability plane: the first obs-configured server installs
        # it on the env; the tables above get their metric hooks here
        # (they are pure bookkeeping with no env access of their own).
        if self.config.obs is not None:
            obs = Observability.install(env, self.config.obs)
            self.sessions.metrics = obs.metrics
            self.sessions.metrics_node = node_id
            if self._lease_table is not None:
                self._lease_table.metrics = obs.metrics
                self._lease_table.metrics_node = node_id

        self._alive = True
        net.register(node_id, self.handle_message)
        env.process(self._expiry_loop())

    # -- wiring ----------------------------------------------------------

    def _zab_send(self, dst: str, msg: object) -> None:
        self.net.send(self.node_id, dst, msg)

    def _zab_send_many(self, dsts, msg: object) -> None:
        # Fan-out path: size the payload once for the whole broadcast.
        self.net.broadcast(self.node_id, dsts, msg)

    def start(self, leader_id: str) -> None:
        """Bootstrap with a known initial leader (no election round)."""
        self.broadcast.bootstrap(leader_id)
        self._on_role_change()

    @property
    def is_leader(self) -> bool:
        return self.broadcast.is_leader

    @property
    def zab(self):
        """Historical alias for :attr:`broadcast` (which, despite the
        name, may be any AtomicBroadcast kernel — see ``config.kernel``)."""
        return self.broadcast

    # -- fault injection ---------------------------------------------------

    def crash(self) -> None:
        self._alive = False
        self.net.crash(self.node_id)
        self.broadcast.crash()
        self._parked_reads.clear()
        self._lease_waits.clear()

    def recover(self) -> None:
        self._alive = True
        self.net.recover(self.node_id)
        self.broadcast.recover()
        if self.on_recover is not None:
            self.on_recover(self)

    # -- message dispatch ------------------------------------------------------

    def handle_message(self, src: str, msg: object) -> None:
        if not self._alive:
            return
        # Client traffic dominates; dispatch it before the Zab ladder.
        if isinstance(msg, ClientRequest):
            self._on_client_request(src, msg)
        elif self.broadcast.handle(src, msg):
            return
        elif isinstance(msg, Forward):
            self._on_forward(msg)
        elif isinstance(msg, SessionPing):
            self.heartbeats.touch(msg.session_id, self.env.now)
        elif isinstance(msg, LeaseRequest):
            self._on_lease_request(src, msg)
        elif isinstance(msg, LeaseGrant):
            self._on_lease_grant(msg)
        elif isinstance(msg, LeaseDeny):
            self._finish_lease_wait(msg.grant_key)
        elif isinstance(msg, LeaseRevokeAck):
            self._on_lease_revoked(msg.lease_id)
        elif isinstance(msg, LeaseRelease):
            self._on_lease_release(msg)
        elif isinstance(msg, FourLetterRequest):
            # Introspection probes sit at the end of the ladder: real
            # traffic never pays for the isinstance check chain above,
            # and no probe exists unless a test or driver sends one.
            self.net.send(self.node_id, src, FourLetterReply(
                msg.xid, msg.command, self._four_letter(msg.command)))

    # -- client requests ---------------------------------------------------

    def _fence_expired(self, session_id: int, op: Op) -> bool:
        """True when the request must be rejected with ``SESSION_EXPIRED``.

        Fencing keys on the *recorded* closed-set (plus, at the leader,
        the proposed-but-unapplied closing set) — never on mere table
        absence, which on a lagging replica just means the session's
        creation has not applied yet. ``CloseSessionOp`` is exempt so a
        client retrying its own close still gets an answer.
        """
        if not self.config.expiry_fencing or not session_id:
            return False
        if isinstance(op, CloseSessionOp):
            return False
        if self.sessions.is_closed(session_id):
            return True
        return self.broadcast.is_leader and session_id in self._closing_sessions

    def _on_client_request(self, src: str, req: ClientRequest) -> None:
        op = req.op
        obs = self.env.obs
        if obs is not None and obs.tracer is not None \
                and not isinstance(op, PingOp):
            obs.tracer.mark(src, req.xid, M_INGRESS, self.env.now,
                            self.node_id)
        if self._fence_expired(req.session_id, op):
            self._reply(src, ClientReply(
                req.xid, False, None, SessionExpiredError.code,
                f"session {req.session_id} expired"))
            return
        if isinstance(op, PingOp):
            self._on_ping(src, req)
            return
        meta = RequestMeta(self.node_id, src, req.session_id, req.xid)
        if isinstance(op, SyncOp):
            self._route_sync(meta, req)
            return
        routed_by_extension = (
            self.extension_router is not None
            and self.extension_router(req.session_id, op))
        if is_update(op) or routed_by_extension:
            self._route_update(meta, req)
        else:
            self._handle_read(meta, op, getattr(req, "last_zxid", 0),
                              wants_lease=(self._lease_table is not None
                                           and isinstance(
                                               req, LeaseClientRequest)))

    def _on_ping(self, src: str, req: ClientRequest) -> None:
        self.local_sessions.setdefault(req.session_id, src)
        if self.broadcast.is_leader:
            self.heartbeats.touch(req.session_id, self.env.now)
        elif self.broadcast.leader_id is not None:
            self.net.send(self.node_id, self.broadcast.leader_id,
                          SessionPing(req.session_id))
        self._reply(src, ClientReply(req.xid, ok=True, value="pong"))

    def _route_update(self, meta: RequestMeta, req: ClientRequest) -> None:
        self.local_sessions[req.session_id] = meta.client_node
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("zk.writes", self.node_id)
        if self.broadcast.is_leader:
            if self._lease_table is not None:
                self._gate_or_prep(meta, req.op)
            else:
                self._enter_prep(meta, req.op)
        elif self.broadcast.leader_id is not None:
            if obs is not None:
                obs.metrics.inc("zk.forwards", self.node_id)
            self.net.send(self.node_id, self.broadcast.leader_id,
                          Forward(req, self.node_id, meta.client_node))
        else:
            self._reply_error(meta, ConnectionLossError("no leader known"))

    def _on_forward(self, fwd: Forward) -> None:
        meta = RequestMeta(fwd.origin_replica, fwd.client_node,
                           fwd.request.session_id, fwd.request.xid)
        if not self.broadcast.is_leader:
            # Stale forward (leadership moved): bounce an error so the
            # client retries against the new topology.
            self._reply_error(meta, ConnectionLossError("not the leader"))
            return
        if self._fence_expired(meta.session_id, fwd.request.op):
            self._reply_error(meta, SessionExpiredError(
                f"session {meta.session_id} expired"))
            return
        if isinstance(fwd.request.op, SyncOp):
            self._answer_sync(meta)
            return
        if self._lease_table is not None:
            self._gate_or_prep(meta, fwd.request.op)
        else:
            self._enter_prep(meta, fwd.request.op)

    # -- sync (leader round-trip, no txn) -----------------------------------

    def _route_sync(self, meta: RequestMeta, req: ClientRequest) -> None:
        """ZooKeeper ``sync``: a flush to the leader with no transaction."""
        self.local_sessions[meta.session_id] = meta.client_node
        if self.broadcast.is_leader:
            self._answer_sync(meta)
        elif self.broadcast.leader_id is not None:
            self.net.send(self.node_id, self.broadcast.leader_id,
                          Forward(req, self.node_id, meta.client_node))
        else:
            self._reply_error(meta, ConnectionLossError("no leader known"))

    def _answer_sync(self, meta: RequestMeta) -> None:
        """Leader side: answer with the current commit point.

        The reply's value (and zxid stamp) is the leader's committed
        zxid when the sync reached it; a read parked on that zxid
        observes every write that completed before the sync was issued.
        """
        self.heartbeats.touch(meta.session_id, self.env.now)
        work = self.cpu.submit(self.timings.read_execute_ms)
        work.add_callback(lambda _e: self._finish_sync(meta))

    def _finish_sync(self, meta: RequestMeta) -> None:
        if not self._alive:
            return
        if not self.broadcast.is_leader:
            self._reply_error(meta, ConnectionLossError("leadership moved"))
            return
        zxid = self.broadcast.sync_barrier()
        self._reply(meta.client_node,
                    ZxidReply(meta.xid, True, zxid, zxid=zxid))

    # -- read fast path ------------------------------------------------------

    def _handle_read(self, meta: RequestMeta, op: Op,
                     last_zxid: int = 0, wants_lease: bool = False) -> None:
        self.local_sessions[meta.session_id] = meta.client_node
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("zk.reads", self.node_id)
        if self.config.local_reads:
            # Session consistency: never serve a state older than what
            # this session has already seen (request stamp) or what this
            # replica has already served it (local floor).
            required = max(last_zxid, self.read_floors.floor(meta.session_id))
            if required > self._applied_zxid:
                self._parked_reads.append((required, meta, op, wants_lease))
                return
        self._submit_read(meta, op, wants_lease)

    def _submit_read(self, meta: RequestMeta, op: Op,
                     wants_lease: bool = False) -> None:
        work = self.cpu.submit(self.timings.read_execute_ms)
        work.add_callback(lambda _e: self._execute_read(meta, op, wants_lease))

    def _drain_parked_reads(self) -> None:
        """Run every parked read the applied state now satisfies."""
        if not self._parked_reads:
            return
        applied = self._applied_zxid
        still_parked = []
        for entry in self._parked_reads:
            if entry[0] <= applied:
                self._submit_read(entry[1], entry[2], entry[3])
            else:
                still_parked.append(entry)
        self._parked_reads = still_parked

    def _execute_read(self, meta: RequestMeta, op: Op,
                      wants_lease: bool = False) -> None:
        if not self._alive:
            return
        try:
            if isinstance(op, GetDataOp):
                data, stat = self.tree.get_data(op.path)
                if op.watch:
                    self.watches.add_data_watch(op.path, meta.session_id)
                value = (data, stat)
            elif isinstance(op, ExistsOp):
                stat = self.tree.exists(op.path)
                if op.watch:
                    self.watches.add_data_watch(op.path, meta.session_id)
                value = stat
            elif isinstance(op, GetChildrenOp):
                children = self.tree.get_children(op.path)
                if op.watch:
                    self.watches.add_child_watch(op.path, meta.session_id)
                value = children
            else:
                raise ZkError(f"not a read operation: {op!r}")
        except ZkError as error:
            self._reply_error(meta, error)
            return
        if wants_lease and self._try_lease_reply(meta, op, value):
            return
        if self.config.local_reads:
            zxid = self._applied_zxid
            self.read_floors.note(meta.session_id, zxid)
            self._reply(meta.client_node,
                        ZxidReply(meta.xid, True, value, zxid=zxid))
            return
        self._reply(meta.client_node, ClientReply(meta.xid, True, value))

    # -- leases: grants (read side) ------------------------------------------

    def _try_lease_reply(self, meta: RequestMeta, op: Op, value) -> bool:
        """Attach a lease to this read reply if the key qualifies.

        True means the reply was (or will be, once the leader answers a
        follower's grant request) sent by the lease path; False falls
        back to the ordinary reply tail of :meth:`_execute_read`.
        """
        if not isinstance(op, (GetDataOp, ExistsOp)) or op.watch:
            return False
        stat = value[1] if isinstance(value, tuple) else value
        if not isinstance(stat, Stat):
            return False          # exists() on a missing node: no key to lease
        if not self._note_heat(op.path):
            return False          # cold key: plain read, no leader traffic
        zxid = self._applied_zxid
        if self.broadcast.is_leader:
            lease = self._leader_grant(meta.session_id, meta.client_node,
                                       op.path)
            if lease is None:
                return False
            if self.config.local_reads and meta.session_id:
                self.read_floors.note(meta.session_id, zxid)
            self._reply(meta.client_node, LeasedReply(
                meta.xid, True, value, zxid=zxid,
                lease_id=lease.lease_id, lease_expires_at=lease.expires_at,
                lease_epoch=self.broadcast.leadership_epoch))
            return True
        leader = self.broadcast.leader_id
        if leader is None:
            return False
        # Park the reply and ask the leader; a timeout answers plain so
        # a dark leader can never stall reads.
        self._lease_wait_seq += 1
        key = self._lease_wait_seq
        self._lease_waits[key] = (meta, op, value, zxid, stat.mzxid)
        self.net.send(self.node_id, leader, LeaseRequest(
            meta.session_id, op.path, key, self.node_id, meta.client_node,
            stat.mzxid))
        self.env.defer(self.config.leases.grant_timeout_ms,
                       self._finish_lease_wait, key)
        return True

    def _note_heat(self, path: str) -> bool:
        """Promotion hysteresis: lease only keys hot in the current window."""
        cfg = self.config.leases
        now = self.env.now
        if now - self._heat_window_start >= cfg.heat_window_ms:
            self._read_heat.clear()
            self._heat_window_start = now
        count = self._read_heat.get(path, 0) + 1
        self._read_heat[path] = count
        return count >= cfg.min_reads

    def _leader_grant(self, session_id: int, client_node: str, path: str):
        """Grant fence (leader): every reason a grant must be refused."""
        table = self._lease_table
        if table is None or not session_id:
            return None
        if self.env.now < table.recovery_until:
            return None           # epoch fence: old grants still at large
        if (session_id not in self.sessions
                or self.sessions.is_closed(session_id)
                or session_id in self._closing_sessions):
            return None           # never arm a cache the fence already killed
        if self.op_interceptor is not None:
            # An extension can rewrite its write set at prep time, so
            # the per-path pending marks below are not enough here:
            # refuse grants while *any* write is between ingress and
            # apply.
            if table.pipeline_refs or self.broadcast.last_zxid > self._applied_zxid:
                return None
        auth_stat = self.tree.exists(path)
        if auth_stat is None:
            return None
        spec = self._spec_tree
        if spec is not None:
            spec_stat = spec.exists(path)
            if spec_stat is None or spec_stat.mzxid != auth_stat.mzxid:
                return None       # a write to this key is in the pipeline
        return table.grant(path, session_id, client_node, self.env.now)

    def _on_lease_request(self, src: str, msg: LeaseRequest) -> None:
        if self._lease_table is None or not self.broadcast.is_leader:
            self.net.send(self.node_id, src, LeaseDeny(msg.grant_key))
            return
        auth_stat = self.tree.exists(msg.path)
        if auth_stat is None or auth_stat.mzxid != msg.mzxid:
            # The follower read a version the leader has already moved
            # past (or not reached — it re-checks on its side too).
            self.net.send(self.node_id, src, LeaseDeny(msg.grant_key))
            return
        lease = self._leader_grant(msg.session_id, msg.client_node, msg.path)
        if lease is None:
            self.net.send(self.node_id, src, LeaseDeny(msg.grant_key))
            return
        self.net.send(self.node_id, src, LeaseGrant(
            msg.grant_key, lease.lease_id, lease.expires_at,
            self.broadcast.leadership_epoch, auth_stat.mzxid))

    def _on_lease_grant(self, msg: LeaseGrant) -> None:
        entry = self._lease_waits.pop(msg.grant_key, None)
        if entry is None:
            return                # timed out; the grant just expires unused
        meta, op, value, zxid, mzxid = entry
        stat = self.tree.exists(op.path)
        if (msg.mzxid != mzxid or stat is None or stat.mzxid != mzxid):
            # The key moved while the grant was in flight: installing
            # the cached value now would hand the client stale state.
            self._plain_read_reply(meta, value, zxid)
            return
        if self.config.local_reads and meta.session_id:
            self.read_floors.note(meta.session_id, zxid)
        self._reply(meta.client_node, LeasedReply(
            meta.xid, True, value, zxid=zxid,
            lease_id=msg.lease_id, lease_expires_at=msg.expires_at,
            lease_epoch=msg.epoch))

    def _finish_lease_wait(self, grant_key: int) -> None:
        """Deny or grant-timeout: answer the parked read plain."""
        entry = self._lease_waits.pop(grant_key, None)
        if entry is None or not self._alive:
            return
        meta, _op, value, zxid, _mzxid = entry
        self._plain_read_reply(meta, value, zxid)

    def _plain_read_reply(self, meta: RequestMeta, value, zxid: int) -> None:
        if self.config.local_reads:
            if meta.session_id:
                self.read_floors.note(meta.session_id, zxid)
            self._reply(meta.client_node,
                        ZxidReply(meta.xid, True, value, zxid=zxid))
            return
        self._reply(meta.client_node, ClientReply(meta.xid, True, value))

    # -- leases: write gating (leader) ---------------------------------------

    def _lease_write_paths(self, meta: RequestMeta, op: Op) -> Tuple[str, ...]:
        if isinstance(op, (CreateOp, SetDataOp, DeleteOp)):
            return (op.path,)
        if isinstance(op, MultiOp):
            return tuple(sub.path for sub in op.ops
                         if isinstance(sub, (CreateOp, SetDataOp, DeleteOp)))
        if isinstance(op, CloseSessionOp):
            return self._session_ephemeral_paths(meta.session_id)
        return ()

    def _session_ephemeral_paths(self, session_id: int) -> Tuple[str, ...]:
        tree = self._spec_tree if self._spec_tree is not None else self.tree
        return tuple(tree.ephemerals_of(session_id))

    def _gate_or_prep(self, meta: RequestMeta, op: Op) -> None:
        """Leader write ingress with leases on: park behind revocation.

        The pending marks raised here stop new grants on the write's
        paths from this moment on; :meth:`_prep` lowers them once the
        speculative tree carries the write (from then on the grant
        fence's mzxid comparison takes over).
        """
        table = self._lease_table
        now = self.env.now
        paths = self._lease_write_paths(meta, op)
        fence_paths = paths
        if self.op_interceptor is not None:
            # The interceptor may rewrite the write set at prep time, so
            # fence against every live lease, not just declared paths.
            fence_paths = tuple(sorted(
                set(paths) | set(table.all_leased_paths(now))))
        blockers = table.active_on(fence_paths, now)
        table.acquire_pending(paths)
        if not blockers and now >= table.recovery_until:
            self._enter_prep(meta, op, lease_paths=paths)
            return
        grace = table.config.grace_ms
        not_before = max([table.recovery_until]
                         + [b.expires_at + grace for b in blockers])
        gate = WriteGate("update", paths, {b.lease_id for b in blockers},
                         not_before, meta=meta, op=op)
        obs = self.env.obs
        if obs is not None and obs.tracer is not None:
            # Ad-hoc stamp (WriteGate is a plain dataclass): the gate
            # wait surfaces as an aux span when the write finally fires.
            gate.obs_gated_at = now
        table.open_gate(gate)
        for blocker in blockers:
            self.net.send(self.node_id, blocker.client_node,
                          LeaseRevoke(blocker.path, blocker.lease_id))
        self.env.defer(max(0.0, not_before - now), self._gate_deadline, gate)

    def _on_lease_revoked(self, lease_id: int) -> None:
        if self._lease_table is None:
            return
        for gate in self._lease_table.revoked(lease_id):
            self._maybe_fire_gate(gate)

    def _on_lease_release(self, msg: LeaseRelease) -> None:
        """Voluntary early release (client sync barrier)."""
        if self._lease_table is None:
            return
        if not self.broadcast.is_leader:
            if self.broadcast.leader_id is not None:
                self.net.send(self.node_id, self.broadcast.leader_id, msg)
            return
        ready: List[WriteGate] = []
        for lease_id in msg.lease_ids:
            ready.extend(self._lease_table.revoked(lease_id))
        for gate in ready:
            self._maybe_fire_gate(gate)

    def _maybe_fire_gate(self, gate: WriteGate) -> None:
        """Ack-drain path: every waited-on lease has been revoked."""
        if gate.fired or not self._alive or gate.waiting:
            return
        self._fire_gate(gate)

    def _gate_deadline(self, gate: WriteGate) -> None:
        """Expiry path: unacked leases ran out their term plus grace."""
        if gate.fired or not self._alive:
            return
        table = self._lease_table
        if table is not None and gate.waiting:
            table.purge(gate.waiting)
            gate.waiting = set()
        self._fire_gate(gate)

    def _fire_gate(self, gate: WriteGate) -> None:
        table = self._lease_table
        if table is None or gate.fired:
            return
        table.close_gate(gate)
        if gate.kind == "close":
            table.release_pending(gate.paths)
            session_id = gate.session_id
            if (self.broadcast.is_leader and session_id in self.sessions
                    and session_id in self._closing_sessions):
                self._apply_to_spec(CloseSessionTxn(session_id))
                self.broadcast.propose(CloseSessionTxn(session_id), None)
            return
        if not self.broadcast.is_leader:
            table.release_pending(gate.paths)
            self._reply_error(gate.meta,
                              ConnectionLossError("leadership moved"))
            return
        obs = self.env.obs
        gated_at = getattr(gate, "obs_gated_at", None)
        if obs is not None and obs.tracer is not None and gated_at is not None:
            obs.tracer.aux(gate.meta.client_node, gate.meta.xid,
                           "lease_gate", gated_at, self.env.now,
                           self.node_id, detail=f"paths={len(gate.paths)}")
        self._enter_prep(gate.meta, gate.op, lease_paths=gate.paths)

    def _gate_session_close(self, session_id: int) -> bool:
        """Park an expiry-driven close behind leases on its ephemerals.

        True when the close was gated (the sweep must not propose it);
        False when nothing blocks it and the normal path proceeds.
        Without this, an expiry sweep could delete a leased ephemeral
        while its (other-session) holder still serves it from cache.
        """
        table = self._lease_table
        now = self.env.now
        paths = self._session_ephemeral_paths(session_id)
        blockers = table.active_on(paths, now) if paths else []
        if not blockers and now >= table.recovery_until:
            return False
        table.acquire_pending(paths)
        grace = table.config.grace_ms
        not_before = max([table.recovery_until]
                         + [b.expires_at + grace for b in blockers])
        gate = WriteGate("close", paths, {b.lease_id for b in blockers},
                         not_before, session_id=session_id)
        table.open_gate(gate)
        for blocker in blockers:
            self.net.send(self.node_id, blocker.client_node,
                          LeaseRevoke(blocker.path, blocker.lease_id))
        self.env.defer(max(0.0, not_before - now), self._gate_deadline, gate)
        return True

    # -- prep stage (leader) -----------------------------------------------

    def _enter_prep(self, meta: RequestMeta, op: Op,
                    lease_paths: Optional[Tuple[str, ...]] = None) -> None:
        self.heartbeats.touch(meta.session_id, self.env.now)
        cost = self.timings.prep_ms + self.timings.log_write_ms
        work = self.cpu.submit(cost)
        work.add_callback(lambda _e: self._prep(meta, op, lease_paths))

    def _prep(self, meta: RequestMeta, op: Op,
              lease_paths: Optional[Tuple[str, ...]] = None) -> None:
        if lease_paths is not None and self._lease_table is not None:
            # The translate below runs in this same event: from here on
            # the speculative tree (mzxid fence) covers the write.
            self._lease_table.release_pending(lease_paths)
        if not self._alive:
            return
        if not self.broadcast.is_leader:
            self._reply_error(meta, ConnectionLossError("leadership moved"))
            return
        spec = self._spec_tree
        assert spec is not None, "established leader must have a spec tree"

        # At-most-once guard: a timed-out client retries with the same
        # xid via another replica, and a forward stranded in a partition
        # can surface again after the heal. Whichever copy arrives
        # second must not re-run the update (a second /queue/head
        # extension call would silently eat another element); answer it
        # from the already-proposed transaction instead.
        key = (meta.client_node, meta.xid)
        proposed = self._proposed_xids.get(key)
        if proposed is not None:
            self._answer_duplicate(meta, proposed)
            return

        # The session may have expired between routing and this prep
        # slot (the expiry sweep runs between CPU grants): fence here
        # too, so no update for a closing session enters the pipeline
        # after its CloseSessionTxn.
        if self._fence_expired(meta.session_id, op):
            self._reply_error(meta, SessionExpiredError(
                f"session {meta.session_id} expired"))
            return

        if self.op_interceptor is not None:
            try:
                intercepted = self.op_interceptor(meta, op, self)
            except ZkError as error:
                self._reply_error(meta, error)
                return
            if intercepted is not None:
                # The extension ran against the speculative tree; apply
                # its write-set and propose in the same event so the next
                # prep sees it (atomicity under pipelining). The extra
                # leader CPU it consumed is billed as a queue item — only
                # on the matched path, so regular clients see none of it
                # (§6.2's <0.4% overhead claim).
                self.cpu.submit(self.timings.extension_exec_ms)
                self._propose_intercepted(meta, intercepted)
                return

        try:
            txn = self._translate(meta, op, spec)
        except ZkError as error:
            # Faithful to ZooKeeper: rejected updates still travel the
            # ordered pipeline as error transactions.
            txn = ErrorTxn(to_code(error), str(error))
        zxid = self.broadcast.propose(txn, meta)
        self._proposed_xids[(meta.client_node, meta.xid)] = zxid
        self._mark_propose(meta, zxid)

    def _propose_intercepted(self, meta: RequestMeta,
                             intercepted: InterceptResult) -> None:
        if not self._alive or not self.broadcast.is_leader:
            return
        self._apply_to_spec(intercepted.txn)
        if intercepted.block_path is not None:
            intercepted.txn.effects.append(("block", intercepted.block_path))
        zxid = self.broadcast.propose(intercepted.txn, meta)
        self._proposed_xids[(meta.client_node, meta.xid)] = zxid
        self._mark_propose(meta, zxid)

    def _mark_propose(self, meta: RequestMeta, zxid: int) -> None:
        obs = self.env.obs
        if obs is not None and obs.tracer is not None:
            obs.tracer.mark(meta.client_node, meta.xid, M_PROPOSE,
                            self.env.now, self.node_id,
                            epoch=self.broadcast.leadership_epoch,
                            zxid=zxid)

    def _answer_duplicate(self, meta: RequestMeta, zxid: int) -> None:
        """Answer a retried update from its already-proposed txn record.

        If the record has not applied locally yet, repointing its meta
        at the retry's origin makes :meth:`_after_apply` send the reply
        through the replica the client is *now* connected to. If it has
        applied, the reply is re-derived from the committed txn.
        """
        log = self.broadcast.log
        idx = bisect_right(log, zxid, key=lambda r: r.zxid)
        if not idx or log[idx - 1].zxid != zxid:
            return
        record = log[idx - 1]
        if zxid > self._applied_zxid:
            record.meta = meta
            return
        txn = record.txn
        if isinstance(txn, ErrorTxn):
            self._reply_error(meta, from_code(txn.code, txn.message))
            return
        if isinstance(txn, MultiTxn):
            blocks = [e[1] for e in txn.effects if e[0] == "block"]
            if blocks:
                for path in blocks:
                    self._register_deferred_block(meta, path)
                return
            value: Any = txn.result_payload if txn.payload_set else None
        elif isinstance(txn, CreateTxn):
            value = txn.path
        elif isinstance(txn, SetDataTxn):
            # Best effort: the stat at apply time is gone; the current
            # one keeps version-based cas loops progressing.
            value = self.tree.exists(txn.path)
        elif isinstance(txn, CreateSessionTxn):
            value = record.zxid
        elif isinstance(txn, CloseSessionTxn):
            value = True
        else:
            value = None
        if self.config.local_reads:
            if meta.session_id:
                self.read_floors.note(meta.session_id, record.zxid)
            self._reply(meta.client_node,
                        ZxidReply(meta.xid, True, value, zxid=record.zxid))
            return
        self._reply(meta.client_node, ClientReply(meta.xid, True, value))

    def _translate(self, meta: RequestMeta, op: Op, spec: DataTree) -> Txn:
        """Turn a validated update op into a deterministic txn (mutates spec)."""
        if isinstance(op, CreateOp):
            owner = meta.session_id if op.ephemeral else None
            # Stamp the zxid the upcoming propose() will assign: czxid
            # order in the spec tree must match the authoritative tree,
            # or extensions that list by creation order ("oldest
            # client") silently degrade to name order.
            actual = spec.create(op.path, op.data, ephemeral_owner=owner,
                                 sequential=op.sequential,
                                 zxid=self.broadcast.next_zxid, now=self.env.now)
            return CreateTxn(actual, op.data, owner)
        if isinstance(op, SetDataOp):
            spec.set_data(op.path, op.data, op.version,
                          zxid=self.broadcast.next_zxid, now=self.env.now)
            return SetDataTxn(op.path, op.data)
        if isinstance(op, DeleteOp):
            spec.delete(op.path, op.version)
            return DeleteTxn(op.path)
        if isinstance(op, MultiOp):
            overlay = TreeOverlay(spec)
            for sub in op.ops:
                if isinstance(sub, CreateOp):
                    owner = meta.session_id if sub.ephemeral else None
                    overlay.create(sub.path, sub.data, ephemeral_owner=owner,
                                   sequential=sub.sequential)
                elif isinstance(sub, SetDataOp):
                    overlay.set_data(sub.path, sub.data, sub.version)
                elif isinstance(sub, DeleteOp):
                    overlay.delete(sub.path, sub.version)
                else:
                    raise ZkError(f"op not allowed in multi: {sub!r}")
            txn = MultiTxn(overlay.txns)
            self._apply_to_spec(txn)
            return txn
        if isinstance(op, CreateSessionOp):
            return CreateSessionTxn(0, op.timeout_ms, op.client_id)
        if isinstance(op, CloseSessionOp):
            # Exactly-once close: a close raced by the expiry sweep (or
            # a duplicate from a new connection) must not propose a
            # second CloseSessionTxn.
            if (meta.session_id in self._closing_sessions
                    or meta.session_id not in self.sessions):
                raise SessionExpiredError(
                    f"session {meta.session_id} already closed")
            self._closing_sessions.add(meta.session_id)
            return CloseSessionTxn(meta.session_id)
        raise ZkError(f"unknown update operation: {op!r}")

    def _apply_to_spec(self, txn: Txn) -> None:
        spec = self._spec_tree
        if spec is None:
            return
        # Callers run before propose(), so next_zxid is the zxid this
        # txn will carry — spec czxids stay identical to the committed
        # tree's (extensions sort sub-objects by them).
        _apply_txn_to_tree(spec, txn, zxid=self.broadcast.next_zxid,
                           now=self.env.now)

    def _on_role_change(self) -> None:
        if self._lease_table is not None:
            self._lease_reset_for_role()
        if self.broadcast.is_leader:
            self._spec_tree = _copy_tree(self.tree)
            # Carry the at-most-once guard across elections: retries of
            # updates the *previous* leader proposed arrive here with
            # the same (client, xid) and must not re-execute.
            self._proposed_xids = {
                (record.meta.client_node, record.meta.xid): record.zxid
                for record in self.broadcast.log if record.meta is not None
            }
            for session_id in self.sessions.ids():
                session = self.sessions.get(session_id)
                self.heartbeats.track(session_id, session.timeout_ms,
                                      self.env.now)
            # Uncommitted closes died with the old leadership; committed
            # ones are visible through the session table.
            self._closing_sessions = set()
        else:
            self._spec_tree = None
            self._proposed_xids = {}
            self._closing_sessions = set()

    def _lease_reset_for_role(self) -> None:
        """Leases are leader-soft state: a role change wipes the book.

        Parked writes die with the old leadership (their clients retry
        against the new topology), and a *new* leadership that is not
        the bootstrap one raises the recovery fence: it cannot know what
        the old leader granted, so every write waits out one full lease
        term — the Chubby/GFS master-failover rule.
        """
        table = self._lease_table
        for gate in table.drain_gates():
            if gate.kind == "update" and gate.meta is not None:
                self._reply_error(gate.meta,
                                  ConnectionLossError("leadership changed"))
        # Fencing keys on the kernel-neutral leadership epoch (Zab
        # epoch / Raft term): 1 is the bootstrap leadership, anything
        # above means an election happened and old grants may be at
        # large on clients of the previous leader.
        epoch = self.broadcast.leadership_epoch
        fence = self.broadcast.is_leader and epoch > 1
        table.reset_for_leadership(epoch, self.env.now, fence)

    # -- final stage (every replica) ----------------------------------------

    def _on_deliver(self, record: TxnRecord) -> None:
        obs = self.env.obs
        if (obs is not None and obs.tracer is not None
                and record.meta is not None
                and record.meta.origin_replica == self.node_id):
            obs.tracer.mark(record.meta.client_node, record.meta.xid,
                            M_DELIVER, self.env.now, self.node_id,
                            epoch=self.broadcast.leadership_epoch,
                            zxid=record.zxid)
        result, error, events = self._apply(record)
        if record.zxid > self._applied_zxid:
            self._applied_zxid = record.zxid
        self._drain_parked_reads()
        work = self.cpu.submit(self.timings.apply_ms)
        work.add_callback(
            lambda _e: self._after_apply(record, result, error, events))

    def _apply(self, record: TxnRecord
               ) -> Tuple[Any, Optional[ZkError], List[StateEvent]]:
        """Mutate replicated state; returns (result, error, state events)."""
        txn = record.txn
        now = self.env.now
        events: List[StateEvent] = []
        try:
            if isinstance(txn, ErrorTxn):
                from .errors import from_code
                return (None, from_code(txn.code, txn.message), events)
            if isinstance(txn, CreateSessionTxn):
                session_id = record.zxid
                self.sessions.create(session_id, txn.timeout_ms, txn.client_id)
                if self.broadcast.is_leader:
                    self.heartbeats.track(session_id, txn.timeout_ms, now)
                if record.meta is not None and record.meta.origin_replica == self.node_id:
                    self.local_sessions[session_id] = record.meta.client_node
                return (session_id, None, events)
            if isinstance(txn, CloseSessionTxn):
                self._close_session(txn.session_id, events)
                return (True, None, events)
            result = _apply_txn_to_tree(self.tree, txn, record.zxid, now,
                                        events=events)
            if record.meta is not None:
                for event in events:
                    event.origin_session = record.meta.session_id
            return (result, None, events)
        except ZkError as error:
            # Should not happen (prep validated); surface as an error reply.
            return (None, error, events)

    def _close_session(self, session_id: int, events: List[StateEvent]) -> None:
        if session_id not in self.sessions:
            # Duplicate CloseSessionTxn (a pre-guard leader's expiry
            # sweep racing a client close): the reap already happened,
            # applying again must be a no-op so ephemerals are deleted
            # exactly once.
            return
        self.sessions.close(session_id)
        self.heartbeats.forget(session_id)
        self.read_floors.forget(session_id)
        doomed = self.tree.kill_session(session_id)
        for path in doomed:
            events.append(StateEvent(EventType.NODE_DELETED, path))
        self.watches.remove_session(session_id)
        self.local_sessions.pop(session_id, None)

    def _after_apply(self, record: TxnRecord, result: Any,
                     error: Optional[ZkError],
                     events: List[StateEvent]) -> None:
        if not self._alive:
            return
        # 1. Event extensions (leader executes; every replica may suppress).
        if self.event_hook is not None and events:
            self.event_hook(events, self)
        # 2. Watches + deferred block replies for locally-connected clients.
        self._fire_watches(events, record.zxid)
        # 3. Reply to the originating client.
        meta = record.meta
        if meta is None or meta.origin_replica != self.node_id:
            return
        blocked = isinstance(record.txn, MultiTxn) and any(
            effect[0] == "block" for effect in record.txn.effects)
        if blocked:
            for effect in record.txn.effects:
                if effect[0] == "block":
                    self._register_deferred_block(meta, effect[1])
            return
        if error is not None:
            self._reply_error(meta, error)
        else:
            value = result
            if isinstance(record.txn, MultiTxn) and record.txn.payload_set:
                value = record.txn.result_payload
            if self.config.local_reads:
                # The write's zxid becomes the session's read floor, so a
                # subsequent read at any replica observes this write.
                # (session_id 0 = a CreateSession request: the floor
                # belongs to the new session, carried by the client.)
                if meta.session_id:
                    self.read_floors.note(meta.session_id, record.zxid)
                self._reply(meta.client_node,
                            ZxidReply(meta.xid, True, value, zxid=record.zxid))
                return
            self._reply(meta.client_node, ClientReply(meta.xid, True, value))

    def _register_deferred_block(self, meta: RequestMeta, path: str) -> None:
        """Defer the reply to ``meta`` until ``path`` is created.

        If the path already exists (the event raced the registration), the
        reply goes out immediately — the paper's block() semantics.
        """
        if self.tree.exists(path) is not None:
            self._reply(meta.client_node,
                        ClientReply(meta.xid, True, ("unblocked", path)))
            return
        self._deferred_blocks.setdefault(path, []).append(
            (meta.session_id, meta.xid, meta.client_node))

    def _fire_watches(self, events: List[StateEvent], zxid: int = 0) -> None:
        notifications: List[Tuple[int, WatchEvent]] = []
        for event in events:
            notifications.extend(
                self.watches.trigger(event.path, event.event_type))
            if event.event_type in (EventType.NODE_CREATED,
                                    EventType.NODE_DELETED):
                parent, _ = split_path(event.path)
                notifications.extend(self.watches.trigger_children(parent))
            if event.event_type is EventType.NODE_CREATED:
                for session_id, xid, client in self._deferred_blocks.pop(
                        event.path, ()):
                    self._reply(client, ClientReply(
                        xid, True, ("unblocked", event.path)))
        obs = self.env.obs
        for session_id, watch_event in notifications:
            if (self.notification_filter is not None
                    and self.notification_filter(session_id, watch_event)):
                continue
            client = self.local_sessions.get(session_id)
            if client is None:
                continue
            if obs is not None:
                obs.metrics.inc("zk.watch_deliveries", self.node_id)
            if self.config.local_reads:
                # Stamp the triggering txn's zxid so a read issued after
                # the notification (even at another replica) observes the
                # change the client was notified about.
                self._reply(client, ZxidWatchNotification(
                    session_id, watch_event.event_type.value,
                    watch_event.path, zxid=zxid))
                continue
            self._reply(client, WatchNotification(
                session_id, watch_event.event_type.value,
                watch_event.path))

    # -- session expiry (leader duty) ------------------------------------------

    def _expiry_loop(self):
        while True:
            yield self.env.timeout(self.config.expiry_sweep_ms)
            if not self._alive or not self.broadcast.is_leader:
                self._expiry_paused = True
                continue
            if self._expiry_paused:
                # First healthy sweep after a crash or a spell out of
                # leadership: rebase instead of expiring, so clients
                # whose pings had no leader to reach during the election
                # window get one fresh timeout to re-establish.
                self.heartbeats.rebase(self.env.now)
                self._expiry_paused = False
                continue
            for session_id in self.heartbeats.expired(self.env.now):
                self.heartbeats.forget(session_id)
                if (session_id in self.sessions
                        and session_id not in self._closing_sessions):
                    self._closing_sessions.add(session_id)
                    obs = self.env.obs
                    if obs is not None:
                        obs.metrics.inc("sessions.expired", self.node_id)
                    if (self._lease_table is not None
                            and self._gate_session_close(session_id)):
                        # The close deletes leased ephemerals: it parks
                        # behind revocation like any other write.
                        continue
                    # Spec first: _apply_to_spec stamps with the zxid
                    # the propose() right after it will assign.
                    self._apply_to_spec(CloseSessionTxn(session_id))
                    self.broadcast.propose(CloseSessionTxn(session_id), None)

    # -- introspection (four-letter words) -----------------------------------

    def _four_letter(self, command: str) -> str:
        """Answer one diagnostic command (``ruok``/``stat``/``mntr``/``wchs``).

        Mirrors ZooKeeper's four-letter words: plain text, answerable by
        any live replica, describing only *this* replica's view.
        """
        if command == "ruok":
            return "imok"
        role = ("observer" if self.is_observer
                else "leader" if self.broadcast.is_leader else "follower")
        if command == "stat":
            lines = [
                f"node: {self.node_id}",
                f"mode: {role}",
                f"kernel: {self.config.kernel}",
                f"epoch: {self.broadcast.leadership_epoch}",
                f"zxid: {self._applied_zxid:#x}",
                f"sessions: {len(self.sessions)}",
                f"parked_reads: {len(self._parked_reads)}",
            ]
            return "\n".join(lines)
        if command == "mntr":
            lines = [
                f"zk_server_state\t{role}",
                f"zk_applied_zxid\t{self._applied_zxid}",
                f"zk_epoch\t{self.broadcast.leadership_epoch}",
                f"zk_sessions\t{len(self.sessions)}",
            ]
            obs = self.env.obs
            if obs is not None:
                lines += obs.metrics.mntr_lines(self.node_id)
            return "\n".join(lines)
        if command == "wchs":
            paths, total = self.watches.counts()
            return f"{paths} paths watched\nTotal watches: {total}"
        return f"unknown command: {command!r}"

    # -- replies -----------------------------------------------------------

    def _reply(self, client_node: str, payload: object) -> None:
        obs = self.env.obs
        if obs is not None and obs.tracer is not None \
                and isinstance(payload, ClientReply):
            # Watch pushes are keyed by session, not xid — only request
            # replies close a trace's server-side span.
            obs.tracer.mark(client_node, payload.xid, M_REPLY,
                            self.env.now, self.node_id)
        self.net.send(self.node_id, client_node, payload)

    def _reply_error(self, meta: RequestMeta, error: ZkError) -> None:
        self._reply(meta.client_node, ClientReply(
            meta.xid, False, None, to_code(error), str(error)))


# ---------------------------------------------------------------------------
# Shared txn application
# ---------------------------------------------------------------------------

def _copy_tree(tree: DataTree) -> DataTree:
    copy = DataTree()
    copy.restore(tree.snapshot())
    return copy


def _apply_txn_to_tree(tree: DataTree, txn: Txn, zxid: int, now: float,
                       events: Optional[List[StateEvent]] = None) -> Any:
    """Apply one txn; optionally collect state events. Returns the result."""
    if isinstance(txn, CreateTxn):
        actual = tree.create(txn.path, txn.data,
                             ephemeral_owner=txn.ephemeral_owner,
                             zxid=zxid, now=now)
        if events is not None:
            events.append(StateEvent(EventType.NODE_CREATED, actual, txn.data))
        return actual
    if isinstance(txn, SetDataTxn):
        stat = tree.set_data(txn.path, txn.data, version=-1, zxid=zxid, now=now)
        if events is not None:
            events.append(StateEvent(EventType.NODE_DATA_CHANGED, txn.path,
                                     txn.data))
        return stat
    if isinstance(txn, DeleteTxn):
        tree.delete(txn.path, version=-1)
        if events is not None:
            events.append(StateEvent(EventType.NODE_DELETED, txn.path))
        return None
    if isinstance(txn, MultiTxn):
        results = [
            _apply_txn_to_tree(tree, sub, zxid, now, events=events)
            for sub in txn.txns
        ]
        return results
    if isinstance(txn, CreateSessionTxn):
        return None  # session txns are handled by the server, not the tree
    if isinstance(txn, CloseSessionTxn):
        tree.kill_session(txn.session_id)
        return None
    raise ZkError(f"unknown txn: {txn!r}")
