"""Convenience builder: a ZooKeeper ensemble plus its clients on one network."""

from __future__ import annotations

from typing import List, Optional

from ..sim import Environment, LatencyModel, Network
from .client import ZkClient
from .server import ZkConfig, ZkServer

__all__ = ["ZkEnsemble"]


class ZkEnsemble:
    """``2f + 1`` ZooKeeper replicas (plus observers) on a simulated network.

    The ensemble boots with replica 0 as the established leader (no
    initial election round), matching how benchmarks bring up a healthy
    cluster; elections still run on failure.

    ``n_observers`` adds non-voting learners: they receive the committed
    stream and serve reads, but never ack proposals or vote, so read
    capacity grows without widening the write quorum.
    """

    #: client implementation handed out by :meth:`client` (EZK overrides).
    client_class = ZkClient

    def __init__(self, env: Optional[Environment] = None, n_replicas: int = 3,
                 config: Optional[ZkConfig] = None,
                 net: Optional[Network] = None, seed: int = 0,
                 latency: Optional[LatencyModel] = None,
                 name_prefix: str = "zk", n_observers: int = 0):
        if n_replicas < 1 or n_replicas % 2 == 0:
            raise ValueError("ensemble size must be odd and positive")
        if n_observers < 0:
            raise ValueError("n_observers must be non-negative")
        self.env = env or Environment()
        self.net = net or Network(self.env, latency=latency, seed=seed)
        self.config = config or ZkConfig()
        self.replica_ids = [f"{name_prefix}{i}" for i in range(n_replicas)]
        self.observer_ids = [f"{name_prefix}{n_replicas + i}"
                             for i in range(n_observers)]
        #: every state-holding node, voters first (indexes ``servers``).
        self.all_ids = self.replica_ids + self.observer_ids
        self.servers: List[ZkServer] = []
        for node_id in self.replica_ids:
            peers = [p for p in self.replica_ids if p != node_id]
            self.servers.append(
                ZkServer(self.env, self.net, node_id, peers, self.config,
                         observer_ids=self.observer_ids))
        for node_id in self.observer_ids:
            # An observer's peer list is the full voting set: whichever
            # of them leads is where its syncs and forwards go.
            self.servers.append(
                ZkServer(self.env, self.net, node_id, list(self.replica_ids),
                         self.config, is_observer=True))
        self._client_count = 0
        self._started = False

    def start(self) -> None:
        """Bootstrap the ensemble (replica 0 leads)."""
        for server in self.servers:
            server.start(self.replica_ids[0])
        self._started = True

    @property
    def leader(self) -> Optional[ZkServer]:
        for server in self.servers:
            if server.is_leader:
                return server
        return None

    def server(self, node_id: str) -> ZkServer:
        return self.servers[self.all_ids.index(node_id)]

    def _assign_replica(self) -> str:
        """Round-robin connection spread for ensemble-built clients.

        With the read-scaling knobs off this reproduces the historical
        assignment (voting replicas only, leader included) exactly. With
        ``local_reads`` on, clients spread over followers and observers
        so local reads actually land on the scaled-out capacity; the
        bootstrap leader only preps/broadcasts writes.
        """
        pool = self.all_ids
        if self.config.local_reads and len(pool) > 1:
            pool = pool[1:]
        return pool[self._client_count % len(pool)]

    def client(self, node_id: Optional[str] = None,
               session_timeout_ms: float = 2000.0,
               replica: Optional[str] = None,
               resilient: bool = False,
               cached_reads: bool = False) -> ZkClient:
        """Create a client; connection replica assigned round-robin.

        ``resilient=True`` enables the client-side session state
        machine: automatic failover with backoff, session
        re-establishment, and watch re-registration with missed-event
        synthesis (see :class:`~repro.zk.client.SessionState`).
        ``cached_reads=True`` (pair with ``ZkConfig.leases``) adds the
        lease-protected read cache: hot-key reads served locally at
        0 RTT (see :mod:`repro.zk.leases`).
        """
        if not self._started:
            raise RuntimeError("start() the ensemble before creating clients")
        if node_id is None:
            node_id = f"zkclient{self._client_count}"
        if replica is None:
            replica = self._assign_replica()
        self._client_count += 1
        return self.client_class(self.env, self.net, node_id,
                                 self.all_ids, replica=replica,
                                 session_timeout_ms=session_timeout_ms,
                                 track_zxid=self.config.local_reads,
                                 resilient=resilient,
                                 cached_reads=cached_reads)

    def trees_consistent(self) -> bool:
        """True when every live replica holds the same tree (test helper)."""
        fingerprints = {
            server.tree.fingerprint()
            for server in self.servers if server._alive
        }
        return len(fingerprints) == 1
