"""Leader-granted read leases and the client-side read cache.

PR 3 scaled reads across followers and observers, but every read still
costs one client<->replica round trip. For the Zipfian populations the
open-loop driver models, a handful of hot keys dominate that traffic —
exactly the regime where a *lease* pays: the leader grants a session a
short per-key read lease, piggybacked on an ordinary read reply, and
the client then serves ``get_data``/``exists`` for that key from its
own memory at 0 RTT until the lease expires or is revoked.

Linearizability is preserved by making writers pay instead of readers:
a write to a leased key **blocks at the leader** until every lease on
the key has been revoked (explicit revoke RPC, acked by the holder) or
has expired on the server clock plus a grace window. A cache-served
read therefore can never return a value older than a committed write —
the write could not have committed while the lease was live.

The fences, in the order they bite:

* **grant fence** — the leader refuses a grant while the key has a
  write pending (ingress-marked), in flight in the prep pipeline
  (speculative-tree mzxid ahead of the committed tree), or while the
  leadership is inside its recovery window. A granting follower
  additionally confirms the leader's view of the key's ``mzxid``
  matches its own before attaching the lease to the reply;
* **revoke fence** — monotonically increasing lease ids (epoch-scaled,
  so a new leadership can never reuse one) let a client discard a
  grant that arrives *after* its revoke raced past it on another
  channel;
* **expiry fence** — holders stop serving strictly before
  ``expires_at`` on the shared clock; the leader unblocks writers only
  at ``expires_at + grace_ms``, so a dead client that can't ack still
  can't serve past a write's commit. Session expiry deliberately does
  *not* free leases early: the fenced client may be alive-but-silent,
  so its leases run out their natural term;
* **epoch fence** — a freshly elected leader knows nothing about the
  old leadership's grants (leases are leader-soft state), so it holds
  *all* tree writes for one full ``duration_ms + grace_ms`` recovery
  window — the Chubby/GFS master-failover rule.

Everything here is inert unless ``ZkConfig.leases`` is set and the
client opted in with ``cached_reads=True``; the wire envelopes are
subclasses of the existing ones (see ``txn.py``) so default-path
message sizes — and therefore every simulated latency — are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from .data_tree import Stat
from .txn import ZxidClientRequest, ZxidReply

__all__ = [
    "LeaseConfig", "Lease", "LeaseTable", "WriteGate", "ClientReadCache",
    "LeaseClientRequest", "LeasedReply", "LeaseRequest", "LeaseGrant",
    "LeaseDeny", "LeaseRevoke", "LeaseRevokeAck", "LeaseRelease",
    "CACHE_MISS",
]


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LeaseConfig:
    """Knobs for the lease protocol (attach to ``ZkConfig.leases``)."""

    #: how long one grant lasts. Short: a dead (un-ackable) holder
    #: stalls a writer for at most this long plus grace.
    duration_ms: float = 400.0
    #: writer-side slack past ``expires_at`` covering clock handling
    #: at the holder (must be positive: holders stop serving strictly
    #: before expiry, writers resume strictly after expiry + grace).
    grace_ms: float = 50.0
    #: a key becomes lease-worthy once a replica sees this many
    #: cacheable reads for it inside one ``heat_window_ms`` window —
    #: cold keys keep the plain read path and cost no leader traffic.
    min_reads: int = 2
    heat_window_ms: float = 100.0
    #: how long a follower holds a read reply waiting for the leader's
    #: grant decision before answering plain (leader dark / election).
    grant_timeout_ms: float = 250.0

    def validate(self) -> None:
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.grace_ms <= 0:
            raise ValueError("grace_ms must be positive")
        if self.min_reads < 1:
            raise ValueError("min_reads must be >= 1")
        if self.heat_window_ms <= 0:
            raise ValueError("heat_window_ms must be positive")
        if self.grant_timeout_ms <= 0:
            raise ValueError("grant_timeout_ms must be positive")


# ---------------------------------------------------------------------------
# wire messages (all subclasses or standalone dataclasses; the base
# client/server envelopes keep their exact sizes when leases are off)
# ---------------------------------------------------------------------------


@dataclass
class LeaseClientRequest(ZxidClientRequest):
    """A cacheable read from a ``cached_reads`` session.

    The marker subclass is the client's opt-in: the serving replica may
    attach a lease to the reply. No extra fields — the grant decision
    is entirely server-side.
    """


@dataclass
class LeasedReply(ZxidReply):
    """Read reply carrying a piggybacked lease grant."""

    lease_id: int = 0
    lease_expires_at: float = 0.0
    lease_epoch: int = 0


@dataclass
class LeaseRequest:
    """Follower -> leader: ask for a grant on behalf of a read."""

    session_id: int
    path: str
    grant_key: int          # follower-local key for the parked reply
    origin_replica: str
    client_node: str        # revokes go straight to the holder
    mzxid: int              # the key's mzxid in the follower's tree


@dataclass
class LeaseGrant:
    """Leader -> follower: grant issued; attach if mzxids still agree."""

    grant_key: int
    lease_id: int
    expires_at: float
    epoch: int
    mzxid: int              # the key's mzxid in the leader's tree


@dataclass
class LeaseDeny:
    grant_key: int


@dataclass
class LeaseRevoke:
    """Leader -> client: drop the lease (a writer is waiting)."""

    path: str
    lease_id: int


@dataclass
class LeaseRevokeAck:
    """Client -> leader: lease dropped; the writer may proceed."""

    session_id: int
    path: str
    lease_id: int


@dataclass
class LeaseRelease:
    """Client -> replica -> leader: voluntary early release (sync())."""

    session_id: int
    lease_ids: Tuple[int, ...] = ()


# ---------------------------------------------------------------------------
# leader-side state
# ---------------------------------------------------------------------------


@dataclass
class Lease:
    lease_id: int
    path: str
    session_id: int
    client_node: str
    expires_at: float


@dataclass
class WriteGate:
    """One update parked behind lease revocation (leader-local)."""

    kind: str                       # "update" | "close"
    paths: Tuple[str, ...]
    waiting: Set[int]               # lease ids still unrevoked
    not_before: float               # lease expiry + grace / recovery fence
    meta: Any = None                # RequestMeta for "update" gates
    op: Any = None
    session_id: int = 0             # for "close" gates
    extension_routed: bool = False
    fired: bool = False


class LeaseTable:
    """The leader's book of grants, revocations and parked writers.

    Pure bookkeeping — no clocks, no network. The server owns the
    event scheduling and message sends; keeping the table passive makes
    the revocation races unit-testable without a simulation.
    """

    def __init__(self, config: LeaseConfig):
        config.validate()
        self.config = config
        #: path -> lease_id -> Lease (live grants; expired entries are
        #: dropped lazily on access).
        self.leases: Dict[str, Dict[int, Lease]] = {}
        self.by_session: Dict[int, Set[int]] = {}
        self._by_id: Dict[int, Lease] = {}
        #: path -> refcount of writes between ingress and prep-translate
        #: (no grants while positive: the speculative tree cannot fence
        #: a write the prep stage has not seen yet).
        self.write_pending: Dict[str, int] = {}
        #: total writes between ingress and prep-translate, pathless.
        #: Extension-intercepted ops can rewrite their write set at
        #: prep time, so servers with an op interceptor refuse grants
        #: while *any* write is in that window (see ``_leader_grant``).
        self.pipeline_refs = 0
        #: writes parked behind revocation.
        self.gates: List[WriteGate] = []
        #: new-leadership fence: no write fires before this time.
        self.recovery_until: float = 0.0
        self._next_seq = 0
        self._epoch = 1
        #: optional obs hooks (a MetricsRegistry plus the owning node's
        #: label), assigned by the server after construction — the table
        #: is pure bookkeeping and has no environment access of its own.
        self.metrics = None
        self.metrics_node = ""

    # -- leadership --------------------------------------------------------

    def reset_for_leadership(self, epoch: int, now: float,
                             fence: bool) -> None:
        """Forget everything; optionally raise the recovery fence.

        Leases are leader-soft state: grants by the old leadership are
        invisible here, so a fenced reset holds all writes for one full
        lease term — after which every old-epoch lease has expired.
        The bootstrap leader skips the fence (nobody could have granted
        anything before the first leadership).
        """
        self.leases.clear()
        self.by_session.clear()
        self._by_id.clear()
        self.write_pending.clear()
        self.pipeline_refs = 0
        self.gates = []
        self._epoch = epoch
        self._next_seq = 0
        if fence:
            self.recovery_until = (now + self.config.duration_ms
                                   + self.config.grace_ms)

    # -- grants ------------------------------------------------------------

    def grant(self, path: str, session_id: int, client_node: str,
              now: float) -> Optional[Lease]:
        """Issue a lease, or None while the path has a writer anywhere
        between ingress and commit."""
        if self.write_pending.get(path):
            if self.metrics is not None:
                self.metrics.inc("leases.denied", self.metrics_node)
            return None
        self._next_seq += 1
        # Epoch-scaled ids: monotone across leaderships, so a client's
        # stale-revoke ring can never confuse an old id with a new one.
        lease_id = self._epoch * 1_000_000 + self._next_seq
        lease = Lease(lease_id, path, session_id, client_node,
                      now + self.config.duration_ms)
        self.leases.setdefault(path, {})[lease_id] = lease
        self.by_session.setdefault(session_id, set()).add(lease_id)
        self._by_id[lease_id] = lease
        if self.metrics is not None:
            self.metrics.inc("leases.granted", self.metrics_node)
        return lease

    def active_on(self, paths, now: float) -> List[Lease]:
        """Live (unexpired) leases on any of ``paths``; prunes dead ones."""
        found: List[Lease] = []
        for path in paths:
            holders = self.leases.get(path)
            if not holders:
                continue
            for lease_id in list(holders):
                lease = holders[lease_id]
                if now >= lease.expires_at + self.config.grace_ms:
                    self._drop(lease)
                else:
                    found.append(lease)
        return found

    def all_leased_paths(self, now: float) -> Tuple[str, ...]:
        return tuple(sorted({lease.path
                             for lease in self.active_on(list(self.leases),
                                                         now)}))

    def _drop(self, lease: Lease) -> None:
        holders = self.leases.get(lease.path)
        if holders is not None:
            holders.pop(lease.lease_id, None)
            if not holders:
                del self.leases[lease.path]
        owned = self.by_session.get(lease.session_id)
        if owned is not None:
            owned.discard(lease.lease_id)
            if not owned:
                del self.by_session[lease.session_id]
        self._by_id.pop(lease.lease_id, None)

    # -- revocation --------------------------------------------------------

    def revoked(self, lease_id: int) -> List[WriteGate]:
        """A revoke ack (or voluntary release) arrived: drop the lease
        and return every gate that is now free of lease waiters."""
        lease = self._by_id.get(lease_id)
        if lease is not None:
            self._drop(lease)
            if self.metrics is not None:
                self.metrics.inc("leases.revoked_acks", self.metrics_node)
        ready = []
        for gate in self.gates:
            if not gate.fired and lease_id in gate.waiting:
                gate.waiting.discard(lease_id)
                if not gate.waiting:
                    ready.append(gate)
        return ready

    def release_session(self, session_id: int) -> List[WriteGate]:
        """Voluntarily release every lease a session holds (sync())."""
        ready: List[WriteGate] = []
        for lease_id in sorted(self.by_session.get(session_id, ())):
            ready.extend(self.revoked(lease_id))
        return ready

    def purge(self, lease_ids) -> None:
        """Force-drop leases that ran out their term unacked."""
        for lease_id in list(lease_ids):
            lease = self._by_id.get(lease_id)
            if lease is not None:
                self._drop(lease)

    def forget_session(self, session_id: int) -> None:
        """Closed-session cleanup of the *index only*.

        The leases themselves stay in the path map until natural
        expiry: a fenced client may be alive-but-silent and still
        serving, so a close must not unblock writers early.
        """
        self.by_session.pop(session_id, None)

    # -- write gating ------------------------------------------------------

    def acquire_pending(self, paths) -> None:
        self.pipeline_refs += 1
        for path in paths:
            self.write_pending[path] = self.write_pending.get(path, 0) + 1

    def release_pending(self, paths) -> None:
        self.pipeline_refs = max(0, self.pipeline_refs - 1)
        for path in paths:
            count = self.write_pending.get(path, 0) - 1
            if count > 0:
                self.write_pending[path] = count
            else:
                self.write_pending.pop(path, None)

    def open_gate(self, gate: WriteGate) -> None:
        self.gates.append(gate)

    def close_gate(self, gate: WriteGate) -> None:
        gate.fired = True
        if gate in self.gates:
            self.gates.remove(gate)

    def drain_gates(self) -> List[WriteGate]:
        """Leadership lost: every parked write dies with it."""
        gates, self.gates = self.gates, []
        for gate in gates:
            gate.fired = True
        return gates


# ---------------------------------------------------------------------------
# client-side cache
# ---------------------------------------------------------------------------

#: sentinel distinct from any legitimate cached value (None is a valid
#: ``exists`` result, so it cannot signal a miss).
CACHE_MISS = object()


class _Entry:
    __slots__ = ("data", "stat", "has_data", "lease_id", "expires_at",
                 "zxid")

    def __init__(self, data: Optional[bytes], stat: Stat, has_data: bool,
                 lease_id: int, expires_at: float, zxid: int):
        self.data = data
        self.stat = stat
        self.has_data = has_data
        self.lease_id = lease_id
        self.expires_at = expires_at
        self.zxid = zxid


class ClientReadCache:
    """Watch- and revoke-invalidated read cache, keyed by lease."""

    #: CPU cost of serving from local memory: nonzero so a closed-loop
    #: caller spinning on cache hits still advances simulated time.
    hit_cost_ms = 0.001

    def __init__(self):
        self.entries: Dict[str, _Entry] = {}
        #: recently revoked lease ids: a revoke that raced ahead of its
        #: grant (different channels, no cross-channel FIFO) must win.
        self._revoked: Set[int] = set()
        self.stats = {"hits": 0, "misses": 0, "installs": 0,
                      "revokes": 0, "expired": 0, "invalidations": 0}

    # -- lookups (0 RTT when they hit) -------------------------------------

    def _live(self, path: str, now: float) -> Optional[_Entry]:
        entry = self.entries.get(path)
        if entry is None:
            return None
        # Strictly-before: the leader frees writers at expiry + grace,
        # so a serve at exactly expires_at would already be unsafe.
        if now >= entry.expires_at:
            del self.entries[path]
            self.stats["expired"] += 1
            return None
        return entry

    def data(self, path: str, now: float):
        entry = self._live(path, now)
        if entry is None or not entry.has_data:
            self.stats["misses"] += 1
            return CACHE_MISS
        self.stats["hits"] += 1
        return (entry.data, entry.stat)

    def stat(self, path: str, now: float):
        entry = self._live(path, now)
        if entry is None:
            self.stats["misses"] += 1
            return CACHE_MISS
        self.stats["hits"] += 1
        return entry.stat

    # -- installs ----------------------------------------------------------

    def install(self, path: str, value, reply: LeasedReply,
                now: float) -> None:
        lease_id = reply.lease_id
        if lease_id in self._revoked or now >= reply.lease_expires_at:
            return
        if isinstance(value, tuple) and len(value) == 2 \
                and isinstance(value[1], Stat):
            entry = _Entry(value[0], value[1], True, lease_id,
                           reply.lease_expires_at, reply.zxid)
        elif isinstance(value, Stat):
            entry = _Entry(None, value, False, lease_id,
                           reply.lease_expires_at, reply.zxid)
        else:
            return      # not a cacheable read result
        self.entries[path] = entry
        self.stats["installs"] += 1

    # -- invalidation ------------------------------------------------------

    def revoke(self, path: str, lease_id: int) -> bool:
        """Server-initiated revoke; True when a live entry was dropped."""
        self.stats["revokes"] += 1
        self._note_revoked(lease_id)
        entry = self.entries.get(path)
        if entry is not None and entry.lease_id == lease_id:
            del self.entries[path]
            return True
        return False

    def _note_revoked(self, lease_id: int) -> None:
        self._revoked.add(lease_id)
        if len(self._revoked) > 128:
            floor = lease_id - 1024
            self._revoked = {i for i in self._revoked if i > floor}

    def drop(self, path: str) -> None:
        """Local invalidation: own write or a watch notification."""
        if self.entries.pop(path, None) is not None:
            self.stats["invalidations"] += 1

    def drop_all(self) -> List[int]:
        """Session no longer CONNECTED (or sync barrier): flush.

        Returns the dropped lease ids so callers that still have a
        working channel (sync) can volunteer a LeaseRelease and unblock
        writers early; a SUSPENDED client just lets them expire.
        """
        ids = sorted(entry.lease_id for entry in self.entries.values())
        if ids:
            self.stats["invalidations"] += len(ids)
        self.entries.clear()
        return ids
