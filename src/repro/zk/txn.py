"""Wire-level operation and transaction types for the ZooKeeper substrate.

*Operations* are what clients send; *transactions* are what the leader's
prep stage turns update operations into. Transactions are deterministic
and unconditional — all validation (version checks, existence checks,
sequential-suffix resolution) happens once at prep time, so applying a
transaction at any replica cannot fail. Failed validations become
:class:`ErrorTxn` so the zxid stream stays gapless (mirroring ZooKeeper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

__all__ = [
    # client operations
    "Op", "CreateOp", "DeleteOp", "SetDataOp", "GetDataOp", "GetChildrenOp",
    "ExistsOp", "MultiOp", "CreateSessionOp", "CloseSessionOp", "PingOp",
    "SyncOp",
    # transactions
    "Txn", "CreateTxn", "DeleteTxn", "SetDataTxn", "MultiTxn",
    "CreateSessionTxn", "CloseSessionTxn", "ErrorTxn",
    # envelopes
    "RequestMeta", "ClientRequest", "ClientReply", "WatchNotification",
    "ZxidClientRequest", "ZxidReply", "ZxidWatchNotification",
    "TxnRecord", "is_update",
]


# ---------------------------------------------------------------------------
# Client operations
# ---------------------------------------------------------------------------

class Op:
    """Marker base class for client operations."""


@dataclass
class CreateOp(Op):
    path: str
    data: bytes = b""
    ephemeral: bool = False
    sequential: bool = False


@dataclass
class DeleteOp(Op):
    path: str
    version: int = -1


@dataclass
class SetDataOp(Op):
    path: str
    data: bytes = b""
    version: int = -1


@dataclass
class GetDataOp(Op):
    path: str
    watch: bool = False


@dataclass
class GetChildrenOp(Op):
    path: str
    watch: bool = False


@dataclass
class ExistsOp(Op):
    path: str
    watch: bool = False


@dataclass
class MultiOp(Op):
    """Atomic batch of update operations (ZooKeeper ``multi``)."""

    ops: List[Op] = field(default_factory=list)


@dataclass
class CreateSessionOp(Op):
    timeout_ms: float = 6000.0
    client_id: str = ""


@dataclass
class CloseSessionOp(Op):
    pass


@dataclass
class PingOp(Op):
    pass


@dataclass
class SyncOp(Op):
    """Flush marker: a leader round-trip that produces no transaction.

    The reply carries the leader's committed zxid at the time the sync
    reached it; a zxid-tracking client then parks subsequent local reads
    until its replica has applied at least that point, which makes
    sync-then-read linearizable (every write committed before the sync
    is visible to the read).
    """


_UPDATE_OPS = (CreateOp, DeleteOp, SetDataOp, MultiOp,
               CreateSessionOp, CloseSessionOp)


def is_update(op: Op) -> bool:
    """True for operations that must flow through the ordered pipeline."""
    return isinstance(op, _UPDATE_OPS)


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------

class Txn:
    """Marker base class for replicated transactions."""


@dataclass
class CreateTxn(Txn):
    path: str               # final path (sequential suffix already resolved)
    data: bytes = b""
    ephemeral_owner: Optional[int] = None


@dataclass
class DeleteTxn(Txn):
    path: str


@dataclass
class SetDataTxn(Txn):
    path: str
    data: bytes = b""


@dataclass
class MultiTxn(Txn):
    """Atomic batch; EZK piggybacks extension results in ``result_payload``.

    ``effects`` carries non-state side effects an extension requested,
    e.g. ``("block", path)`` to defer the client's reply until ``path``
    is created (the server interprets them at apply time).
    """

    txns: List[Txn] = field(default_factory=list)
    result_payload: Any = None
    #: True when result_payload is meaningful (extensions may legitimately
    #: return None, so presence cannot be inferred from the value).
    payload_set: bool = False
    effects: List[tuple] = field(default_factory=list)


@dataclass
class CreateSessionTxn(Txn):
    session_id: int
    timeout_ms: float
    client_id: str = ""


@dataclass
class CloseSessionTxn(Txn):
    session_id: int


@dataclass
class ErrorTxn(Txn):
    """A rejected update: keeps the zxid stream gapless, carries the error."""

    code: str
    message: str = ""


# ---------------------------------------------------------------------------
# Envelopes
# ---------------------------------------------------------------------------

@dataclass
class RequestMeta:
    """Routing info a transaction carries so the right replica replies."""

    origin_replica: str     # replica the client is connected to
    client_node: str        # network id of the client
    session_id: int
    xid: int                # client-assigned request id


@dataclass
class ClientRequest:
    session_id: int
    xid: int
    op: Op


@dataclass
class ClientReply:
    xid: int
    ok: bool
    value: Any = None
    error_code: str = ""
    error_message: str = ""

    # Deliberately *unannotated*: a plain class attribute, not a
    # dataclass field, so plain replies keep their exact wire size while
    # the client inbox can read ``msg.zxid`` without a getattr-miss on
    # every non-zxid reply. ZxidReply shadows it with a real field.
    zxid = 0


@dataclass
class WatchNotification:
    """Server -> client push when an armed watch fires."""

    session_id: int
    event_type: str
    path: str

    # Plain class attribute (see ClientReply.zxid): keeps the base
    # notification's wire size while ZxidWatchNotification overrides.
    zxid = 0


# ---------------------------------------------------------------------------
# zxid-consistent read-path envelopes (ZkConfig.local_reads)
# ---------------------------------------------------------------------------
# Subclasses rather than extra fields on the base envelopes: the figure
# benchmarks must stay bit-identical with the read-scaling flags off, and
# even one extra wire byte per message would shift every simulated
# latency. The base types keep their exact sizes; these carry the zxid
# only on sessions that opted into session-consistent local reads.

@dataclass
class ZxidClientRequest(ClientRequest):
    """Request stamped with the session's last-seen zxid.

    A replica whose applied state lags ``last_zxid`` parks the read
    until it catches up (ZooKeeper's session consistency).
    """

    last_zxid: int = 0


@dataclass
class ZxidReply(ClientReply):
    """Reply stamped with the zxid the answering replica spoke for."""

    zxid: int = 0


@dataclass
class ZxidWatchNotification(WatchNotification):
    """Watch push stamped with the zxid of the triggering transaction,
    so a client that fails over after the notification still reads a
    state that includes the change it was notified about."""

    zxid: int = 0


@dataclass
class TxnRecord:
    """One slot in the replicated log.

    Records are immutable once appended, so the wire-size estimate is
    computed once and reused — the leader ships the same record to every
    follower (and again during syncs), which made the recursive size
    walk one of the hottest paths in the simulation.
    """

    zxid: int
    txn: Txn
    meta: Optional[RequestMeta] = None
    _wire_size: Optional[int] = field(default=None, repr=False, compare=False)

    def wire_size(self) -> int:
        size = self._wire_size
        if size is None:
            from ..sim import estimate_size
            # Mirrors the generic dataclass estimate for the real fields:
            # 2 (tag) + 8 (zxid) + txn + meta.
            size = 10 + estimate_size(self.txn) + estimate_size(self.meta)
            self._wire_size = size
        return size
