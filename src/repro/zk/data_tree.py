"""The ZooKeeper data model: a hierarchical tree of versioned znodes.

Supports the semantics the paper's recipes rely on: per-node data
versions (conditional writes), ephemeral nodes (deleted when the owning
session dies), sequential nodes (server-assigned monotone suffixes),
and child listings. The tree is deterministic: applying the same
transaction sequence always produces the same state, which both the Zab
pipeline and the BFT comparison tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .errors import (BadArgumentsError, NoChildrenForEphemeralsError,
                     NodeExistsError, NoNodeError, NotEmptyError,
                     BadVersionError)

__all__ = ["Stat", "ZNode", "DataTree", "split_path", "parent_of", "validate_path"]


#: Paths that already passed validation — recipes hammer the same few
#: hundred paths millions of times, so re-splitting each one is pure
#: waste. Bounded; cleared wholesale if a workload somehow floods it.
_VALID_PATHS: set = set()
_VALID_PATHS_MAX = 65536


def validate_path(path: str) -> None:
    """Reject malformed paths (must be absolute, no empty or dot components)."""
    if path in _VALID_PATHS:
        return
    if not path or path[0] != "/":
        raise BadArgumentsError(f"path must be absolute: {path!r}")
    if path != "/" and path.endswith("/"):
        raise BadArgumentsError(f"path must not end with '/': {path!r}")
    for component in path.split("/")[1:]:
        if path == "/":
            break
        if not component or component in (".", ".."):
            raise BadArgumentsError(f"bad path component in {path!r}")
    if len(_VALID_PATHS) >= _VALID_PATHS_MAX:
        _VALID_PATHS.clear()
    _VALID_PATHS.add(path)


def parent_of(path: str) -> str:
    """Parent path of ``path`` ('/a/b' -> '/a', '/a' -> '/')."""
    if path == "/":
        raise BadArgumentsError("the root has no parent")
    head, _sep, _tail = path.rpartition("/")
    return head or "/"


def split_path(path: str) -> Tuple[str, str]:
    """Return (parent, name)."""
    if path == "/":
        raise BadArgumentsError("cannot split the root path")
    head, _sep, tail = path.rpartition("/")
    return (head or "/", tail)


@dataclass
class Stat:
    """Per-znode metadata, mirroring ZooKeeper's Stat struct."""

    czxid: int = 0
    mzxid: int = 0
    ctime: float = 0.0
    mtime: float = 0.0
    version: int = 0
    cversion: int = 0
    ephemeral_owner: Optional[int] = None
    data_length: int = 0
    num_children: int = 0

    def copy(self) -> "Stat":
        return Stat(self.czxid, self.mzxid, self.ctime, self.mtime,
                    self.version, self.cversion, self.ephemeral_owner,
                    self.data_length, self.num_children)


@dataclass
class ZNode:
    """One node of the tree."""

    data: bytes = b""
    stat: Stat = field(default_factory=Stat)
    children: Set[str] = field(default_factory=set)
    #: Monotone counter feeding sequential-child suffixes.
    sequence_counter: int = 0

    @property
    def is_ephemeral(self) -> bool:
        return self.stat.ephemeral_owner is not None


class DataTree:
    """The replicated state: path -> znode, with ephemeral bookkeeping."""

    def __init__(self):
        self._nodes: Dict[str, ZNode] = {"/": ZNode()}
        #: session id -> set of ephemeral paths owned by that session.
        self._ephemerals: Dict[int, Set[str]] = {}

    # -- queries ---------------------------------------------------------

    def __contains__(self, path: str) -> bool:
        return path in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, path: str) -> ZNode:
        node = self._nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        return node

    def exists(self, path: str) -> Optional[Stat]:
        """Stat of ``path``, or None when absent (never raises NoNode)."""
        validate_path(path)
        node = self._nodes.get(path)
        return node.stat.copy() if node is not None else None

    def get_data(self, path: str) -> Tuple[bytes, Stat]:
        validate_path(path)
        node = self.node(path)
        return (node.data, node.stat.copy())

    def get_children(self, path: str) -> List[str]:
        validate_path(path)
        return sorted(self.node(path).children)

    def ephemerals_of(self, session_id: int) -> List[str]:
        return sorted(self._ephemerals.get(session_id, ()))

    def paths(self) -> Iterable[str]:
        return self._nodes.keys()

    # -- sequential naming ----------------------------------------------

    def next_sequential_path(self, path: str) -> str:
        """Resolve the final path of a sequential create (does not mutate)."""
        parent_path, _name = split_path(path)
        parent = self.node(parent_path)
        return f"{path}{parent.sequence_counter:010d}"

    # -- mutations ---------------------------------------------------------

    def create(self, path: str, data: bytes = b"",
               ephemeral_owner: Optional[int] = None,
               sequential: bool = False,
               zxid: int = 0, now: float = 0.0) -> str:
        """Create a znode; returns the actual path (suffix-resolved if sequential)."""
        validate_path(path)
        if not isinstance(data, bytes):
            raise BadArgumentsError("znode data must be bytes")
        parent_path, _name = split_path(path)
        parent = self._nodes.get(parent_path)
        if parent is None:
            raise NoNodeError(f"parent missing: {parent_path}")
        if parent.is_ephemeral:
            raise NoChildrenForEphemeralsError(parent_path)
        if sequential:
            actual = f"{path}{parent.sequence_counter:010d}"
            parent.sequence_counter += 1
        else:
            actual = path
        if actual in self._nodes:
            raise NodeExistsError(actual)

        stat = Stat(czxid=zxid, mzxid=zxid, ctime=now, mtime=now,
                    ephemeral_owner=ephemeral_owner, data_length=len(data))
        self._nodes[actual] = ZNode(data=data, stat=stat)
        _parent, name = split_path(actual)
        parent.children.add(name)
        parent.stat.cversion += 1
        parent.stat.num_children = len(parent.children)
        if ephemeral_owner is not None:
            self._ephemerals.setdefault(ephemeral_owner, set()).add(actual)
        return actual

    def set_data(self, path: str, data: bytes, version: int = -1,
                 zxid: int = 0, now: float = 0.0) -> Stat:
        """Overwrite data; ``version`` of -1 means unconditional."""
        validate_path(path)
        if not isinstance(data, bytes):
            raise BadArgumentsError("znode data must be bytes")
        node = self.node(path)
        if version != -1 and node.stat.version != version:
            raise BadVersionError(
                f"{path}: expected v{version}, at v{node.stat.version}")
        node.data = data
        node.stat.version += 1
        node.stat.mzxid = zxid
        node.stat.mtime = now
        node.stat.data_length = len(data)
        return node.stat.copy()

    def delete(self, path: str, version: int = -1) -> None:
        """Delete a childless znode; ``version`` of -1 means unconditional."""
        validate_path(path)
        if path == "/":
            raise BadArgumentsError("cannot delete the root")
        node = self.node(path)
        if node.children:
            raise NotEmptyError(path)
        if version != -1 and node.stat.version != version:
            raise BadVersionError(
                f"{path}: expected v{version}, at v{node.stat.version}")
        del self._nodes[path]
        parent_path, name = split_path(path)
        parent = self._nodes[parent_path]
        parent.children.discard(name)
        parent.stat.cversion += 1
        parent.stat.num_children = len(parent.children)
        owner = node.stat.ephemeral_owner
        if owner is not None:
            owned = self._ephemerals.get(owner)
            if owned is not None:
                owned.discard(path)
                if not owned:
                    del self._ephemerals[owner]

    def kill_session(self, session_id: int) -> List[str]:
        """Delete every ephemeral owned by ``session_id``; returns the paths.

        Deletion order is deepest-first so parents never block on children.
        """
        doomed = sorted(self._ephemerals.get(session_id, ()),
                        key=lambda p: (-p.count("/"), p))
        for path in doomed:
            self.delete(path)
        return doomed

    # -- snapshot / restore (state transfer) ----------------------------------

    def snapshot(self) -> dict:
        """Deep-copy the tree for state transfer to a recovering replica."""
        return {
            "nodes": {
                path: (node.data, node.stat.copy(), set(node.children),
                       node.sequence_counter)
                for path, node in self._nodes.items()
            },
        }

    def restore(self, snapshot: dict) -> None:
        self._nodes = {}
        self._ephemerals = {}
        for path, (data, stat, children, seq) in snapshot["nodes"].items():
            node = ZNode(data=data, stat=stat.copy(),
                         children=set(children), sequence_counter=seq)
            self._nodes[path] = node
            if stat.ephemeral_owner is not None:
                self._ephemerals.setdefault(
                    stat.ephemeral_owner, set()).add(path)

    def fingerprint(self) -> int:
        """Order-insensitive digest for replica-consistency assertions."""
        acc = 0
        for path, node in self._nodes.items():
            acc ^= hash((path, node.data, node.stat.version,
                         node.stat.cversion, node.stat.ephemeral_owner))
        return acc
