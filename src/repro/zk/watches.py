"""One-shot watches, mirroring ZooKeeper's notification mechanism.

Watches live at the replica a client is connected to. A watch is set as a
side effect of a read (``exists``/``get_data`` set data watches;
``get_children`` sets child watches) and fires at most once; re-arming
requires a new read. Extensible ZooKeeper (EZK) hooks
:meth:`WatchManager.trigger` so the extension manager can intercept the
event and suppress the client notification (§5.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Set, Tuple

__all__ = ["EventType", "WatchEvent", "WatchManager"]


class EventType(str, Enum):
    """State-change event kinds a watch can report."""

    NODE_CREATED = "NODE_CREATED"
    NODE_DELETED = "NODE_DELETED"
    NODE_DATA_CHANGED = "NODE_DATA_CHANGED"
    NODE_CHILDREN_CHANGED = "NODE_CHILDREN_CHANGED"


@dataclass(frozen=True)
class WatchEvent:
    """Notification payload delivered to a watching client."""

    event_type: EventType
    path: str


class WatchManager:
    """Tracks (path -> watcher session ids) for data and child watches."""

    def __init__(self):
        self._data_watches: Dict[str, Set[int]] = {}
        self._child_watches: Dict[str, Set[int]] = {}

    # -- registration ----------------------------------------------------

    def add_data_watch(self, path: str, session_id: int) -> None:
        """Arm a data watch (covers create, delete, and data change)."""
        self._data_watches.setdefault(path, set()).add(session_id)

    def add_child_watch(self, path: str, session_id: int) -> None:
        """Arm a child watch (covers child create/delete under ``path``)."""
        self._child_watches.setdefault(path, set()).add(session_id)

    def remove_session(self, session_id: int) -> None:
        """Drop every watch owned by a dead session."""
        for table in (self._data_watches, self._child_watches):
            empty = []
            for path, owners in table.items():
                owners.discard(session_id)
                if not owners:
                    empty.append(path)
            for path in empty:
                del table[path]

    def counts(self) -> Tuple[int, int]:
        """(distinct watched paths, total registrations) across both kinds.

        Backs the ``wchs`` introspection command; watches are replica-
        local, so this is the answering replica's view only.
        """
        paths = set(self._data_watches) | set(self._child_watches)
        total = (sum(len(owners) for owners in self._data_watches.values())
                 + sum(len(owners) for owners in self._child_watches.values()))
        return len(paths), total

    def data_watchers(self, path: str) -> Set[int]:
        return set(self._data_watches.get(path, ()))

    def child_watchers(self, path: str) -> Set[int]:
        return set(self._child_watches.get(path, ()))

    # -- firing ------------------------------------------------------------

    def trigger(self, path: str,
                event_type: EventType) -> List[Tuple[int, WatchEvent]]:
        """Fire and clear watches for one state change.

        Returns (session_id, event) pairs for the *node-level* watchers;
        parent child-watch notifications are produced by
        :meth:`trigger_children` so callers can distinguish the two.
        """
        event = WatchEvent(event_type, path)
        watchers = self._data_watches.pop(path, set())
        return [(session_id, event) for session_id in sorted(watchers)]

    def trigger_children(self, parent: str) -> List[Tuple[int, WatchEvent]]:
        """Fire and clear child watches on ``parent``."""
        event = WatchEvent(EventType.NODE_CHILDREN_CHANGED, parent)
        watchers = self._child_watches.pop(parent, set())
        return [(session_id, event) for session_id in sorted(watchers)]
