"""Client sessions: liveness tracking and ephemeral-node cleanup.

Session state is part of the replicated state machine — session creation
and closure flow through the ordered transaction pipeline, so every
replica agrees on which sessions exist and ephemeral cleanup happens
consistently. Expiry detection, however, is a *leader* duty: the leader
tracks heartbeats and proposes a ``CloseSessionTxn`` when a session goes
quiet (mirroring ZooKeeper's session tracker).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Session", "SessionTable", "HeartbeatTracker",
           "ConsistencyTracker"]


@dataclass
class Session:
    """Replicated session record."""

    session_id: int
    timeout_ms: float
    client_id: str = ""
    closed: bool = False


class SessionTable:
    """Deterministic, replicated session registry (applied via txns)."""

    def __init__(self):
        self._sessions: Dict[int, Session] = {}

    def create(self, session_id: int, timeout_ms: float,
               client_id: str = "") -> Session:
        session = Session(session_id, timeout_ms, client_id)
        self._sessions[session_id] = session
        return session

    def close(self, session_id: int) -> Optional[Session]:
        session = self._sessions.pop(session_id, None)
        if session is not None:
            session.closed = True
        return session

    def get(self, session_id: int) -> Optional[Session]:
        return self._sessions.get(session_id)

    def __contains__(self, session_id: int) -> bool:
        return session_id in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    def ids(self) -> List[int]:
        return sorted(self._sessions)

    def snapshot(self) -> dict:
        return {
            sid: (s.timeout_ms, s.client_id)
            for sid, s in self._sessions.items()
        }

    def restore(self, snapshot: dict) -> None:
        self._sessions = {
            sid: Session(sid, timeout_ms, client_id)
            for sid, (timeout_ms, client_id) in snapshot.items()
        }


@dataclass
class HeartbeatTracker:
    """Leader-local view of session liveness (not replicated).

    The leader calls :meth:`touch` on every request or ping from a session
    and periodically asks :meth:`expired` which sessions went silent.
    """

    _last_seen: Dict[int, float] = field(default_factory=dict)
    _timeouts: Dict[int, float] = field(default_factory=dict)

    def track(self, session_id: int, timeout_ms: float, now: float) -> None:
        self._timeouts[session_id] = timeout_ms
        self._last_seen[session_id] = now

    def touch(self, session_id: int, now: float) -> None:
        if session_id in self._timeouts:
            self._last_seen[session_id] = now

    def forget(self, session_id: int) -> None:
        self._last_seen.pop(session_id, None)
        self._timeouts.pop(session_id, None)

    def expired(self, now: float) -> List[int]:
        """Sessions whose silence exceeds their timeout."""
        return sorted(
            sid for sid, seen in self._last_seen.items()
            if now - seen > self._timeouts[sid])


@dataclass
class ConsistencyTracker:
    """Replica-local floor of the highest zxid served to each session.

    Session consistency has two halves. The client tracks the last zxid
    it has *seen* and stamps it on requests, which carries the floor
    across a fail-over to another replica. This tracker is the server's
    half: each replica remembers the highest zxid it has answered a
    session with, so reads from that session never travel backwards in
    time even if a (buggy or restarted) client stops stamping requests.
    The floor is advisory, per-replica state — it is *not* replicated,
    so it never appears in tree fingerprints or sync payloads.
    """

    _floors: Dict[int, int] = field(default_factory=dict)

    def note(self, session_id: int, zxid: int) -> None:
        """Record that ``session_id`` was answered at ``zxid``."""
        if zxid > self._floors.get(session_id, 0):
            self._floors[session_id] = zxid

    def floor(self, session_id: int) -> int:
        """Lowest zxid a read for ``session_id`` may be served at."""
        return self._floors.get(session_id, 0)

    def forget(self, session_id: int) -> None:
        self._floors.pop(session_id, None)
