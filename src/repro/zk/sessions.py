"""Client sessions: liveness tracking and ephemeral-node cleanup.

Session state is part of the replicated state machine — session creation
and closure flow through the ordered transaction pipeline, so every
replica agrees on which sessions exist and ephemeral cleanup happens
consistently. Expiry detection, however, is a *leader* duty: the leader
tracks heartbeats and proposes a ``CloseSessionTxn`` when a session goes
quiet (mirroring ZooKeeper's session tracker).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

__all__ = ["Session", "SessionTable", "HeartbeatTracker", "ExpiryClock",
           "ConsistencyTracker"]


@dataclass
class Session:
    """Replicated session record."""

    session_id: int
    timeout_ms: float
    client_id: str = ""
    closed: bool = False


class SessionTable:
    """Deterministic, replicated session registry (applied via txns).

    Closed session ids are remembered (not just dropped): expiry
    fencing must distinguish "this session was closed" — reject with
    ``SESSION_EXPIRED`` — from "this replica has not applied the
    session's creation yet", where rejecting would fence a perfectly
    healthy client talking to a lagging replica. Session ids are
    creation zxids, so the closed set only ever grows within a run;
    its memory is bounded by total session churn, like ZooKeeper's own
    committed close log.
    """

    def __init__(self):
        self._sessions: Dict[int, Session] = {}
        self._closed_ids: Set[int] = set()
        #: called with the session id when a close applies (first copy
        #: only). The lease table hangs its grant-index cleanup here so
        #: closed sessions cannot accumulate bookkeeping.
        self.on_close: Optional[Callable[[int], None]] = None
        #: optional obs hooks (a MetricsRegistry plus the owning node's
        #: label), assigned by the server — the table has no env access.
        self.metrics = None
        self.metrics_node = ""

    def create(self, session_id: int, timeout_ms: float,
               client_id: str = "") -> Session:
        session = Session(session_id, timeout_ms, client_id)
        self._sessions[session_id] = session
        if self.metrics is not None:
            self.metrics.inc("sessions.created", self.metrics_node)
        return session

    def close(self, session_id: int) -> Optional[Session]:
        session = self._sessions.pop(session_id, None)
        if session is not None:
            session.closed = True
            self._closed_ids.add(session_id)
            if self.metrics is not None:
                self.metrics.inc("sessions.closed", self.metrics_node)
            if self.on_close is not None:
                self.on_close(session_id)
        return session

    def get(self, session_id: int) -> Optional[Session]:
        return self._sessions.get(session_id)

    def is_closed(self, session_id: int) -> bool:
        """True when this replica has applied the session's close."""
        return session_id in self._closed_ids

    def __contains__(self, session_id: int) -> bool:
        return session_id in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    def ids(self) -> List[int]:
        return sorted(self._sessions)

    def snapshot(self) -> dict:
        return {
            "open": {
                sid: (s.timeout_ms, s.client_id)
                for sid, s in self._sessions.items()
            },
            "closed": sorted(self._closed_ids),
        }

    def restore(self, snapshot: dict) -> None:
        if "open" in snapshot or "closed" in snapshot:
            open_sessions = snapshot.get("open", {})
            self._closed_ids = set(snapshot.get("closed", ()))
        else:
            # Legacy format: a bare {sid: (timeout, client_id)} mapping.
            open_sessions = snapshot
            self._closed_ids = set()
        self._sessions = {
            sid: Session(sid, timeout_ms, client_id)
            for sid, (timeout_ms, client_id) in open_sessions.items()
        }


@dataclass
class HeartbeatTracker:
    """Leader-local view of session liveness (not replicated).

    The leader calls :meth:`touch` on every request or ping from a session
    and periodically asks :meth:`expired` which sessions went silent.
    """

    _last_seen: Dict[int, float] = field(default_factory=dict)
    _timeouts: Dict[int, float] = field(default_factory=dict)

    def track(self, session_id: int, timeout_ms: float, now: float) -> None:
        self._timeouts[session_id] = timeout_ms
        self._last_seen[session_id] = now

    def touch(self, session_id: int, now: float) -> None:
        if session_id in self._timeouts:
            self._last_seen[session_id] = now

    def forget(self, session_id: int) -> None:
        self._last_seen.pop(session_id, None)
        self._timeouts.pop(session_id, None)

    def expired(self, now: float) -> List[int]:
        """Sessions whose silence exceeds their timeout."""
        return sorted(
            sid for sid, seen in self._last_seen.items()
            if now - seen > self._timeouts[sid])


class ExpiryClock:
    """Bucketed session-expiry tracker (ZooKeeper's ExpiryQueue shape).

    Same contract as :class:`HeartbeatTracker` — ``track``/``touch``/
    ``forget``/``expired`` with the exact strict predicate
    ``now - seen > timeout`` — but a sweep no longer scans every
    session. Deadlines are grouped into buckets quantized to the sweep
    tick: ``expired(now)`` visits only the buckets whose quantized
    deadline has passed, so a sweep costs O(due + stale) instead of
    O(sessions). A ``touch`` re-buckets the session and leaves the old
    entry behind to be lazily discarded when its bucket comes due
    (entries are per-session-per-bucket, so stale work is bounded by
    the number of touches, exactly like ZooKeeper's ExpiryQueue).

    The quantization affects only *when a bucket is inspected*, never
    the reported expiry decision: each session's exact deadline is kept
    and checked, so results are identical to the naive scan at every
    sweep (buckets are inspected at or after the deadline they cover,
    and sweeps themselves are the only observers).

    :meth:`rebase` backs the new-leader / post-pause semantics: every
    tracked session is granted one fresh full timeout, so sessions that
    were silent through an election window (their pings had no leader
    to reach) are not mass-expired the moment a leader returns.
    """

    def __init__(self, tick_ms: float = 100.0):
        if tick_ms <= 0:
            raise ValueError("tick_ms must be positive")
        self._tick = tick_ms
        self._timeouts: Dict[int, float] = {}
        self._deadlines: Dict[int, float] = {}
        #: quantized deadline -> session ids whose *latest* deadline
        #: may fall in this bucket (stale entries discarded lazily).
        self._buckets: Dict[float, Set[int]] = {}

    def _quantize(self, deadline: float) -> float:
        return math.ceil(deadline / self._tick) * self._tick

    def _enqueue(self, session_id: int, deadline: float) -> None:
        self._deadlines[session_id] = deadline
        self._buckets.setdefault(self._quantize(deadline),
                                 set()).add(session_id)

    def track(self, session_id: int, timeout_ms: float, now: float) -> None:
        self._timeouts[session_id] = timeout_ms
        self._enqueue(session_id, now + timeout_ms)

    def touch(self, session_id: int, now: float) -> None:
        if session_id in self._timeouts:
            self._enqueue(session_id, now + self._timeouts[session_id])

    def forget(self, session_id: int) -> None:
        self._timeouts.pop(session_id, None)
        self._deadlines.pop(session_id, None)

    def rebase(self, now: float) -> None:
        """Grant every tracked session a fresh full timeout from ``now``."""
        for session_id, timeout_ms in self._timeouts.items():
            self._enqueue(session_id, now + timeout_ms)

    def expired(self, now: float) -> List[int]:
        """Sessions whose silence exceeds their timeout (sorted)."""
        due: List[int] = []
        horizon = self._quantize(now)
        for key in [k for k in self._buckets if k <= horizon]:
            bucket = self._buckets[key]
            for session_id in list(bucket):
                deadline = self._deadlines.get(session_id)
                if deadline is None or self._quantize(deadline) != key:
                    bucket.discard(session_id)   # forgotten or re-bucketed
                elif deadline < now:
                    due.append(session_id)
            if not bucket:
                del self._buckets[key]
        return sorted(due)

    def __len__(self) -> int:
        return len(self._timeouts)


@dataclass
class ConsistencyTracker:
    """Replica-local floor of the highest zxid served to each session.

    Session consistency has two halves. The client tracks the last zxid
    it has *seen* and stamps it on requests, which carries the floor
    across a fail-over to another replica. This tracker is the server's
    half: each replica remembers the highest zxid it has answered a
    session with, so reads from that session never travel backwards in
    time even if a (buggy or restarted) client stops stamping requests.
    The floor is advisory, per-replica state — it is *not* replicated,
    so it never appears in tree fingerprints or sync payloads.
    """

    _floors: Dict[int, int] = field(default_factory=dict)

    def note(self, session_id: int, zxid: int) -> None:
        """Record that ``session_id`` was answered at ``zxid``."""
        if zxid > self._floors.get(session_id, 0):
            self._floors[session_id] = zxid

    def floor(self, session_id: int) -> int:
        """Lowest zxid a read for ``session_id`` may be served at."""
        return self._floors.get(session_id, 0)

    def forget(self, session_id: int) -> None:
        self._floors.pop(session_id, None)
