"""ZooKeeper-style error taxonomy.

Errors cross the simulated wire as small string codes (see
:func:`to_code` / :func:`from_code`) so replies stay cheap to size.
"""

from __future__ import annotations

__all__ = [
    "ZkError",
    "NoNodeError",
    "NodeExistsError",
    "BadVersionError",
    "NotEmptyError",
    "NoChildrenForEphemeralsError",
    "SessionExpiredError",
    "ConnectionLossError",
    "BadArgumentsError",
    "to_code",
    "from_code",
]


class ZkError(Exception):
    """Base class for all coordination-service errors."""

    code = "ZK_ERROR"


class NoNodeError(ZkError):
    """The referenced znode does not exist."""

    code = "NO_NODE"


class NodeExistsError(ZkError):
    """A znode already exists at the given path."""

    code = "NODE_EXISTS"


class BadVersionError(ZkError):
    """A conditional update's expected version did not match."""

    code = "BAD_VERSION"


class NotEmptyError(ZkError):
    """Cannot delete a znode that still has children."""

    code = "NOT_EMPTY"


class NoChildrenForEphemeralsError(ZkError):
    """Ephemeral znodes cannot have children."""

    code = "NO_CHILDREN_FOR_EPHEMERALS"


class SessionExpiredError(ZkError):
    """The client session is gone; ephemerals have been reaped."""

    code = "SESSION_EXPIRED"


class ConnectionLossError(ZkError):
    """The replica the client was talking to went away mid-request."""

    code = "CONNECTION_LOSS"


class BadArgumentsError(ZkError):
    """Malformed request (bad path, bad parameters)."""

    code = "BAD_ARGUMENTS"


_BY_CODE = {
    cls.code: cls
    for cls in (
        ZkError,
        NoNodeError,
        NodeExistsError,
        BadVersionError,
        NotEmptyError,
        NoChildrenForEphemeralsError,
        SessionExpiredError,
        ConnectionLossError,
        BadArgumentsError,
    )
}


def to_code(error: ZkError) -> str:
    """Serialize an error for the wire."""
    return error.code


def from_code(code: str, message: str = "") -> ZkError:
    """Reconstruct an error instance from its wire code.

    Unknown codes (e.g. extension-layer errors tunnelled through the ZK
    reply path) come back as a plain :class:`ZkError` whose instance
    ``code`` preserves the original wire code.
    """
    cls = _BY_CODE.get(code)
    if cls is not None:
        return cls(message or code)
    error = ZkError(message or code)
    error.code = code
    return error
