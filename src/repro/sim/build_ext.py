"""Optional compiled build of the calendar-queue hot loop.

The calendar queue (:mod:`repro.sim._calqueue`) is written to compile
cleanly with **mypyc** or **Cython**: slotted attributes, tuple entries,
no closures on the hot path. Neither compiler is a dependency — on a
box that has one installed, running::

    PYTHONPATH=src python -m repro.sim.build_ext

drops a native extension next to ``_calqueue.py``. Python's import
machinery prefers the extension suffix over ``.py``, so every
subsequent run picks up the compiled loop transparently — no flags, no
config. ``repro.sim.kernel_backend()`` reports which one is live
('compiled' vs 'pure'), and the wallclock kernel rows record it.

On a box with neither compiler this module is a no-op that says so and
exits cleanly; the pure-python kernel is the supported baseline and all
committed numbers are measured with it.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

__all__ = ["build", "main"]

_SIM_DIR = Path(__file__).resolve().parent
_TARGET = _SIM_DIR / "_calqueue.py"


def _have(module: str) -> bool:
    import importlib.util
    return importlib.util.find_spec(module) is not None


def _run(cmd: list, verbose: bool) -> bool:
    if verbose:
        print(f"  $ {' '.join(cmd)}")
    proc = subprocess.run(cmd, cwd=_SIM_DIR, capture_output=True, text=True)
    if proc.returncode != 0 and verbose:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
    return proc.returncode == 0


def build(verbose: bool = True) -> str:
    """Try to compile the hot loop; returns 'mypyc', 'cython', or 'pure'.

    'pure' means no compiler was available (or compilation failed) and
    the interpreted module remains in charge — never an error.
    """
    if _have("mypyc"):
        if _run([sys.executable, "-m", "mypyc", _TARGET.name],
                verbose=verbose):
            if verbose:
                print("compiled _calqueue with mypyc")
            return "mypyc"
        if verbose:
            print("mypyc build failed; falling back")
    if _have("Cython"):
        if _run([sys.executable, "-m", "cython", "-3", _TARGET.name],
                verbose=verbose) and _run(
                ["cythonize", "-i", _TARGET.name], verbose=verbose):
            if verbose:
                print("compiled _calqueue with Cython")
            return "cython"
        if verbose:
            print("Cython build failed; falling back")
    if verbose:
        print("no extension compiler available (mypyc/Cython); "
              "keeping the pure-python kernel")
    return "pure"


def main() -> int:
    result = build(verbose=True)
    from . import kernel_backend
    print(f"active backend next run: "
          f"{'compiled' if result != 'pure' else kernel_backend()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
