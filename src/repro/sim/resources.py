"""Serial resources: model a replica's CPU (or disk) as a FIFO server.

Coordination-service replicas process the request path on effectively one
thread (ZooKeeper's request-processor chain, BFT-SMaRt's ordered delivery
thread). Modelling that path as a FIFO queue with per-item service times
is what reproduces the paper's saturation throughput and the latency
growth under load in Figures 6–13.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from .environment import Environment
from .events import Event

__all__ = ["FifoResource"]


class FifoResource:
    """A single server that processes submitted work items in FIFO order.

    ``submit(cost_ms)`` returns an event that triggers once the item has
    been serviced. Utilization statistics are tracked so benchmarks can
    report saturation.
    """

    def __init__(self, env: Environment, name: str = "cpu"):
        self.env = env
        self.name = name
        self._queue: Deque[Tuple[float, Event]] = deque()
        self._busy = False
        self.busy_ms = 0.0
        self.items_served = 0

    @property
    def queue_length(self) -> int:
        return len(self._queue) + (1 if self._busy else 0)

    def submit(self, cost_ms: float, value=None) -> Event:
        """Enqueue a work item taking ``cost_ms``; returns completion event."""
        if cost_ms < 0:
            raise ValueError(f"negative cost: {cost_ms!r}")
        done = Event(self.env)
        done._pending_value = value
        self._queue.append((cost_ms, done))
        if not self._busy:
            self._serve_next()
        return done

    def _serve_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        cost_ms, done = self._queue.popleft()
        self.busy_ms += cost_ms
        self.items_served += 1
        # Lightweight completion timer: no Timeout event + closure pair.
        self.env.defer(cost_ms, self._finish, done)

    def _finish(self, done: Event) -> None:
        done.succeed(getattr(done, "_pending_value", None))
        self._serve_next()

    def utilization(self, elapsed_ms: float) -> float:
        """Fraction of ``elapsed_ms`` this resource spent busy."""
        if elapsed_ms <= 0:
            return 0.0
        return min(1.0, self.busy_ms / elapsed_ms)
