"""Simulated message-passing network with latency and byte accounting.

The network is the only channel between simulated nodes (replicas and
clients). It provides:

* a configurable latency model (propagation base + transmission time
  proportional to message size, with optional deterministic jitter),
* per-node accounting of bytes/messages sent — the paper's Figures 8
  and 10 report *data sent by clients per operation*, which we compute
  from these counters,
* fault injection: node crashes, link partitions, and probabilistic drops
  (deterministic under a fixed seed).
"""

from __future__ import annotations

import dataclasses
import operator
import random
from collections import defaultdict
from typing import Any, Callable, Dict, Iterable, Optional

from .environment import Environment

__all__ = ["LatencyModel", "Network", "TrafficRule", "estimate_size",
           "MESSAGE_HEADER_BYTES"]

#: Fixed per-message framing overhead (Ethernet + IP + TCP headers, rounded).
MESSAGE_HEADER_BYTES = 66


def _str_size(obj: str) -> int:
    # ASCII (the overwhelming case: paths, node names, error codes)
    # encodes to exactly len(obj) bytes — skip the encode allocation.
    if obj.isascii():
        return 4 + len(obj)
    return 4 + len(obj.encode("utf-8"))


def _container_size(obj) -> int:
    # Inlined per-item dispatch: get_children replies carry hundreds of
    # name strings, so the per-item estimate_size frame adds up.
    total = 4
    sizers = _SIZERS
    for item in obj:
        sizer = sizers.get(item.__class__)
        total += sizer(item) if sizer is not None else estimate_size(item)
    return total


def _dict_size(obj) -> int:
    return 4 + sum(estimate_size(k) + estimate_size(v) for k, v in obj.items())


#: Exact-type dispatch table for :func:`estimate_size`. Message payloads
#: are overwhelmingly a handful of primitive and dataclass types; one
#: dict lookup replaces the original isinstance ladder, and dataclass
#: types get a per-type sizer installed on first sight (memoizing the
#: ``dataclasses.fields`` walk, which is surprisingly expensive).
_SIZERS: Dict[type, Callable[[Any], int]] = {
    bool: lambda obj: 1,
    type(None): lambda obj: 1,
    int: lambda obj: 8,
    float: lambda obj: 8,
    bytes: lambda obj: 4 + len(obj),
    str: _str_size,
    list: _container_size,
    tuple: _container_size,
    set: _container_size,
    frozenset: _container_size,
    dict: _dict_size,
}


#: Per-field byte cost readable straight off a dataclass annotation.
#: (Annotations are strings under ``from __future__ import annotations``,
#: type objects otherwise — accept both.) A bool-annotated field always
#: holds a bool, so its cost folds into the per-class constant; same for
#: int/float. ``Optional[...]`` and container annotations stay dynamic.
_FIXED_FIELD_BYTES = {"int": 8, "float": 8, "bool": 1,
                      int: 8, float: 8, bool: 1}


def _register_sizer(cls: type, obj: Any) -> Optional[Callable[[Any], int]]:
    """Build (and cache) a sizer for a newly seen payload type."""
    if callable(getattr(cls, "wire_size", None)):
        sizer = lambda o: int(o.wire_size())  # noqa: E731
    elif dataclasses.is_dataclass(cls):
        # Fold fixed-size fields into one constant; only fields whose
        # size depends on the value are fetched and walked. Protocol
        # messages like Ack(epoch, zxid) become pure constants.
        const = 2
        dynamic = []
        for f in dataclasses.fields(cls):
            fixed = _FIXED_FIELD_BYTES.get(f.type)
            if fixed is None:
                dynamic.append(f.name)
            else:
                const += fixed
        if not dynamic:
            sizer = lambda o, _const=const: _const  # noqa: E731
        elif len(dynamic) == 1:
            getter = operator.attrgetter(dynamic[0])
            sizer = (lambda o, _const=const, _getter=getter:  # noqa: E731
                     _const + estimate_size(_getter(o)))
        else:
            # attrgetter fetches every dynamic field in one C call.
            getter = operator.attrgetter(*dynamic)

            def sizer(o, _const=const, _getter=getter):
                total = _const
                for value in _getter(o):
                    total += estimate_size(value)
                return total
    else:
        return None
    _SIZERS[cls] = sizer
    return sizer


def estimate_size(obj: Any) -> int:
    """Estimate the wire size of a payload object, in bytes.

    Messages in this code base are small dataclasses carrying strings,
    bytes, numbers, and shallow containers; the estimate reflects a
    compact binary encoding (8-byte numbers, length-prefixed strings).
    Objects may override the estimate by providing ``wire_size()``.
    """
    cls = obj.__class__
    sizer = _SIZERS.get(cls)
    if sizer is not None:
        return sizer(obj)
    sizer = _register_sizer(cls, obj)
    if sizer is not None:
        return sizer(obj)
    # Uncached slow path: instance-level wire_size overrides, subclasses
    # of the primitives/containers, and odd objects.
    size = getattr(obj, "wire_size", None)
    if callable(size):
        return int(size())
    if obj is None or isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, bytes):
        return 4 + len(obj)
    if isinstance(obj, str):
        return _str_size(obj)
    if isinstance(obj, (list, tuple, set, frozenset)):
        return _container_size(obj)
    if isinstance(obj, dict):
        return _dict_size(obj)
    # Fallback for odd objects: a conservative flat cost.
    return 16


@dataclasses.dataclass
class TrafficRule:
    """A targeted drop or delay rule for in-flight messages.

    Matches a message when every present filter matches: ``msg_types``
    (payload class names; None = any type), ``src`` and ``dst`` (a node
    id or a set of node ids; None = any node). A ``drop`` rule discards
    matches with ``probability``; a ``delay`` rule adds ``extra_ms`` to
    their one-way latency. Rules model the chaos harness's
    message-targeted faults (e.g. "lose every Commit to zk2 for
    800 ms") without touching the partition machinery.
    """

    kind: str                                    # "drop" | "delay"
    msg_types: Optional[frozenset] = None        # payload class names
    src: Optional[Any] = None                    # node id or set of ids
    dst: Optional[Any] = None
    probability: float = 1.0                     # drop rules
    extra_ms: float = 0.0                        # delay rules

    def matches(self, src: str, dst: str, msg: Any) -> bool:
        if self.src is not None and not _node_match(self.src, src):
            return False
        if self.dst is not None and not _node_match(self.dst, dst):
            return False
        if (self.msg_types is not None
                and msg.__class__.__name__ not in self.msg_types):
            return False
        return True


def _node_match(selector: Any, node: str) -> bool:
    if isinstance(selector, (set, frozenset, tuple, list)):
        return node in selector
    return selector == node


def _type_names(msg_types) -> Optional[frozenset]:
    if msg_types is None:
        return None
    return frozenset(t if isinstance(t, str) else t.__name__
                     for t in msg_types)


@dataclasses.dataclass
class LatencyModel:
    """One-way message latency: ``base + size/bandwidth + jitter``.

    Defaults approximate the paper's testbed — switched Gigabit Ethernet
    inside one data center: ~60 us propagation/switching, 1 Gbit/s
    transmission, and a small uniform jitter.
    """

    base_ms: float = 0.06
    bandwidth_bytes_per_ms: float = 125_000.0  # 1 Gbit/s
    jitter_ms: float = 0.02

    def latency(self, size_bytes: int, rng: random.Random) -> float:
        transmission = size_bytes / self.bandwidth_bytes_per_ms
        jitter = rng.uniform(0.0, self.jitter_ms) if self.jitter_ms else 0.0
        return self.base_ms + transmission + jitter


class _Delivery:
    """One in-flight message: a slotted, closure-free queue entry.

    The environment's heap only requires a ``_process()`` method, so the
    per-message cost is one small object instead of an Event plus a
    six-variable closure (see the BENCH_core.json microbenchmark).
    """

    __slots__ = ("net", "src", "dst", "msg", "size", "handler")

    def __init__(self, net: "Network", src: str, dst: str, msg: Any,
                 size: int, handler: Callable[[str, Any], None]):
        self.net = net
        self.src = src
        self.dst = dst
        self.msg = msg
        self.size = size
        self.handler = handler

    def _process(self) -> None:
        net = self.net
        if self.dst in net._crashed:
            return
        net.bytes_received[self.dst] += self.size
        obs = net.env.obs
        if obs is not None:
            obs.metrics.inc("net.bytes_received", self.dst, self.size)
        self.handler(self.src, self.msg)


#: Prune the FIFO bookkeeping after this many sends (see Network._prune).
_PRUNE_INTERVAL = 8192


class Network:
    """Delivers messages between registered nodes with simulated latency."""

    def __init__(self, env: Environment,
                 latency: Optional[LatencyModel] = None,
                 seed: int = 0,
                 fifo: bool = True):
        self.env = env
        self.latency = latency or LatencyModel()
        self._rng = random.Random(seed)
        self._fifo = fifo
        self._last_delivery: Dict[tuple[str, str], float] = {}
        self._sends_until_prune = _PRUNE_INTERVAL
        self._handlers: Dict[str, Callable[[str, Any], None]] = {}
        self.bytes_sent: Dict[str, int] = defaultdict(int)
        self.msgs_sent: Dict[str, int] = defaultdict(int)
        self.bytes_received: Dict[str, int] = defaultdict(int)
        self._crashed: set[str] = set()
        self._partitions: set[frozenset[str]] = set()
        #: asymmetric partitions: (src, dst) pairs blocked one-way only.
        self._oneway: set[tuple[str, str]] = set()
        self.drop_probability: float = 0.0
        #: targeted drop/delay rules, keyed by the id remove_rule takes.
        self._rules: Dict[int, TrafficRule] = {}
        self._next_rule_id = 0

    # -- membership ----------------------------------------------------------

    def register(self, node_id: str,
                 handler: Callable[[str, Any], None]) -> None:
        """Attach ``handler(src, msg)`` as the inbox of ``node_id``."""
        if node_id in self._handlers:
            raise ValueError(f"node id already registered: {node_id!r}")
        self._handlers[node_id] = handler

    def unregister(self, node_id: str) -> None:
        self._handlers.pop(node_id, None)

    # -- fault injection ---------------------------------------------------

    def crash(self, node_id: str) -> None:
        """Silently drop all future traffic to and from ``node_id``."""
        self._crashed.add(node_id)

    def recover(self, node_id: str) -> None:
        self._crashed.discard(node_id)

    def is_crashed(self, node_id: str) -> bool:
        return node_id in self._crashed

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Block all traffic between the two groups (both directions)."""
        for a in group_a:
            for b in group_b:
                self._partitions.add(frozenset((a, b)))

    def partition_oneway(self, srcs: Iterable[str],
                         dsts: Iterable[str]) -> None:
        """Block traffic from ``srcs`` to ``dsts`` only (asymmetric).

        The reverse direction stays up — the classic half-open link
        where a follower hears the leader but its acks never arrive.
        """
        for a in srcs:
            for b in dsts:
                self._oneway.add((a, b))

    def heal(self) -> None:
        """Remove every partition (symmetric and one-way)."""
        self._partitions.clear()
        self._oneway.clear()

    def add_drop_rule(self, probability: float = 1.0,
                      msg_types: Optional[Iterable] = None,
                      src: Optional[Any] = None,
                      dst: Optional[Any] = None) -> int:
        """Drop matching messages with ``probability``; returns a rule id.

        ``msg_types`` accepts payload classes or class-name strings;
        None matches every type. Drops draw from the network RNG, so a
        run with fixed seeds replays the same losses.
        """
        return self._add_rule(TrafficRule(
            "drop", _type_names(msg_types), src, dst,
            probability=probability))

    def add_delay_rule(self, extra_ms: float,
                       msg_types: Optional[Iterable] = None,
                       src: Optional[Any] = None,
                       dst: Optional[Any] = None) -> int:
        """Add ``extra_ms`` latency to matching messages; returns a rule id."""
        return self._add_rule(TrafficRule(
            "delay", _type_names(msg_types), src, dst, extra_ms=extra_ms))

    def _add_rule(self, rule: TrafficRule) -> int:
        self._next_rule_id += 1
        self._rules[self._next_rule_id] = rule
        return self._next_rule_id

    def remove_rule(self, rule_id: int) -> None:
        self._rules.pop(rule_id, None)

    def clear_rules(self) -> None:
        self._rules.clear()

    def _blocked(self, src: str, dst: str, msg: Any) -> bool:
        if src in self._crashed or dst in self._crashed:
            return True
        if self._partitions and frozenset((src, dst)) in self._partitions:
            return True
        if self._oneway and (src, dst) in self._oneway:
            return True
        if self.drop_probability and self._rng.random() < self.drop_probability:
            return True
        if self._rules:
            for rule in self._rules.values():
                if (rule.kind == "drop" and rule.matches(src, dst, msg)
                        and self._rng.random() < rule.probability):
                    return True
        return False

    def _extra_delay(self, src: str, dst: str, msg: Any) -> float:
        extra = 0.0
        for rule in self._rules.values():
            if rule.kind == "delay" and rule.matches(src, dst, msg):
                extra += rule.extra_ms
        return extra

    # -- transmission --------------------------------------------------------

    def send(self, src: str, dst: str, msg: Any) -> int:
        """Send ``msg`` from ``src`` to ``dst``; returns billed byte count.

        Bytes are billed to the sender even if the message is later lost —
        that is how a real NIC counter behaves, and it keeps the client
        cost figures honest under retries.
        """
        return self._send_sized(src, dst, msg,
                                MESSAGE_HEADER_BYTES + estimate_size(msg))

    def _send_sized(self, src: str, dst: str, msg: Any, size: int) -> int:
        self.bytes_sent[src] += size
        self.msgs_sent[src] += 1
        # Metric increments are dict writes only — no RNG draw, no
        # scheduling — so instrumented runs keep the exact event stream.
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("net.msgs_sent", src)
            obs.metrics.inc("net.bytes_sent", src, size)
        # Fast path: no faults injected, nothing can block the message.
        faults = (self._crashed or self._partitions or self._oneway
                  or self.drop_probability or self._rules)
        if faults and self._blocked(src, dst, msg):
            if obs is not None:
                obs.metrics.inc("net.dropped", src)
            return size
        handler = self._handlers.get(dst)
        if handler is None:
            return size
        env = self.env
        # Inlined LatencyModel.latency (uniform(0, j) == j * random()).
        lat = self.latency
        delay = lat.base_ms + size / lat.bandwidth_bytes_per_ms
        if lat.jitter_ms:
            delay += lat.jitter_ms * self._rng.random()
        if self._rules:
            delay += self._extra_delay(src, dst, msg)
        arrival = env._now + delay
        if self._fifo:
            # TCP-like channels: per-(src, dst) deliveries never reorder.
            channel = (src, dst)
            last = self._last_delivery.get(channel)
            if last is not None and last > arrival:
                arrival = last
            self._last_delivery[channel] = arrival
            self._sends_until_prune -= 1
            if self._sends_until_prune <= 0:
                self._prune()
        # Inlined env.schedule (hot path: one push per message).
        env._push(arrival, _Delivery(self, src, dst, msg, size, handler))
        return size

    def _prune(self) -> None:
        """Drop FIFO bookkeeping that no longer constrains ordering.

        A channel whose last scheduled arrival lies in the past cannot
        delay any future send, so its entry is dead weight; without this
        sweep ``_last_delivery`` grows with every (src, dst) pair that
        ever exchanged a message (e.g. one per client in the figure
        drivers) and is retained for the whole run.
        """
        now = self.env.now
        stale = [channel for channel, arrival in self._last_delivery.items()
                 if arrival <= now]
        for channel in stale:
            del self._last_delivery[channel]
        self._sends_until_prune = _PRUNE_INTERVAL

    def broadcast(self, src: str, dsts: Iterable[str], msg: Any) -> int:
        """Send ``msg`` to every destination; returns total billed bytes.

        The payload is sized once, not per destination.
        """
        size = MESSAGE_HEADER_BYTES + estimate_size(msg)
        return sum(self._send_sized(src, dst, msg, size) for dst in dsts)
