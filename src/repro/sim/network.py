"""Simulated message-passing network with latency and byte accounting.

The network is the only channel between simulated nodes (replicas and
clients). It provides:

* a configurable latency model (propagation base + transmission time
  proportional to message size, with optional deterministic jitter),
* per-node accounting of bytes/messages sent — the paper's Figures 8
  and 10 report *data sent by clients per operation*, which we compute
  from these counters,
* fault injection: node crashes, link partitions, and probabilistic drops
  (deterministic under a fixed seed).
"""

from __future__ import annotations

import dataclasses
import random
from collections import defaultdict
from typing import Any, Callable, Dict, Iterable, Optional

from .environment import Environment

__all__ = ["LatencyModel", "Network", "estimate_size", "MESSAGE_HEADER_BYTES"]

#: Fixed per-message framing overhead (Ethernet + IP + TCP headers, rounded).
MESSAGE_HEADER_BYTES = 66


def estimate_size(obj: Any) -> int:
    """Estimate the wire size of a payload object, in bytes.

    Messages in this code base are small dataclasses carrying strings,
    bytes, numbers, and shallow containers; the estimate reflects a
    compact binary encoding (8-byte numbers, length-prefixed strings).
    Objects may override the estimate by providing ``wire_size()``.
    """
    size = getattr(obj, "wire_size", None)
    if callable(size):
        return int(size())
    if obj is None or isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, bytes):
        return 4 + len(obj)
    if isinstance(obj, str):
        return 4 + len(obj.encode("utf-8"))
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 4 + sum(estimate_size(item) for item in obj)
    if isinstance(obj, dict):
        return 4 + sum(
            estimate_size(k) + estimate_size(v) for k, v in obj.items())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return 2 + sum(
            estimate_size(getattr(obj, field.name))
            for field in dataclasses.fields(obj))
    # Fallback for odd objects: a conservative flat cost.
    return 16


@dataclasses.dataclass
class LatencyModel:
    """One-way message latency: ``base + size/bandwidth + jitter``.

    Defaults approximate the paper's testbed — switched Gigabit Ethernet
    inside one data center: ~60 us propagation/switching, 1 Gbit/s
    transmission, and a small uniform jitter.
    """

    base_ms: float = 0.06
    bandwidth_bytes_per_ms: float = 125_000.0  # 1 Gbit/s
    jitter_ms: float = 0.02

    def latency(self, size_bytes: int, rng: random.Random) -> float:
        transmission = size_bytes / self.bandwidth_bytes_per_ms
        jitter = rng.uniform(0.0, self.jitter_ms) if self.jitter_ms else 0.0
        return self.base_ms + transmission + jitter


class Network:
    """Delivers messages between registered nodes with simulated latency."""

    def __init__(self, env: Environment,
                 latency: Optional[LatencyModel] = None,
                 seed: int = 0,
                 fifo: bool = True):
        self.env = env
        self.latency = latency or LatencyModel()
        self._rng = random.Random(seed)
        self._fifo = fifo
        self._last_delivery: Dict[tuple[str, str], float] = {}
        self._handlers: Dict[str, Callable[[str, Any], None]] = {}
        self.bytes_sent: Dict[str, int] = defaultdict(int)
        self.msgs_sent: Dict[str, int] = defaultdict(int)
        self.bytes_received: Dict[str, int] = defaultdict(int)
        self._crashed: set[str] = set()
        self._partitions: set[frozenset[str]] = set()
        self.drop_probability: float = 0.0

    # -- membership ----------------------------------------------------------

    def register(self, node_id: str,
                 handler: Callable[[str, Any], None]) -> None:
        """Attach ``handler(src, msg)`` as the inbox of ``node_id``."""
        if node_id in self._handlers:
            raise ValueError(f"node id already registered: {node_id!r}")
        self._handlers[node_id] = handler

    def unregister(self, node_id: str) -> None:
        self._handlers.pop(node_id, None)

    # -- fault injection ---------------------------------------------------

    def crash(self, node_id: str) -> None:
        """Silently drop all future traffic to and from ``node_id``."""
        self._crashed.add(node_id)

    def recover(self, node_id: str) -> None:
        self._crashed.discard(node_id)

    def is_crashed(self, node_id: str) -> bool:
        return node_id in self._crashed

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Block all traffic between the two groups (both directions)."""
        for a in group_a:
            for b in group_b:
                self._partitions.add(frozenset((a, b)))

    def heal(self) -> None:
        """Remove every partition."""
        self._partitions.clear()

    def _blocked(self, src: str, dst: str) -> bool:
        if src in self._crashed or dst in self._crashed:
            return True
        if self._partitions and frozenset((src, dst)) in self._partitions:
            return True
        if self.drop_probability and self._rng.random() < self.drop_probability:
            return True
        return False

    # -- transmission --------------------------------------------------------

    def send(self, src: str, dst: str, msg: Any) -> int:
        """Send ``msg`` from ``src`` to ``dst``; returns billed byte count.

        Bytes are billed to the sender even if the message is later lost —
        that is how a real NIC counter behaves, and it keeps the client
        cost figures honest under retries.
        """
        size = MESSAGE_HEADER_BYTES + estimate_size(msg)
        self.bytes_sent[src] += size
        self.msgs_sent[src] += 1
        if self._blocked(src, dst):
            return size
        handler = self._handlers.get(dst)
        if handler is None:
            return size
        delay = self.latency.latency(size, self._rng)
        if self._fifo:
            # TCP-like channels: per-(src, dst) deliveries never reorder.
            channel = (src, dst)
            arrival = max(self.env.now + delay,
                          self._last_delivery.get(channel, 0.0))
            self._last_delivery[channel] = arrival
            delay = arrival - self.env.now

        def deliver(_event, handler=handler, src=src, msg=msg, size=size,
                    dst=dst) -> None:
            if dst in self._crashed:
                return
            self.bytes_received[dst] += size
            handler(src, msg)

        event = self.env.event()
        event.add_callback(deliver)
        event._ok = True
        event._value = None
        self.env.schedule(event, delay=delay)
        return size

    def broadcast(self, src: str, dsts: Iterable[str], msg: Any) -> int:
        """Send ``msg`` to every destination; returns total billed bytes."""
        return sum(self.send(src, dst, msg) for dst in dsts)
