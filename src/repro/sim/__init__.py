"""Discrete-event simulation substrate.

This package replaces the paper's physical cluster: a deterministic
generator-process kernel (:mod:`~repro.sim.events`,
:mod:`~repro.sim.environment`), a latency- and byte-accounting network
(:mod:`~repro.sim.network`), and measurement helpers
(:mod:`~repro.sim.stats`).
"""

from .environment import (Environment, Infeasible, default_kernel,
                          kernel_backend)
from .events import (AllOf, AnyOf, Callback, Event, Interrupted, Process,
                     Timeout)
from .network import (MESSAGE_HEADER_BYTES, LatencyModel, Network,
                      TrafficRule, estimate_size)
from .resources import FifoResource
from .stats import ExperimentMetrics, IntervalThroughput, LatencyRecorder, summarize

__all__ = [
    "Environment",
    "Infeasible",
    "default_kernel",
    "kernel_backend",
    "Event",
    "Timeout",
    "Callback",
    "Process",
    "Interrupted",
    "AnyOf",
    "AllOf",
    "Network",
    "LatencyModel",
    "TrafficRule",
    "estimate_size",
    "MESSAGE_HEADER_BYTES",
    "FifoResource",
    "LatencyRecorder",
    "IntervalThroughput",
    "ExperimentMetrics",
    "summarize",
]
