"""The discrete-event simulation environment: virtual clock + event queue.

All distributed-system components in this repository (replicas, clients,
the network) run inside one :class:`Environment`. Virtual time is a float
in **milliseconds** throughout the code base, which matches the units the
paper's figures use.

Two interchangeable queue kernels back the environment (selected per
instance, or globally via ``REPRO_SIM_KERNEL``):

* ``calendar`` (default) — the bucketed timing-wheel in
  :mod:`repro.sim._calqueue`: O(1) pushes, far-future timers parked in
  cold buckets, same-timestamp bursts drained from one sorted snapshot.
* ``heap`` — the original single ``heapq`` ordered by ``(when, seq)``.

Both kernels deliver **identically ordered** event streams for the same
program (pinned by tests/test_sim_determinism.py), so replay lines and
figure results do not depend on the kernel choice.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Generator, Iterable, Optional

from ._calqueue import CalendarQueue
from .events import AllOf, AnyOf, Callback, Event, Process, Timeout

__all__ = ["Environment", "Infeasible", "default_kernel", "kernel_backend"]

KERNELS = ("calendar", "heap")


def default_kernel() -> str:
    """Kernel used when :class:`Environment` is built without an override."""
    kernel = os.environ.get("REPRO_SIM_KERNEL", "calendar")
    if kernel not in KERNELS:
        raise ValueError(
            f"REPRO_SIM_KERNEL={kernel!r}: expected one of {KERNELS}")
    return kernel


def kernel_backend() -> str:
    """'compiled' when a native _calqueue extension is loaded, else 'pure'."""
    from . import _calqueue
    path = getattr(_calqueue, "__file__", "") or ""
    return "pure" if path.endswith(".py") else "compiled"


class Infeasible(RuntimeError):
    """Raised when ``run(until=...)`` is asked to reach an unreachable state."""


class Environment:
    """Owns the virtual clock and the pending-event queue.

    Typical driver loop::

        env = Environment()
        env.process(client_main(env))
        env.run(until=10_000.0)      # run 10 simulated seconds
    """

    def __init__(self, initial_time: float = 0.0,
                 kernel: Optional[str] = None):
        self._now = float(initial_time)
        #: total events processed since construction; the wall-clock
        #: microbenchmark divides this by elapsed real time to get the
        #: kernel's events/s figure (BENCH_core.json).
        self.events_processed = 0
        #: the run's observability plane (:class:`repro.obs.Observability`),
        #: installed by the first server whose config carries an
        #: ``ObsConfig``; None keeps every instrumentation point to a
        #: single attribute-read-plus-comparison.
        self.obs = None
        if kernel is None:
            kernel = default_kernel()
        elif kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}: expected {KERNELS}")
        self.kernel = kernel
        if kernel == "heap":
            self._cal: Optional[CalendarQueue] = None
            self._queue: list[tuple[float, int, Event]] = []
            self._seq = 0
            #: every producer (schedule/defer/succeed/network delivery)
            #: files occurrences through this one bound callable.
            self._push = self._heap_push
        else:
            self._cal = CalendarQueue(self)
            self._push = self._cal.push

    def _heap_push(self, when: float, item: Any) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, item))

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    # -- scheduling ----------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Queue ``event`` for processing ``delay`` ms from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        self._push(self._now + delay, event)

    # -- factories -----------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def defer(self, delay: float, fn, *args) -> Callback:
        """Schedule ``fn(*args)`` to run ``delay`` ms from now.

        The cheap alternative to ``timeout().add_callback(...)`` for
        fire-and-forget work: no Event allocation, no callbacks list,
        no closure. The returned :class:`Callback` is not awaitable.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        callback = Callback(fn, args)
        self._push(self._now + delay, callback)
        return callback

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a generator as a simulation process."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution ------------------------------------------------------------

    def step(self) -> None:
        """Process the single next event, advancing the clock."""
        cal = self._cal
        if cal is None:
            if not self._queue:
                raise Infeasible("no scheduled events")
            when, _seq, event = heapq.heappop(self._queue)
            self._now = when
        else:
            event = cal.pop_one()
            if event is None:
                raise Infeasible("no scheduled events")
        self.events_processed += 1
        event._process()

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None if the queue is empty."""
        cal = self._cal
        if cal is None:
            return self._queue[0][0] if self._queue else None
        return cal.peek()

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains,
        * a number — run until virtual time reaches that instant,
        * an :class:`Event` — run until that event is processed and return
          its value (re-raising its exception if it failed).
        """
        cal = self._cal
        if cal is not None:
            return self._run_calendar(cal, until)

        # The loops below inline step(): at hundreds of thousands of
        # events per run the per-event method call is measurable
        # (BENCH_core.json). events_processed is settled on exit so the
        # counter stays honest even if an event handler raises.
        queue = self._queue
        pop = heapq.heappop
        count = 0

        if until is None:
            try:
                while queue:
                    when, _seq, event = pop(queue)
                    self._now = when
                    count += 1
                    event._process()
            finally:
                self.events_processed += count
            return None

        if isinstance(until, Event):
            target = until
            try:
                while not target.processed:
                    if not queue:
                        raise Infeasible(
                            "event queue drained before the awaited event triggered")
                    when, _seq, event = pop(queue)
                    self._now = when
                    count += 1
                    event._process()
            finally:
                self.events_processed += count
            if not target.ok:
                raise target._value
            return target._value

        deadline = float(until)
        if deadline < self._now:
            raise ValueError("cannot run backwards in time")
        try:
            while queue and queue[0][0] <= deadline:
                when, _seq, event = pop(queue)
                self._now = when
                count += 1
                event._process()
        finally:
            self.events_processed += count
        self._now = deadline
        return None

    def _run_calendar(self, cal: CalendarQueue, until: Optional[Any]) -> Any:
        if until is None:
            cal.drain(float("inf"), None)
            return None

        if isinstance(until, Event):
            status = cal.drain(float("inf"), until)
            if status == 0 and not until.processed:
                raise Infeasible(
                    "event queue drained before the awaited event triggered")
            if not until.ok:
                raise until._value
            return until._value

        deadline = float(until)
        if deadline < self._now:
            raise ValueError("cannot run backwards in time")
        cal.drain(deadline, None)
        self._now = deadline
        return None
