"""Measurement helpers: latency recorders, counters, throughput windows.

Everything operates on simulated milliseconds; throughput values are
reported per simulated second (ops/s), matching the paper's axes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["LatencyRecorder", "IntervalThroughput", "summarize"]


class LatencyRecorder:
    """Collects latency samples and computes summary statistics."""

    def __init__(self, warmup_until: float = 0.0):
        self.samples: List[float] = []
        self.warmup_until = warmup_until
        self._discarded = 0

    def record(self, now: float, latency_ms: float) -> None:
        """Record one sample; samples taken before ``warmup_until`` are dropped."""
        if now < self.warmup_until:
            self._discarded += 1
            return
        self.samples.append(latency_ms)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return float("nan")
        return sum(self.samples) / len(self.samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100].

        The edges are pinned explicitly: ``p <= 0`` is the minimum
        sample and ``p >= 100`` the maximum, rather than leaning on the
        ``max(1, ceil(0))`` clamp to land there by accident. Interior
        values keep the exact nearest-rank behaviour.
        """
        if not self.samples:
            return float("nan")
        ordered = sorted(self.samples)
        if p <= 0.0:
            return ordered[0]
        if p >= 100.0:
            return ordered[-1]
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def p999(self) -> float:
        return self.percentile(99.9)


class IntervalThroughput:
    """Counts completions inside a measurement window and reports ops/s."""

    def __init__(self, start_ms: float, end_ms: float):
        if end_ms <= start_ms:
            raise ValueError("measurement window must have positive length")
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.completed = 0

    def record(self, now: float, n: int = 1) -> None:
        if self.start_ms <= now < self.end_ms:
            self.completed += n

    @property
    def ops_per_second(self) -> float:
        window_s = (self.end_ms - self.start_ms) / 1000.0
        return self.completed / window_s


@dataclass
class ExperimentMetrics:
    """One experiment cell: a (system, #clients) point in a figure."""

    system: str
    clients: int
    throughput_ops: float = 0.0
    mean_latency_ms: float = float("nan")
    p99_latency_ms: float = float("nan")
    client_kb_per_op: float = float("nan")
    extra: Dict[str, float] = field(default_factory=dict)

    def row(self) -> str:
        return (f"{self.system:<12} clients={self.clients:<3d} "
                f"tput={self.throughput_ops:>10.1f} ops/s  "
                f"lat={self.mean_latency_ms:>8.3f} ms  "
                f"KB/op={self.client_kb_per_op:>8.3f}")


def summarize(recorder: LatencyRecorder,
              throughput: Optional[IntervalThroughput] = None) -> Dict[str, float]:
    """Flatten a recorder (and optional throughput window) into a dict."""
    summary = {
        "count": float(recorder.count),
        "mean_ms": recorder.mean,
        "median_ms": recorder.median,
        "p99_ms": recorder.p99,
        "p999_ms": recorder.p999,
    }
    if throughput is not None:
        summary["ops_per_second"] = throughput.ops_per_second
    return summary
