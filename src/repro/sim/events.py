"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic generator-process model (as popularized by
simpy): a *process* is a Python generator that yields :class:`Event`
instances; the environment resumes the generator when the yielded event
triggers, sending the event's value back into the generator (or throwing
the event's exception).

Events move through three states:

* *pending* — created but not yet triggered,
* *triggered* — a value (or exception) has been set and the event has been
  scheduled on the environment's queue,
* *processed* — the environment has popped the event and run its callbacks.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Callback",
    "Process",
    "Interrupted",
    "AnyOf",
    "AllOf",
]

_PENDING = object()


class Callback:
    """A lightweight one-shot scheduled callback.

    The hot paths of the simulation (network deliveries, resource
    completions) schedule hundreds of thousands of occurrences that
    nothing ever waits on. A full :class:`Event` costs an object with a
    callbacks list plus a closure per occurrence; this slotted wrapper
    carries just the function and its arguments. It is **not awaitable**
    — processes must not yield it — and it cannot be cancelled; use
    :class:`Event` when either is needed.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable[..., None], args: tuple = ()):
        self.fn = fn
        self.args = args

    def _process(self) -> None:
        self.fn(*self.args)


class Interrupted(Exception):
    """Raised inside a process generator when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event carries either a value (success) or an exception (failure).
    Callbacks attached before the event is processed run exactly once, in
    attachment order, when the environment processes the event.
    """

    # _pending_value is set externally by FifoResource.submit (the value a
    # resource completion will succeed with); slotting it here keeps that
    # hot path working without a per-instance __dict__.
    __slots__ = ("env", "callbacks", "_value", "_ok", "_pending_value")

    def __init__(self, env: "Environment"):  # noqa: F821 - forward ref
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once a value or exception has been set."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise RuntimeError("event value is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise RuntimeError("event has already been triggered")
        self._ok = True
        self._value = value
        # Inlined env.schedule(self): succeed() fires once per resource
        # completion and per RPC reply, so the call overhead is hot.
        env = self.env
        env._push(env._now, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not _PENDING:
            raise RuntimeError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        env = self.env
        env._push(env._now, self)
        return self

    # -- callback plumbing -------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(self)`` when the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks or ():
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._push(env._now + delay, self)


class Process(Event):
    """Wraps a generator; the process event triggers when the generator returns.

    The generator's ``return`` value becomes the event value; an uncaught
    exception inside the generator fails the event (and propagates out of
    :meth:`Environment.run` if nothing waits on the process).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):  # noqa: F821
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        # Kick off the process as an immediately-scheduled initialization.
        init = Event(env)
        init._ok = True
        init._value = None
        init.add_callback(self._resume)
        env.schedule(init)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its current yield."""
        if self.triggered:
            raise RuntimeError("cannot interrupt a completed process")
        target = self._target
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupted(cause)
        # Deliver the interrupt ahead of whatever the process is waiting on.
        if target is not None and not target.processed:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_event.add_callback(self._resume)
        self.env.schedule(interrupt_event)

    def _resume(self, event: Event) -> None:
        self._target = None
        while True:
            try:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    exc = event._value
                    target = self._generator.throw(exc)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - process death is an event
                self.fail(exc)
                return
            if not isinstance(target, Event):
                error = TypeError(
                    f"process yielded a non-event: {target!r} "
                    "(yield Event/Timeout/Process instances only)")
                event = Event(self.env)
                event._ok = False
                event._value = error
                continue
            if target.processed:
                # Already done: loop around synchronously.
                event = target
                continue
            target.add_callback(self._resume)
            self._target = target
            return


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):  # noqa: F821
        super().__init__(env)
        self.events = list(events)
        self._pending = len(self.events)
        for event in self.events:
            if event.env is not env:
                raise ValueError("all events must belong to the same environment")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            # add_callback runs immediately for already-processed events.
            event.add_callback(self._observe)
            if self.triggered:
                return

    def _observe(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        # Timeouts carry their value from construction, so membership is
        # decided by *processed* (the event actually fired), not triggered.
        return {e: e._value for e in self.events if e.processed and e._ok}


class AnyOf(_Condition):
    """Triggers as soon as any constituent event triggers."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers once every constituent event has triggered."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending <= 0:
            self.succeed(self._collect())
