"""Calendar-queue scheduler: the fast event-queue kernel.

The heap kernel orders every pending occurrence through one ``heapq``,
paying O(log n) per push/pop with n inflated by long-lived timers (RPC
deadlines, session heartbeats) that almost never fire.  This module
replaces the single heap with a *calendar queue* (a bucketed timing
wheel): occurrences are filed into fixed-width time buckets keyed by
``int(when / width)``, only the *current* bucket is kept sorted, and
far-future timers sleep in their buckets at O(1) push cost until the
clock reaches them.

Ordering is **identical** to the heap kernel — this is load-bearing:
chaos replay lines and figure benchmarks must stay byte-identical under
either kernel.  The argument:

* The heap orders by ``(when, seq)`` where ``seq`` is a global push
  counter, i.e. earliest time first, FIFO among equal times.
* ``int(when * inv_width)`` is monotone non-decreasing in ``when``, so
  an occurrence with a smaller ``when`` can never land in a *later*
  bucket, and equal ``when``s always share a bucket.  Draining buckets
  in index order, each sorted by ``(when, seq)``, therefore yields the
  exact heap order — floating-point bucket-boundary truncation can
  shift an entry one bucket early but never reorder it.
* Three side structures keep pushes targeted at the already-open
  current bucket correct: ``_imm`` (a FIFO deque) holds pushes at
  exactly the current time — their push order *is* their seq order, and
  every entry already in ``_snap``/``_extra`` at the same timestamp was
  pushed earlier (the clock had not yet reached that time) and so must
  drain first; ``_extra`` (a small heap) holds pushes with
  ``when > now`` that index into the cursor bucket or earlier — again
  pushed later than any equal-time snapshot entry, so the snapshot wins
  ties.

The class is written to stay compiled-extension friendly (mypyc or
Cython may shadow this file with a native module — see ``build_ext``):
slotted attributes, tuple-based entries, no closures on the hot path.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple

__all__ = ["CalendarQueue", "DEFAULT_BUCKET_MS"]

_INF = float("inf")

#: Bucket width in virtual milliseconds.  Swept empirically on the
#: fig8-queue and read-heavy drivers: widths near the event spacing
#: (0.05-0.1 ms) pay a fresh-bucket dict/heap operation for almost
#: every push, while 0.5 ms amortizes bucket bookkeeping over tens of
#: entries per bucket (nearly-sorted, so the snapshot sort is cheap)
#: and still parks multi-second timers thousands of buckets away.
DEFAULT_BUCKET_MS = 0.5


class CalendarQueue:
    """Bucketed pending-event store with heap-identical drain order.

    ``env`` owns the clock (``env._now``); the queue reads it on push
    (to classify same-instant occurrences) and writes it on drain.
    """

    __slots__ = ("env", "inv_width", "_seq", "_imm", "_wheel", "_occ",
                 "_extra", "_snap", "_si", "_cursor")

    def __init__(self, env: Any, bucket_ms: float = DEFAULT_BUCKET_MS):
        self.env = env
        self.inv_width = 1.0 / bucket_ms
        self._seq = 0
        #: pushes at exactly the current instant; drains FIFO after any
        #: equal-time entries already in the snapshot or extra heap.
        self._imm: deque = deque()
        #: future buckets: absolute bucket index -> unsorted entry list.
        self._wheel: dict = {}
        #: min-heap of occupied bucket indices (each exactly once).
        self._occ: List[int] = []
        #: late pushes indexing into the cursor bucket (or earlier).
        self._extra: List[Tuple[float, int, Any]] = []
        #: sorted snapshot of the bucket currently being drained.
        self._snap: List[Tuple[float, int, Any]] = []
        self._si = 0
        self._cursor = int(env._now * self.inv_width)

    # -- producing ---------------------------------------------------------

    def push(self, when: float, item: Any) -> None:
        """File ``item`` to occur at virtual time ``when`` (>= now)."""
        if when == self.env._now:
            self._imm.append(item)
            return
        self._seq = seq = self._seq + 1
        idx = int(when * self.inv_width)
        if idx <= self._cursor:
            heappush(self._extra, (when, seq, item))
            return
        bucket = self._wheel.get(idx)
        if bucket is None:
            self._wheel[idx] = [(when, seq, item)]
            heappush(self._occ, idx)
        else:
            bucket.append((when, seq, item))

    # -- bucket cursor -----------------------------------------------------

    def _advance(self) -> bool:
        """Open the next occupied bucket as the drain snapshot.

        Only called with ``_imm``/``_extra`` empty and the snapshot
        exhausted.  Returns False when the queue is fully empty.
        """
        if not self._occ:
            return False
        idx = heappop(self._occ)
        bucket = self._wheel.pop(idx)
        bucket.sort()
        self._snap = bucket
        self._si = 0
        self._cursor = idx
        return True

    # -- inspection --------------------------------------------------------

    def empty(self) -> bool:
        return (not self._imm and not self._extra and not self._occ
                and self._si >= len(self._snap))

    def peek(self) -> Optional[float]:
        """Time of the next occurrence, or None if the queue is empty."""
        if self._imm:
            return self.env._now
        t = self._snap[self._si][0] if self._si < len(self._snap) else _INF
        if self._extra and self._extra[0][0] < t:
            t = self._extra[0][0]
        if t != _INF:
            return t
        if self._occ:
            return min(self._wheel[self._occ[0]])[0]
        return None

    # -- consuming ---------------------------------------------------------

    def pop_one(self) -> Any:
        """Pop the single next item, advancing ``env._now`` to its time.

        Returns None when the queue is empty.
        """
        env = self.env
        while True:
            snap = self._snap
            si = self._si
            t1 = snap[si][0] if si < len(snap) else _INF
            t2 = self._extra[0][0] if self._extra else _INF
            if self._imm:
                now = env._now
                if t1 == now:
                    self._si = si + 1
                    return snap[si][2]
                if t2 == now:
                    return heappop(self._extra)[2]
                return self._imm.popleft()
            if t1 <= t2:
                if t1 == _INF:
                    if not self._advance():
                        return None
                    continue
                self._si = si + 1
                entry = snap[si]
            else:
                entry = heappop(self._extra)
            env._now = entry[0]
            return entry[2]

    def drain(self, deadline: float, target: Any) -> int:
        """Process occurrences in heap order until a stop condition.

        Returns 0 when the queue drained empty, 1 when the next
        occurrence lies beyond ``deadline``, 2 when ``target`` (an
        Event, or None) has been processed.  Advances ``env._now`` and
        settles ``env.events_processed`` on exit even if a handler
        raises.
        """
        env = self.env
        imm = self._imm
        extra = self._extra
        count = 0
        try:
            while True:
                if target is not None and target.callbacks is None:
                    return 2
                snap = self._snap
                si = self._si
                t1 = snap[si][0] if si < len(snap) else _INF
                t2 = extra[0][0] if extra else _INF
                if imm:
                    # Everything here happens at env._now; equal-time
                    # snapshot/extra entries were pushed earlier and win.
                    now = env._now
                    if t1 == now:
                        self._si = si + 1
                        item = snap[si][2]
                    elif t2 == now:
                        item = heappop(extra)[2]
                    else:
                        item = imm.popleft()
                    count += 1
                    item._process()
                    continue
                if t1 <= t2:
                    if t1 == _INF:
                        if not self._advance():
                            return 0
                        continue
                    if t1 > deadline:
                        return 1
                    self._si = si + 1
                    entry = snap[si]
                else:
                    if t2 > deadline:
                        return 1
                    entry = heappop(extra)
                env._now = entry[0]
                count += 1
                entry[2]._process()
        finally:
            env.events_processed += count
