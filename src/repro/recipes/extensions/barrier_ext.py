# Distributed-barrier enter extension (Figure 9, server side).
#
# The client performs a single blocking call on /ready/<round>/<id>.
# Server-side, this extension registers the client at the barrier,
# checks completeness against the threshold stored in /bconf, and
# either blocks the caller on the round's ready object or creates it
# (releasing everyone). The block() is non-blocking at the server: it
# registers the event subscription and the extension terminates
# (§6.1.3).

class BarrierEnter(Extension):  # noqa: F821 - injected by the sandbox
    def ops_subscriptions(self):
        return [OperationSubscription(("block",), "/ready/*")]  # noqa: F821

    def handle_operation(self, request, local):
        parts = request.object_id.split("/")
        rnd = parts[2]
        cid = parts[3]
        threshold = int(local.read("/bconf"))
        if not local.exists("/barrier/" + rnd):
            local.create("/barrier/" + rnd)
        local.create("/barrier/" + rnd + "/" + cid)
        objs = local.sub_objects("/barrier/" + rnd)
        if len(objs) < threshold:
            local.block("/ready/" + rnd)
            return "waiting"
        local.create("/ready/" + rnd)
        return "entered"
