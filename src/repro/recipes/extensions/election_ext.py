# Leader-election extension (Figure 11, server side).
#
# The paper's combined operation + event extension (§6.1.4):
#
# * the operation half consumes a client's blocking call on
#   /leader/<cid>: it puts the client under liveness monitoring
#   (/clients/<cid>), appoints it directly when it is the oldest
#   registered client, and otherwise blocks the call;
# * the event half reacts to the deletion of any /clients/<cid> object
#   (explicit abdication, session end, or lease expiry) by appointing
#   the oldest surviving client — whose blocked call then unblocks.

class LeaderElection(Extension):  # noqa: F821 - injected by the sandbox
    def ops_subscriptions(self):
        return [OperationSubscription(("block",), "/leader/*")]  # noqa: F821

    def event_subscriptions(self):
        return [EventSubscription(("deleted",), "/clients/*")]  # noqa: F821

    def handle_operation(self, request, local):
        cid = request.object_id.split("/")[-1]
        if local.exists("/leader/" + cid):
            local.delete("/leader/" + cid)
        local.monitor(cid, "/clients/" + cid)
        clients = local.sub_objects("/clients")
        oldest = clients[0].object_id.split("/")[-1]
        if oldest == cid:
            local.create("/leader/" + cid)
            return "leader"
        local.block("/leader/" + cid)
        return "waiting"

    def handle_event(self, event, local):
        clients = local.sub_objects("/clients")
        if len(clients) == 0:
            return None
        new_leader = clients[0].object_id.split("/")[-1]
        if not local.exists("/leader/" + new_leader):
            local.create("/leader/" + new_leader)
        return None
