"""The paper's §6 extension sources, shipped to servers as text.

These ``*.py`` files are *not* importable modules: they reference names
(``Extension``, ``OperationSubscription``, ``EventSubscription``) that
only exist inside the server-side sandbox namespace. Load them with
:func:`load_extension_source`.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["load_extension_source", "COUNTER_EXT", "QUEUE_EXT",
           "BARRIER_EXT", "ELECTION_EXT"]

_HERE = Path(__file__).parent


def load_extension_source(name: str) -> str:
    """Read one of the bundled extension sources by file stem."""
    return (_HERE / f"{name}.py").read_text(encoding="utf-8")


COUNTER_EXT = load_extension_source("counter_ext")
QUEUE_EXT = load_extension_source("queue_ext")
BARRIER_EXT = load_extension_source("barrier_ext")
ELECTION_EXT = load_extension_source("election_ext")
