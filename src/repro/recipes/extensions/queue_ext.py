# Distributed-queue head removal extension (Figure 7, server side).
#
# A read of /queue/head atomically locates the oldest element, deletes
# it, and returns its data — one RPC instead of the traditional
# subObjects + per-element delete race.

class QueueRemove(Extension):  # noqa: F821 - injected by the sandbox
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/queue/head")]  # noqa: F821

    def handle_operation(self, request, local):
        objs = local.sub_objects("/queue")
        if len(objs) == 0:
            return None
        head = objs[0]
        local.delete(head.object_id)
        return head.data
