# Shared-counter increment extension (Figure 5, server side).
#
# This file is *extension source*: it is shipped to the coordination
# service as text, verified by the AST white-list, and executed inside
# the sandbox where `Extension` and `OperationSubscription` are
# injected. It is never imported as a Python module.
#
# A read of /ctr-increment becomes an atomic read-modify-write of /ctr,
# eliminating the traditional recipe's cas retry loop under contention.

class CounterIncrement(Extension):  # noqa: F821 - injected by the sandbox
    def ops_subscriptions(self):
        return [OperationSubscription(("read",), "/ctr-increment")]  # noqa: F821

    def handle_operation(self, request, local):
        c = int(local.read("/ctr"))
        local.update("/ctr", str(c + 1).encode())
        return c + 1
