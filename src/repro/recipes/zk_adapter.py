"""Table 2, ZooKeeper column: the abstract API over a ZkClient.

====================  =====================================================
abstract              ZooKeeper realization
====================  =====================================================
create(o)             create(o)
delete(o)             delete(o, ANY_VERSION)
read(o)               getData(o)
update(o, c)          setData(o, c, ANY_VERSION)
cas(o, cc, nc)        setData(o, nc, version-of-last-read(o))
sub_objects(o)        getChildren(o) + getData per child (step 2 optional)
block(o)              exists-watch on o, unblock on the creation event
monitor(o)            create o as an ephemeral node
wait_deletion(o)      exists-watch on o, return on the deletion event
====================  =====================================================
"""

from __future__ import annotations

from typing import Dict, List

from ..core.api import ObjectRecord
from ..zk.client import ZkClient
from ..zk.errors import BadVersionError, NoNodeError
from .coordination import CoordClient

__all__ = ["ZkCoordClient"]


class ZkCoordClient(CoordClient):
    """Adapter from the abstract API to the (E)ZK client library."""

    def __init__(self, zk: ZkClient):
        self.zk = zk
        #: version observed by this client's last read, per object (cas).
        self._seen_versions: Dict[str, int] = {}

    @property
    def client_id(self) -> str:
        return self.zk.client_id

    def create(self, object_id: str, data: bytes = b""):
        path = yield from self.zk.create(object_id, data)
        return path

    def delete(self, object_id: str):
        try:
            yield from self.zk.delete(object_id)
        except NoNodeError:
            return False
        return True

    def read(self, object_id: str):
        value = yield from self.zk.get_data(object_id)
        if (isinstance(value, tuple) and len(value) == 2
                and isinstance(value[0], bytes)):
            data, stat = value
            self._seen_versions[object_id] = stat.version
            return data
        # An operation extension consumed the read: its result comes back.
        return value

    def update(self, object_id: str, data: bytes):
        value = yield from self.zk.set_data(object_id, data)
        from ..zk.data_tree import Stat
        if isinstance(value, Stat):
            return True
        return value  # an operation extension consumed the update

    def cas(self, object_id: str, expected: bytes, new: bytes):
        version = self._seen_versions.get(object_id, -1)
        try:
            stat = yield from self.zk.set_data(object_id, new,
                                               version=version)
        except BadVersionError:
            return False
        self._seen_versions[object_id] = stat.version
        return True

    def sub_objects(self, object_id: str, with_data: bool = True):
        base = object_id.rstrip("/") or "/"
        names = yield from self.zk.get_children(base)
        records: List[ObjectRecord] = []
        for name in names:
            child = f"{base}/{name}" if base != "/" else f"/{name}"
            if with_data:
                try:
                    data, stat = yield from self.zk.get_data(child)
                except NoNodeError:
                    continue  # raced with a concurrent delete
                records.append(ObjectRecord(child, data, stat.czxid))
            else:
                # Name order == creation order for sequential siblings;
                # no per-child read needed (Table 2's footnote).
                records.append(ObjectRecord(child, b"", len(records)))
        if with_data:
            records.sort(key=lambda r: (r.seq, r.object_id))
        return records

    def block(self, object_id: str):
        value = yield from self.zk.block(object_id)
        return value

    def monitor(self, object_id: str, data: bytes = b""):
        """Create a liveness object; ``object_id`` is a name *prefix*.

        Sequential ephemeral nodes give every incarnation a fresh,
        creation-ordered name — what ZooKeeper's production election
        recipe relies on. Returns the actual object id.
        """
        path = yield from self.zk.create(object_id, data, ephemeral=True,
                                         sequential=True)
        return path

    def wait_deletion(self, object_id: str):
        while True:
            waiter = self.zk.wait_for_event(object_id)
            stat = yield from self.zk.exists(object_id, watch=True)
            if stat is None:
                self.zk.discard_waiter(object_id, waiter)
                return
            # Re-poll at a slow cadence: the deletion notification is
            # lost for good if it was raised while our replica was
            # crashed or cut off (the outer loop re-checks and re-arms).
            notification = yield from self.zk.await_notification(
                object_id, waiter)
            self.zk.discard_waiter(object_id, waiter)
            if notification is not None \
                    and notification.event_type == "NODE_DELETED":
                return

    def register_extension(self, name: str, source: str):
        path = yield from self.zk.register_extension(name, source)
        return path

    def acknowledge_extension(self, name: str):
        path = yield from self.zk.acknowledge_extension(name)
        return path
