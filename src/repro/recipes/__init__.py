"""Coordination recipes (§6): traditional vs. extension-based.

Each recipe exists in two variants with the same surface:

* the **traditional** implementation composes multiple RPCs against the
  fixed coordination kernel (the Curator-style approach the paper
  benchmarks as the baseline);
* the **extension-based** implementation ships a verified extension to
  the servers and performs each operation in a single RPC.

Recipes are written against the abstract API of Table 2
(:class:`~repro.recipes.coordination.CoordClient`); adapters map it to
ZooKeeper (:class:`~repro.recipes.zk_adapter.ZkCoordClient`) and
DepSpace (:class:`~repro.recipes.ds_adapter.DsCoordClient`).
"""

from .barrier import ExtensionBarrier, TraditionalBarrier
from .coordination import CoordClient, ObjectRecord
from .counter import ExtensionSharedCounter, TraditionalSharedCounter
from .ds_adapter import DsCoordClient
from .election import ExtensionElection, TraditionalElection
from .extensions import (BARRIER_EXT, COUNTER_EXT, ELECTION_EXT, QUEUE_EXT,
                         load_extension_source)
from .queue import ExtensionQueue, TraditionalQueue
from .util import ensure_object
from .zk_adapter import ZkCoordClient

__all__ = [
    "CoordClient", "ObjectRecord", "ZkCoordClient", "DsCoordClient",
    "TraditionalSharedCounter", "ExtensionSharedCounter",
    "TraditionalQueue", "ExtensionQueue",
    "TraditionalBarrier", "ExtensionBarrier",
    "TraditionalElection", "ExtensionElection",
    "COUNTER_EXT", "QUEUE_EXT", "BARRIER_EXT", "ELECTION_EXT",
    "load_extension_source", "ensure_object",
]
