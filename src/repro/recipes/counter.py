"""Shared counter recipes (Figure 5).

The traditional variant is the Curator-style read + conditional-write
retry loop: under contention, most cas attempts fail and the client
retries, burning RPCs. The extension variant issues one RPC that the
server-side :data:`~repro.recipes.extensions.COUNTER_EXT` turns into an
atomic read-modify-write.
"""

from __future__ import annotations

from .coordination import CoordClient
from .extensions import COUNTER_EXT
from .util import ensure_object

__all__ = ["TraditionalSharedCounter", "ExtensionSharedCounter"]

COUNTER_PATH = "/ctr"
TRIGGER_PATH = "/ctr-increment"


class TraditionalSharedCounter:
    """Figure 5, top: read + cas, retried until the swap lands."""

    def __init__(self, coord: CoordClient):
        self.coord = coord
        #: retry statistics for the benchmarks (attempts per success).
        self.attempts = 0
        self.successes = 0

    def setup(self):
        """Create the counter object (run once, by any client)."""
        yield from ensure_object(self.coord, COUNTER_PATH, b"0")

    def increment(self):
        """Atomically add one; returns the new value."""
        while True:
            self.attempts += 1
            data = yield from self.coord.read(COUNTER_PATH)
            value = int(data)
            swapped = yield from self.coord.cas(
                COUNTER_PATH, data, str(value + 1).encode())
            if swapped:
                self.successes += 1
                return value + 1

    def read(self):
        data = yield from self.coord.read(COUNTER_PATH)
        return int(data)


class ExtensionSharedCounter:
    """Figure 5, bottom: one RPC to the extension's trigger object."""

    EXTENSION_NAME = "ctr-increment"

    def __init__(self, coord: CoordClient):
        self.coord = coord

    def setup(self, register: bool = True):
        """Create the counter and register (or acknowledge) the extension.

        The first client passes ``register=True``; subsequent clients
        acknowledge the existing registration (§3.6).
        """
        if register:
            yield from ensure_object(self.coord, COUNTER_PATH, b"0")
            yield from self.coord.register_extension(
                self.EXTENSION_NAME, COUNTER_EXT)
        else:
            yield from self.coord.acknowledge_extension(self.EXTENSION_NAME)

    def increment(self):
        """Atomically add one; returns the new value (single RPC)."""
        value = yield from self.coord.read(TRIGGER_PATH)
        return value

    def read(self):
        data = yield from self.coord.read(COUNTER_PATH)
        return int(data)
