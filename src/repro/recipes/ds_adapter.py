"""Table 2, DepSpace column: the abstract API over a DsClient.

====================  =====================================================
abstract              DepSpace realization
====================  =====================================================
create(o)             cas(<o, *>, <o, data>)  — out() would insert a
                      duplicate tuple when o exists; the object model
                      requires name uniqueness, which DepSpace provides
                      via its conditional-insert cas
delete(o)             inp(<o, *>)
read(o)               rdp(<o, *>)
update(o, c)          replace(<o, *>, <o, c>)
cas(o, cc, nc)        replace(<o, cc>, <o, nc>)
sub_objects(o)        rdAll(<o/SUB_ANY, *>)  — one RPC
block(o)              rd(<o, *>)  — blocks server-side until created
monitor(o)            out a lease tuple renewed by this client
wait_deletion(o)      poll rdp(<o, *>) until None (DepSpace exposes no
                      deletion notification to clients)
====================  =====================================================
"""

from __future__ import annotations

from typing import List

from ..core.api import ObjectRecord
from ..core.errors import ObjectExistsError
from ..depspace.client import DsClient
from ..depspace.tuples import ANY, Prefix
from .coordination import CoordClient

__all__ = ["DsCoordClient"]


class DsCoordClient(CoordClient):
    """Adapter from the abstract API to the (E)DS client library."""

    def __init__(self, ds: DsClient, poll_interval_ms: float = 5.0):
        self.ds = ds
        self.poll_interval_ms = poll_interval_ms
        self._monitor_count = 0

    @property
    def client_id(self) -> str:
        return self.ds.client_id

    def create(self, object_id: str, data: bytes = b""):
        # Conditional insert: a plain out() would happily add a second
        # <o, ...> tuple (tuple spaces have no key uniqueness), after
        # which every per-object operation picks an arbitrary copy —
        # e.g. three clients racing the counter's setup would each
        # advance a private counter tuple.
        inserted = yield from self.ds.cas((object_id, ANY),
                                          (object_id, data))
        if not isinstance(inserted, bool):
            return inserted  # an operation extension consumed the create
        if not inserted:
            raise ObjectExistsError(object_id)
        return object_id

    def delete(self, object_id: str):
        taken = yield from self.ds.inp(object_id, ANY)
        return taken is not None

    def read(self, object_id: str):
        value = yield from self.ds.rdp(object_id, ANY)
        if (isinstance(value, tuple) and len(value) == 2
                and value[0] == object_id):
            return value[1]
        if value is None:
            return None
        # An operation extension consumed the read: its result comes back.
        return value

    def update(self, object_id: str, data: bytes):
        old = yield from self.ds.replace((object_id, ANY), (object_id, data))
        if old is None:
            return False
        if isinstance(old, tuple) and len(old) == 2 and old[0] == object_id:
            return True
        return old  # an operation extension consumed the update

    def cas(self, object_id: str, expected: bytes, new: bytes):
        old = yield from self.ds.replace((object_id, expected),
                                         (object_id, new))
        return old is not None

    def sub_objects(self, object_id: str, with_data: bool = True):
        prefix = object_id.rstrip("/") + "/"
        found = yield from self.ds.rdall(Prefix(prefix), ANY)
        if not isinstance(found, list):
            return found  # extension result
        records: List[ObjectRecord] = []
        for index, entry in enumerate(found):
            data = entry[1] if with_data and isinstance(entry[1], bytes) else b""
            records.append(ObjectRecord(entry[0], data, index))
        return records

    def block(self, object_id: str):
        value = yield from self.ds.rd(object_id, ANY)
        return value

    def monitor(self, object_id: str, data: bytes = b""):
        """Create a lease tuple; ``object_id`` is a name *prefix*.

        Mirrors the ZooKeeper adapter's sequential naming with a
        client-local counter (rdAll's insertion order provides the
        global creation order). Returns the actual object id.
        """
        self._monitor_count += 1
        actual = f"{object_id}{self.ds.client_id}-{self._monitor_count:06d}"
        yield from self.ds.out(actual, data, lease_ms=self.ds.lease_ms)
        return actual

    def wait_deletion(self, object_id: str):
        while True:
            found = yield from self.ds.rdp(object_id, ANY)
            if found is None:
                return
            yield self.ds.env.timeout(self.poll_interval_ms)

    def ensure_liveness(self) -> None:
        """Start renewing leases taken out on this client's behalf by a
        server-side monitor() (EDS only)."""
        renew = getattr(self.ds, "ensure_lease_renewal", None)
        if renew is not None:
            renew()

    def register_extension(self, name: str, source: str):
        value = yield from self.ds.register_extension(name, source)
        return value

    def acknowledge_extension(self, name: str):
        value = yield from self.ds.acknowledge_extension(name)
        return value
