"""Leader-election recipes (Figure 11).

Traditional clients monitor themselves into ``/leader/<id>``, rank all
registered clients by creation order, and — when not elected — wait for
the current leader's object to disappear before re-ranking: one extra
remote round after every leader change (T15), which is exactly the
signaling latency the extension variant eliminates.

The extension variant is the paper's combined operation + event
extension (§6.1.4): one blocking call returns when this client *is*
the leader; the event half reappoints on the death of any client.
"""

from __future__ import annotations

from .coordination import CoordClient
from .extensions import ELECTION_EXT
from .util import ensure_object

__all__ = ["TraditionalElection", "ExtensionElection"]

LEADER_ROOT = "/leader"
CLIENTS_ROOT = "/clients"


class TraditionalElection:
    """Figure 11, left: monitor + rank + wait-for-deletion loop.

    Id objects are creation-ordered, never-reused names minted by
    ``monitor`` (sequential ephemerals on ZooKeeper): ranking needs one
    listing without per-object reads, and stale follower reads cannot
    make a client wait on a *recreated* object (which would deadlock the
    rotation).
    """

    def __init__(self, coord: CoordClient):
        self.coord = coord
        self._own: str = ""

    def setup(self):
        yield from ensure_object(self.coord, LEADER_ROOT)

    def become_leader(self):
        """Blocks until this client is the acting leader."""
        self._own = yield from self.coord.monitor(f"{LEADER_ROOT}/n-")
        while True:
            objs = yield from self.coord.sub_objects(LEADER_ROOT,
                                                     with_data=False)
            ids = [record.object_id for record in objs]
            if self._own not in ids:
                continue  # our own object has not surfaced yet; re-rank
            rank = ids.index(self._own)
            if rank == 0:
                # T15's extra remote call: confirm the claim (our own
                # liveness object may have expired while we waited) —
                # the round the extension variant saves (§6.1.4).
                try:
                    confirmation = yield from self.coord.read(self._own)
                except Exception:
                    confirmation = None
                if confirmation is None:
                    self._own = yield from self.coord.monitor(
                        f"{LEADER_ROOT}/n-")
                    continue
                return True
            # Not elected: wait for our *predecessor* to vanish, then
            # re-rank (T10's objectDeletionEvent; watching the adjacent
            # object avoids the herd effect — the paper's footnote 2).
            yield from self.coord.wait_deletion(ids[rank - 1])

    def abdicate(self):
        """Step down by deleting the own id object."""
        yield from self.coord.delete(self._own)
        return True


class ExtensionElection:
    """Figure 11, right: one blocking call; reappointment is server-side."""

    EXTENSION_NAME = "leader-election"

    def __init__(self, coord: CoordClient):
        self.coord = coord

    def setup(self, register: bool = True):
        if register:
            yield from ensure_object(self.coord, LEADER_ROOT)
            yield from ensure_object(self.coord, CLIENTS_ROOT)
            yield from self.coord.register_extension(
                self.EXTENSION_NAME, ELECTION_EXT)
        else:
            yield from self.coord.acknowledge_extension(self.EXTENSION_NAME)
        # DepSpace clients must renew the lease the server-side monitor()
        # takes out on their behalf.
        ensure_liveness = getattr(self.coord, "ensure_liveness", None)
        if ensure_liveness is not None:
            ensure_liveness()

    def become_leader(self):
        """Single blocking RPC; returns once this client leads."""
        cid = self.coord.client_id
        value = yield from self.coord.block(f"{LEADER_ROOT}/{cid}")
        return value

    def abdicate(self):
        """Step down by deleting the own liveness object."""
        cid = self.coord.client_id
        yield from self.coord.delete(f"{CLIENTS_ROOT}/{cid}")
        return True
