"""Distributed queue recipes (Figure 7).

Traditional removal lists every element (sub_objects), then races other
consumers deleting the head; each lost race forces another element
attempt or a full relisting — the cost-per-successful-remove grows with
the number of concurrent consumers (Figure 8). The extension variant
removes the head atomically with a single RPC on ``/queue/head``.
"""

from __future__ import annotations

from typing import Optional

from .coordination import CoordClient
from .extensions import QUEUE_EXT
from .util import ensure_object

__all__ = ["TraditionalQueue", "ExtensionQueue"]

QUEUE_PATH = "/queue"
HEAD_PATH = "/queue/head"


class TraditionalQueue:
    """Figure 7, left: create to add; list + sort + delete-race to remove."""

    def __init__(self, coord: CoordClient):
        self.coord = coord
        self._next_eid = 0
        self.remove_attempts = 0
        self.remove_successes = 0

    def setup(self):
        yield from ensure_object(self.coord, QUEUE_PATH)

    def add(self, data: bytes = b""):
        """Append an element (one create; unaffected by contention)."""
        eid = f"{self.coord.client_id}-{self._next_eid:08d}"
        self._next_eid += 1
        path = yield from self.coord.create(f"{QUEUE_PATH}/{eid}", data)
        return path

    def remove(self, empty_ok: bool = False) -> Optional[bytes]:
        """Remove and return the head element's data.

        Retries on races with concurrent consumers (T7's outer loop).
        ``empty_ok=True`` returns None instead of spinning on an empty
        queue (useful in tests; the paper's workload keeps it non-empty).
        """
        while True:
            objs = yield from self.coord.sub_objects(QUEUE_PATH)
            if not objs and empty_ok:
                return None
            for obj in objs:  # oldest first
                self.remove_attempts += 1
                deleted = yield from self.coord.delete(obj.object_id)
                if deleted:
                    self.remove_successes += 1
                    return obj.data


class ExtensionQueue:
    """Figure 7, right: add unchanged; remove is one RPC on /queue/head."""

    EXTENSION_NAME = "queue-remove"

    def __init__(self, coord: CoordClient):
        self.coord = coord
        self._next_eid = 0

    def setup(self, register: bool = True):
        if register:
            yield from ensure_object(self.coord, QUEUE_PATH)
            yield from self.coord.register_extension(
                self.EXTENSION_NAME, QUEUE_EXT)
        else:
            yield from self.coord.acknowledge_extension(self.EXTENSION_NAME)

    def add(self, data: bytes = b""):
        eid = f"{self.coord.client_id}-{self._next_eid:08d}"
        self._next_eid += 1
        path = yield from self.coord.create(f"{QUEUE_PATH}/{eid}", data)
        return path

    def remove(self, empty_ok: bool = False) -> Optional[bytes]:
        """Atomic head removal; the extension returns the head's data."""
        while True:
            value = yield from self.coord.read(HEAD_PATH)
            if value is not None or empty_ok:
                return value
