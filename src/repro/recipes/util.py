"""Small shared helpers for the recipe implementations."""

from __future__ import annotations

from .coordination import CoordClient

__all__ = ["ensure_object"]


def ensure_object(coord: CoordClient, object_id: str, data: bytes = b""):
    """Create ``object_id`` if missing, tolerating the lost race.

    Multiple clients may run setup concurrently; whoever loses the
    create race simply proceeds (the paper's recipes leave such corner
    cases implicit).
    """
    try:
        yield from coord.create(object_id, data)
    except Exception:
        pass
    return object_id
