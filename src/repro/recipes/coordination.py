"""The abstract coordination-service client API of Table 2.

Recipes (shared counter, distributed queue, barrier, leader election)
are written once against this interface; per-service adapters map it to
ZooKeeper and DepSpace operations exactly as Table 2 specifies. All
methods are generators (simulation processes): call them with
``yield from``.
"""

from __future__ import annotations

from ..core.api import ObjectRecord

__all__ = ["CoordClient", "ObjectRecord"]


class CoordClient:
    """Abstract client-side view of a coordination service (Table 2)."""

    #: The paper's "client id" (used to name per-client objects).
    client_id: str

    def create(self, object_id: str, data: bytes = b""):
        """Create data object ``object_id``."""
        raise NotImplementedError
        yield  # pragma: no cover - marks this as a generator

    def delete(self, object_id: str):
        """Delete ``object_id``; returns True on success, False when the
        object was already gone (the recipes' race signal)."""
        raise NotImplementedError
        yield  # pragma: no cover

    def read(self, object_id: str):
        """Content of ``object_id`` — or, when an operation extension
        consumes the read, the extension's result (§3.7)."""
        raise NotImplementedError
        yield  # pragma: no cover

    def update(self, object_id: str, data: bytes):
        """Overwrite the content of ``object_id``."""
        raise NotImplementedError
        yield  # pragma: no cover

    def cas(self, object_id: str, expected: bytes, new: bytes):
        """Conditional update; returns True when the swap happened.

        ZooKeeper realizes this with the version observed by this
        client's last ``read`` of the object; DepSpace with a content
        ``replace`` (Table 2).
        """
        raise NotImplementedError
        yield  # pragma: no cover

    def sub_objects(self, object_id: str, with_data: bool = True):
        """Records of all sub-objects of ``object_id``, oldest first.

        ``with_data=False`` skips content fetches where the backend
        charges per-object reads (Table 2's footnote on step 2).
        """
        raise NotImplementedError
        yield  # pragma: no cover

    def block(self, object_id: str):
        """Wait until ``object_id`` exists."""
        raise NotImplementedError
        yield  # pragma: no cover

    def monitor(self, object_id: str, data: bytes = b""):
        """Create ``object_id`` bound to *this client's* liveness: the
        service deletes it when the client terminates or fails."""
        raise NotImplementedError
        yield  # pragma: no cover

    def wait_deletion(self, object_id: str):
        """Wait until ``object_id`` is deleted (the realization of the
        recipes' objectDeletionEvent handler: watches on ZooKeeper,
        polling on DepSpace)."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- extension lifecycle (no-ops on non-extensible services) ---------------

    def register_extension(self, name: str, source: str):
        """Register a server-side extension (extensible services only)."""
        raise NotImplementedError
        yield  # pragma: no cover

    def acknowledge_extension(self, name: str):
        """Opt in to an extension registered by another client."""
        raise NotImplementedError
        yield  # pragma: no cover
