"""Distributed barrier recipes (Figure 9).

Traditional entry costs three interactions: register (create), count
(sub_objects), then either block on /ready or create it. With the
extension, a client issues one blocking call on
``/ready/<round>/<id>``; the server registers it, counts, and releases
everyone the moment the threshold is reached — saving the two extra
RPCs after the last arrival that the paper identifies (§6.1.3).

Rounds: the paper evaluates repeated barrier episodes; each round uses
fresh ``/barrier/<round>`` and ``/ready/<round>`` objects.
"""

from __future__ import annotations

from .coordination import CoordClient
from .extensions import BARRIER_EXT
from .util import ensure_object

__all__ = ["TraditionalBarrier", "ExtensionBarrier"]

BARRIER_ROOT = "/barrier"
READY_ROOT = "/ready"
CONFIG_PATH = "/bconf"


class TraditionalBarrier:
    """Figure 9, left: create + count + block-or-release."""

    def __init__(self, coord: CoordClient, threshold: int):
        self.coord = coord
        self.threshold = threshold

    def setup(self):
        """Create the barrier roots (run once, by any client)."""
        yield from ensure_object(self.coord, BARRIER_ROOT)
        yield from ensure_object(self.coord, READY_ROOT)

    def setup_round(self, round_id: int):
        """Create one round's registration directory."""
        yield from ensure_object(self.coord, f"{BARRIER_ROOT}/{round_id}")

    def enter(self, round_id: int):
        """Block until ``threshold`` clients have entered this round."""
        cid = self.coord.client_id
        yield from self.coord.create(f"{BARRIER_ROOT}/{round_id}/{cid}")
        objs = yield from self.coord.sub_objects(
            f"{BARRIER_ROOT}/{round_id}", with_data=False)
        ready = f"{READY_ROOT}/{round_id}"
        if len(objs) < self.threshold:
            yield from self.coord.block(ready)
        else:
            # Losing the creation race just means someone else released
            # the barrier first (the paper's implicit corner case).
            yield from ensure_object(self.coord, ready)
        return True


class ExtensionBarrier:
    """Figure 9, right: one blocking call; the server does the rest."""

    EXTENSION_NAME = "barrier-enter"

    def __init__(self, coord: CoordClient, threshold: int):
        self.coord = coord
        self.threshold = threshold

    def setup(self, register: bool = True):
        if register:
            yield from ensure_object(self.coord, BARRIER_ROOT)
            yield from ensure_object(self.coord, READY_ROOT)
            yield from ensure_object(self.coord, CONFIG_PATH,
                                     str(self.threshold).encode())
            yield from self.coord.register_extension(
                self.EXTENSION_NAME, BARRIER_EXT)
        else:
            yield from self.coord.acknowledge_extension(self.EXTENSION_NAME)

    def enter(self, round_id: int):
        """Single blocking RPC on /ready/<round>/<client id>."""
        cid = self.coord.client_id
        value = yield from self.coord.block(
            f"{READY_ROOT}/{round_id}/{cid}")
        return value
