"""DepSpace client library: multicast to all replicas, vote on replies.

Every request is sent to all ``3f + 1`` replicas (the dominant client
cost in the paper's Figures 8 and 10); the client accepts a result once
``f + 1`` replicas returned the same answer, which masks up to ``f``
Byzantine replies. Blocking operations (``rd``/``in``) simply wait —
replicas defer their replies until the operation unblocks — with
periodic retransmission to survive message loss.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.retry import DS_RETRY_POLICY, RetryPolicy
from ..sim import Environment, Event, Network
from .bft import BftRequest, RequestId
from .protocol import (CasOp, DsOp, DsReply, InOp, InpOp, OutOp, RdAllOp,
                       RdOp, RdpOp, RenewOp, ReplaceOp, is_blocking)
from .tuples import TupleSpaceError

__all__ = ["DsClient", "DsClientError"]

_MAX_RETRANSMITS = 30


class DsClientError(TupleSpaceError):
    """Client-side failure (no quorum of matching replies)."""

    code = "CLIENT_ERROR"


def _freeze(value: Any) -> Any:
    """Hashable view of a reply value for vote counting."""
    if isinstance(value, list):
        return ("__list__",) + tuple(_freeze(v) for v in value)
    if isinstance(value, tuple):
        return tuple(_freeze(v) for v in value)
    return value


class DsClient:
    """One client endpoint of a replicated DepSpace."""

    def __init__(self, env: Environment, net: Network, node_id: str,
                 replica_ids: List[str], f: int = 1,
                 lease_ms: float = 2000.0,
                 unordered_reads: bool = False,
                 retry: Optional[RetryPolicy] = None):
        self.env = env
        self.net = net
        self.node_id = node_id
        self.replica_ids = list(replica_ids)
        self.f = f
        self.lease_ms = lease_ms
        # Shared retransmit pacing (repro.core.retry). The default DS
        # policy is a constant 1000 ms with no jitter — the historical
        # fixed timer, draw-for-draw — so default runs are unchanged;
        # chaos recipes can hand in a jittered policy instead.
        self.retry = retry or DS_RETRY_POLICY
        self._backoff = self.retry.start(f"dsclient-backoff-{node_id}")
        #: mirror of the replicas' read-only optimization flag: fast
        #: reads need 2f+1 matching replies instead of f+1.
        self.unordered_reads = unordered_reads
        self._seq = 0
        #: seq -> (future, votes per frozen value, required match count)
        self._inflight: Dict[int, Tuple[Event, Dict[Any, set], int]] = {}
        self._renewing = False
        self._min_lease_ms = lease_ms
        self._closed = False
        net.register(node_id, self._on_message)

    @property
    def client_id(self) -> str:
        """DepSpace identifies clients by their (authenticated) node id."""
        return self.node_id

    # -- inbox -------------------------------------------------------------

    def _on_message(self, src: str, msg: object) -> None:
        if not isinstance(msg, DsReply):
            return
        client_id, seq = msg.request_key
        if client_id != self.node_id:
            return
        entry = self._inflight.get(seq)
        if entry is None:
            return
        future, votes, required = entry
        key = (msg.ok, msg.error_code, _freeze(msg.value))
        votes.setdefault(key, set()).add(msg.replica_id)
        if len(votes[key]) >= required and not future.triggered:
            future.succeed(msg)

    # -- RPC core ----------------------------------------------------------

    def _call(self, op: DsOp):
        """Multicast ``op`` to every replica; wait for f+1 matching replies."""
        if self._closed:
            raise DsClientError("client closed")
        self._seq += 1
        seq = self._seq
        request = BftRequest(RequestId(self.node_id, seq), op)
        future = self.env.event()
        fast_read = self.unordered_reads and isinstance(op, (RdpOp, RdAllOp))
        required = 2 * self.f + 1 if fast_read else self.f + 1
        self._inflight[seq] = (future, {}, required)
        blocking = is_blocking(op)
        retransmits = 0
        obs = self.env.obs
        tracer = obs.tracer if obs is not None else None
        sent_at = self.env.now
        if tracer is not None:
            tracer.begin(self.node_id, seq, type(op).__name__, sent_at)
        self.net.broadcast(self.node_id, self.replica_ids, request)
        while True:
            timer = self.env.timeout(self._backoff.delay(retransmits))
            outcome = yield self.env.any_of([future, timer])
            if future in outcome:
                break
            retransmits += 1
            if not blocking and retransmits > _MAX_RETRANSMITS:
                self._inflight.pop(seq, None)
                if tracer is not None:
                    tracer.finish(self.node_id, seq, self.env.now, False)
                raise DsClientError(
                    f"no f+1 matching replies after {retransmits} tries")
            if tracer is not None:
                tracer.retry(self.node_id, seq, self.env.now)
            if obs is not None:
                obs.metrics.inc("client.retries")
            self.net.broadcast(self.node_id, self.replica_ids, request)
        self._inflight.pop(seq, None)
        reply = future.value
        if not reply.ok:
            if tracer is not None:
                tracer.finish(self.node_id, seq, self.env.now, False)
            raise self._reconstruct_error(reply)
        if obs is not None:
            if tracer is not None:
                tracer.finish(self.node_id, seq, self.env.now, True)
            obs.metrics.observe("client.latency_ms", "",
                                self.env.now - sent_at)
        return reply.value

    @staticmethod
    def _reconstruct_error(reply: DsReply) -> Exception:
        from ..core.errors import (BudgetExceededError, ExtensionCrashedError,
                                   ExtensionRejectedError, NotAuthorizedError,
                                   UnknownExtensionError)
        from .access import AccessDeniedError
        from .policy import PolicyViolationError
        from .tuples import BadTupleError
        if reply.error_code == ExtensionRejectedError.code:
            return ExtensionRejectedError([reply.error_message])
        for cls in (AccessDeniedError, PolicyViolationError, BadTupleError,
                    ExtensionCrashedError, BudgetExceededError,
                    NotAuthorizedError, UnknownExtensionError,
                    TupleSpaceError):
            if reply.error_code == getattr(cls, "code", None):
                return cls(reply.error_message)
        return DsClientError(reply.error_message or reply.error_code)

    # -- DepSpace API --------------------------------------------------------

    def out(self, *fields, space: str = "main",
            lease_ms: Optional[float] = None):
        """Insert a tuple (optionally lease-bound; leases auto-renew)."""
        value = yield from self._call(
            OutOp(tuple(fields), space=space, lease_ms=lease_ms))
        if lease_ms is not None:
            self._ensure_renewal(space, lease_ms)
        return value

    def rdp(self, *template, space: str = "main"):
        """Non-blocking read: oldest match or None."""
        value = yield from self._call(RdpOp(tuple(template), space=space))
        return value

    def inp(self, *template, space: str = "main"):
        """Non-blocking take: oldest match or None."""
        value = yield from self._call(InpOp(tuple(template), space=space))
        return value

    def rd(self, *template, space: str = "main"):
        """Blocking read: waits until a match exists."""
        value = yield from self._call(RdOp(tuple(template), space=space))
        return value

    def in_(self, *template, space: str = "main"):
        """Blocking take: waits until a match can be removed."""
        value = yield from self._call(InOp(tuple(template), space=space))
        return value

    def cas(self, template, entry, space: str = "main",
            lease_ms: Optional[float] = None):
        """Insert ``entry`` iff nothing matches ``template``; returns bool."""
        value = yield from self._call(
            CasOp(tuple(template), tuple(entry), space=space,
                  lease_ms=lease_ms))
        if value and lease_ms is not None:
            self._ensure_renewal(space, lease_ms)
        return value

    def replace(self, template, entry, space: str = "main"):
        """Swap the oldest match for ``entry``; returns the old tuple or None."""
        value = yield from self._call(
            ReplaceOp(tuple(template), tuple(entry), space=space))
        return value

    def rdall(self, *template, space: str = "main"):
        """Read every matching tuple (oldest first)."""
        value = yield from self._call(RdAllOp(tuple(template), space=space))
        return value

    # -- leases ------------------------------------------------------------------

    def _ensure_renewal(self, space: str, lease_ms: float) -> None:
        self._min_lease_ms = min(self._min_lease_ms, lease_ms)
        if not self._renewing:
            self._renewing = True
            self.env.process(self._renew_loop(space))

    def _renew_loop(self, space: str):
        while not self._closed:
            # Pace renewals by the shortest lease this client ever took.
            yield self.env.timeout(self._min_lease_ms / 3.0)
            if self._closed:
                return
            try:
                yield from self._call(RenewOp(space=space))
            except TupleSpaceError:
                return

    # -- lifecycle ----------------------------------------------------------------

    def kill(self) -> None:
        """Abrupt client death: stop renewing leases (failure detection)."""
        self._closed = True
        self.net.crash(self.node_id)
