"""DepSpace-like coordination service (Byzantine fault tolerant).

An augmented tuple space (Linda-style matching plus test-and-set-like
``cas``/``replace``), stacked layers for policy enforcement and access
control, and a PBFT-style total-order broadcast standing in for
BFT-SMaRt. Clients multicast to all ``3f + 1`` replicas and vote on
``f + 1`` matching replies.
"""

from .access import AccessControl, AccessDeniedError
from .bft import BftConfig, BftPeer, BftRequest, RequestId
from .client import DsClient, DsClientError
from .ensemble import DsEnsemble
from .ordering import RaftOrdering
from .policy import (Policy, PolicyViolationError, deny_ops, protect_prefix,
                     require_arity, require_field_type)
from .protocol import (CasOp, DsOp, DsReply, InOp, InpOp, OutOp, RdAllOp,
                       RdOp, RdpOp, RenewOp, ReplaceOp)
from .server import (BLOCKED, DsConfig, DsEvent, DsReplica, DsTimings, Waiter)
from .space import LeaseRecord, TupleSpace
from .tuples import (ANY, BadTupleError, Prefix, TupleSpaceError, is_template,
                     make_tuple, matches)

__all__ = [
    "DsClient", "DsClientError", "DsEnsemble", "DsReplica", "DsConfig",
    "DsTimings", "DsEvent", "Waiter", "BLOCKED",
    "TupleSpace", "LeaseRecord",
    "ANY", "Prefix", "make_tuple", "matches", "is_template",
    "TupleSpaceError", "BadTupleError",
    "AccessControl", "AccessDeniedError",
    "Policy", "PolicyViolationError", "deny_ops", "require_arity",
    "require_field_type", "protect_prefix",
    "BftPeer", "BftConfig", "BftRequest", "RequestId", "RaftOrdering",
    "DsOp", "OutOp", "RdpOp", "InpOp", "RdOp", "InOp", "CasOp", "ReplaceOp",
    "RdAllOp", "RenewOp", "DsReply",
]
