"""Access-control layer of the DepSpace stack.

DepSpace targets untrusted environments, so every replica checks each
(already ordered) operation against the logical space's ACL before it
reaches the tuple space. The check is deterministic — same decision at
every correct replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

__all__ = ["AccessControl", "AccessDeniedError"]


class AccessDeniedError(Exception):
    """The client is not authorized for this operation class."""

    code = "ACCESS_DENIED"


#: Operation classes ACLs speak about (DepSpace groups the API this way).
_OP_CLASS = {
    "out": "write",
    "cas": "write",
    "replace": "write",
    "renew": "write",
    "rdp": "read",
    "rd": "read",
    "rdall": "read",
    "inp": "take",
    "in": "take",
}


@dataclass
class AccessControl:
    """Per-space ACL: empty sets mean "everyone may".

    ``readers``/``writers``/``takers`` are allow-lists of client ids;
    ``denied`` is a global deny-list that wins over everything.
    """

    readers: Set[str] = field(default_factory=set)
    writers: Set[str] = field(default_factory=set)
    takers: Set[str] = field(default_factory=set)
    denied: Set[str] = field(default_factory=set)

    def check(self, op_name: str, client_id: str) -> None:
        """Raise :class:`AccessDeniedError` when the op is not allowed."""
        if client_id in self.denied:
            raise AccessDeniedError(f"{client_id} is deny-listed")
        op_class = _OP_CLASS.get(op_name)
        if op_class is None:
            raise AccessDeniedError(f"unknown operation {op_name!r}")
        allow_list = {
            "read": self.readers,
            "write": self.writers,
            "take": self.takers,
        }[op_class]
        if allow_list and client_id not in allow_list:
            raise AccessDeniedError(
                f"{client_id} may not {op_class} ({op_name})")

    @classmethod
    def open(cls) -> "AccessControl":
        """The default wide-open ACL."""
        return cls()
