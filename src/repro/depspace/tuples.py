"""Tuples and templates for the DepSpace substrate (Linda-style matching).

A *tuple* is an immutable sequence of primitive fields (str, bytes, int,
float, bool, None). A *template* is a sequence of the same length where
each position is either an exact value, :data:`ANY` (matches anything),
or :class:`Prefix` (matches strings with a given prefix — DepSpace's
``SUB_ANY`` used to emulate hierarchical sub-objects, Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence, Tuple

__all__ = ["ANY", "Prefix", "make_tuple", "matches", "is_template",
           "TupleSpaceError", "BadTupleError"]

_PRIMITIVES = (str, bytes, int, float, bool, type(None))


class TupleSpaceError(Exception):
    """Base error for tuple-space operations."""

    code = "TS_ERROR"


class BadTupleError(TupleSpaceError):
    """Malformed tuple or template."""

    code = "BAD_TUPLE"


@dataclass(frozen=True)
class _Any:
    """Wildcard: matches any single field. Use the :data:`ANY` singleton."""

    def __repr__(self) -> str:
        return "ANY"

    def wire_size(self) -> int:
        return 1


#: The wildcard field matcher.
ANY = _Any()


@dataclass(frozen=True)
class Prefix:
    """Matches string fields that start with ``prefix`` (SUB_ANY emulation)."""

    prefix: str

    def wire_size(self) -> int:
        return 2 + len(self.prefix)


def make_tuple(*fields: Any) -> Tuple[Any, ...]:
    """Validate and build a concrete tuple (no wildcards allowed)."""
    for value in fields:
        if not isinstance(value, _PRIMITIVES):
            raise BadTupleError(
                f"tuple fields must be primitives, got {type(value).__name__}")
    return tuple(fields)


def is_template(fields: Sequence[Any]) -> bool:
    """True if any field is a matcher (so this cannot be out()-ed)."""
    return any(isinstance(f, (_Any, Prefix)) for f in fields)


def _field_matches(pattern: Any, value: Any) -> bool:
    if isinstance(pattern, _Any):
        return True
    if isinstance(pattern, Prefix):
        return isinstance(value, str) and value.startswith(pattern.prefix)
    if isinstance(pattern, bool) or isinstance(value, bool):
        # bool is an int subclass; require exact type so 1 != True.
        return type(pattern) is type(value) and pattern == value
    return pattern == value


def matches(template: Sequence[Any], candidate: Sequence[Any]) -> bool:
    """True when ``candidate`` satisfies ``template`` position-wise."""
    if len(template) != len(candidate):
        return False
    return all(_field_matches(p, v) for p, v in zip(template, candidate))
