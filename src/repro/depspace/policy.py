"""Policy-enforcement layer of the DepSpace stack.

Above access control, DepSpace evaluates a logical *policy* over each
operation: a deterministic predicate over (operation, client, argument
tuple/template, current space). This module provides a small composable
rule system sufficient for the paper's use cases (e.g. restricting which
tuple shapes a space accepts, protecting the extension manager's
dedicated space from regular clients).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from .space import TupleSpace

__all__ = ["Policy", "PolicyViolationError", "Rule", "deny_ops",
           "require_arity", "require_field_type", "protect_prefix"]


class PolicyViolationError(Exception):
    """The operation was rejected by the space's policy."""

    code = "POLICY_VIOLATION"


#: A rule returns an error string to reject, or None to pass.
Rule = Callable[[str, str, Optional[Sequence[Any]], TupleSpace],
                Optional[str]]


@dataclass
class Policy:
    """An ordered list of rules; the first rejection wins."""

    rules: List[Rule] = field(default_factory=list)

    def check(self, op_name: str, client_id: str,
              argument: Optional[Sequence[Any]],
              space: TupleSpace) -> None:
        for rule in self.rules:
            verdict = rule(op_name, client_id, argument, space)
            if verdict is not None:
                raise PolicyViolationError(verdict)

    @classmethod
    def allow_all(cls) -> "Policy":
        return cls()


# -- rule combinators ---------------------------------------------------------

def deny_ops(*op_names: str) -> Rule:
    """Reject the listed operations outright."""
    banned = frozenset(op_names)

    def rule(op_name, client_id, argument, space):
        if op_name in banned:
            return f"operation {op_name!r} is disabled by policy"
        return None

    return rule


def require_arity(arity: int) -> Rule:
    """All tuples/templates in this space must have exactly ``arity`` fields."""

    def rule(op_name, client_id, argument, space):
        if argument is not None and len(argument) != arity:
            return f"this space requires {arity}-field tuples"
        return None

    return rule


def require_field_type(index: int, *types: type) -> Rule:
    """Constrain the type of concrete field ``index`` on inserts."""

    def rule(op_name, client_id, argument, space):
        if op_name not in ("out", "cas", "replace") or argument is None:
            return None
        if index >= len(argument):
            return None
        value = argument[index]
        if isinstance(value, types) or not isinstance(
                value, (str, bytes, int, float, bool)):
            return None
        return (f"field {index} must be one of "
                f"{[t.__name__ for t in types]}")

    return rule


def protect_prefix(prefix: str, *allowed_clients: str) -> Rule:
    """Only ``allowed_clients`` may write tuples whose name field starts
    with ``prefix`` (used to wall off the extension manager's objects)."""
    allowed = frozenset(allowed_clients)

    def rule(op_name, client_id, argument, space):
        if op_name not in ("out", "cas", "replace", "inp", "in"):
            return None
        if argument is None or not argument:
            return None
        name = argument[0]
        if isinstance(name, str) and name.startswith(prefix):
            if client_id not in allowed:
                return f"{prefix!r} objects are protected"
        return None

    return rule
