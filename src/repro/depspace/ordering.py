"""Crash-tolerant ordering for DepSpace: Raft behind the BftPeer surface.

``DsConfig(kernel="raft")`` swaps the PBFT stand-in for the Raft kernel
(:mod:`repro.raft`) without the replica or client layers changing: this
shim exposes the slice of :class:`~repro.depspace.bft.BftPeer`'s surface
that :class:`~repro.depspace.server.DsReplica` and the benchmarks
program against (``on_request`` / ``handle`` / ``crash`` / ``recover``,
``_exec_seq`` / ``_executed_ids`` / ``_pending`` bookkeeping, view and
primary introspection) and turns client multicasts into leader
proposals. It is the DepSpace analog of
:func:`repro.core.broadcast.make_zk_kernel`'s Raft branch.

Semantics mapping:

* the DepSpace wire protocol is unchanged — clients still multicast
  every request to all replicas. The Raft leader proposes what it
  receives; followers relay a request that sits pending past the
  request timeout (covering a client partitioned from the leader), and
  a newly established leader re-proposes everything still pending;
* the **agreed timestamp** each executed request carries — DepSpace's
  deterministic lease-expiry clock — is stamped by the leader at
  propose time and travels in the record's ``meta`` field, so every
  replica purges the same leases at the same logical instant;
* duplicates (the same request proposed by two successive leaderships)
  are filtered at delivery by request id, preserving exactly-once
  execution;
* there is no separate state-transfer path: a lagging or recovered
  replica is backfilled by the leader itself (suffix AppendEntries or
  InstallSnapshot), so ``exec_truthful`` is constantly True and
  ``DsReplica.recover`` skips the PBFT resync loop in this mode.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..raft import RaftConfig, RaftPeer
from ..sim import Environment
from .bft import BftConfig, BftRequest, RequestId

__all__ = ["RaftOrdering"]


class RaftOrdering:
    """One replica's ordering endpoint, BftPeer-shaped, Raft-powered."""

    #: Raft never advances execution past delivery (no view-change
    #: horizon skips), so the executed sequence is always truthful.
    exec_truthful = True

    def __init__(self, env: Environment, node_id: str, replica_ids: List[str],
                 send: Callable[[str, object], None],
                 execute: Callable[[BftRequest, float], None],
                 config: Optional[BftConfig] = None,
                 raft_config: Optional[RaftConfig] = None,
                 send_many: Optional[
                     Callable[[List[str], object], None]] = None):
        self.env = env
        self.node_id = node_id
        self.replica_ids = list(replica_ids)
        self.n = len(replica_ids)
        #: kept for surface parity with BftPeer (clients still mask on
        #: f + 1 matching replies; with crash faults they simply agree).
        self.f = (self.n - 1) // 3
        self._send = send
        self._execute = execute
        #: sweep/timeout pacing comes from the shared BFT knobs so the
        #: two kernels retry on the same schedule.
        self.config = config or BftConfig()

        self._exec_seq = 0
        #: requests seen but not yet executed (relay + re-proposal).
        self._pending: Dict[RequestId, Tuple[BftRequest, float]] = {}
        #: proposed under the current leadership (cleared on change).
        self._proposed_ids: Set[RequestId] = set()
        self._executed_ids: Set[RequestId] = set()
        #: server hook, part of the BftPeer surface; Raft backfills
        #: gaps itself so this is never invoked.
        self.on_gap: Optional[Callable[[int], None]] = None
        self._alive = True

        self.raft = RaftPeer(env, node_id, replica_ids, send=send,
                             deliver=self._on_deliver,
                             config=raft_config or RaftConfig(),
                             send_many=send_many)
        self.raft.on_role_change = self._on_role_change
        # Replica 0 leads at bootstrap, mirroring ZkEnsemble (PBFT's
        # view 0 likewise makes replica 0 the initial primary).
        self.raft.bootstrap(self.replica_ids[0])
        env.process(self._sweep())

    # -- role ----------------------------------------------------------------

    @property
    def view(self) -> int:
        """PBFT-style view number: 0 at bootstrap (term - 1)."""
        return max(self.raft.current_term - 1, 0)

    @property
    def leadership_epoch(self) -> int:
        return self.raft.current_term

    @property
    def primary_id(self) -> Optional[str]:
        """The leader as known locally (None mid-election, unlike PBFT
        where the primary is a pure function of the view)."""
        return self.raft.leader_id

    @property
    def is_primary(self) -> bool:
        return self.raft.is_leader

    def crash(self) -> None:
        self._alive = False
        self.raft.crash()

    def recover(self) -> None:
        self._alive = True
        self.raft.recover()
        self.env.process(self._sweep())

    # -- client requests ------------------------------------------------------

    def on_request(self, request: BftRequest) -> None:
        """A client request arrived at this replica (clients send to all)."""
        if not self._alive or request.request_id in self._executed_ids:
            return
        if request.request_id not in self._pending:
            self._pending[request.request_id] = (request, self.env.now)
        if self.raft.is_leader:
            self._propose(request)

    def _propose(self, request: BftRequest) -> None:
        if (request.request_id in self._proposed_ids
                or request.request_id in self._executed_ids):
            return
        self._proposed_ids.add(request.request_id)
        # The leader stamps the agreed timestamp; it rides in meta.
        self.raft.propose(request, meta=self.env.now)

    # -- protocol ------------------------------------------------------------

    def handle(self, src: str, msg: object) -> bool:
        """Process an ordering-protocol message; False if not ours."""
        if not self._alive:
            return True
        return self.raft.handle(src, msg)

    def _on_deliver(self, record) -> None:
        request = record.txn
        if request is None:
            return  # leadership barrier no-op
        self._exec_seq += 1
        self._pending.pop(request.request_id, None)
        self._proposed_ids.discard(request.request_id)
        if request.request_id in self._executed_ids:
            return  # re-proposed duplicate after a leader change
        self._executed_ids.add(request.request_id)
        self._execute(request, record.meta)

    def _on_role_change(self) -> None:
        # A new leadership may have to re-propose: entries the old
        # leader appended but never committed are gone.
        self._proposed_ids = set()
        if self.raft.is_leader:
            for request, _seen in list(self._pending.values()):
                self._propose(request)

    # -- liveness sweep -------------------------------------------------------

    def _sweep(self):
        """Leader: re-propose anything pending (e.g. requests that
        arrived while unestablished). Follower: relay a request stuck
        past the timeout to the leader — the one case client multicast
        does not cover is the client partitioned from the leader."""
        while self._alive:
            yield self.env.timeout(self.config.sweep_interval_ms)
            if not self._alive:
                return
            now = self.env.now
            if self.raft.is_leader:
                for request, _seen in list(self._pending.values()):
                    self._propose(request)
                continue
            leader = self.raft.leader_id
            if leader is None or leader == self.node_id:
                continue
            for rid, (request, seen) in list(self._pending.items()):
                if now - seen > self.config.request_timeout_ms:
                    self._send(leader, request)
                    self._pending[rid] = (request, now)
