"""PBFT-style total-order broadcast (the BFT-SMaRt stand-in).

DepSpace replicas (``n = 3f + 1``) agree on a single execution order:

* clients multicast requests to **all** replicas (this is what makes
  DepSpace clients send ~n× more data than ZooKeeper clients in the
  paper's Figures 8 and 10);
* the view's **primary** assigns sequence numbers and an agreed
  timestamp, broadcasting PRE-PREPARE;
* replicas exchange PREPARE (quorum ``2f`` + the pre-prepare) and then
  COMMIT (quorum ``2f + 1``), after which the request executes, in
  sequence order, exactly once per replica (client-level dedup included);
* every replica replies; clients accept a result once ``f + 1`` replies
  match (Byzantine answer masking happens at the client).

View changes are simplified: when a replica sees a request sit
unexecuted past a timeout it votes for view ``v + 1``; once ``2f + 1``
votes accumulate, the new primary re-proposes everything pending.
Checkpoint-based garbage collection and the full new-view proof are
omitted — they do not affect the measured behaviour at simulation scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..sim import Environment

__all__ = ["BftConfig", "BftPeer", "BftRequest"]


@dataclass
class BftConfig:
    request_timeout_ms: float = 400.0
    sweep_interval_ms: float = 100.0
    #: period of the (view, last-executed) gossip — PBFT's checkpoint
    #: stand-in, needed for liveness under partitions (an idle healed
    #: replica never otherwise learns it is behind). 0 disables it;
    #: off by default so benign-network figure metrics stay
    #: bit-identical to the seed (the chaos ensembles turn it on).
    status_interval_ms: float = 0.0


# -- messages -----------------------------------------------------------------

@dataclass(frozen=True)
class RequestId:
    client_id: str
    seq: int


@dataclass
class BftRequest:
    """Client request as it travels the ordering protocol.

    Requests are immutable and travel many times — the client multicasts
    one request object to all ``n`` replicas, and the primary re-ships it
    inside PRE-PREPARE — so the wire-size estimate is cached.
    """

    request_id: RequestId
    op: Any
    _wire_size: Optional[int] = field(default=None, repr=False, compare=False)

    def wire_size(self) -> int:
        size = self._wire_size
        if size is None:
            from ..sim import estimate_size
            # Mirrors the generic dataclass estimate for the real fields.
            size = 2 + estimate_size(self.request_id) + estimate_size(self.op)
            self._wire_size = size
        return size


@dataclass
class PrePrepare:
    view: int
    seq: int
    ts: float
    request: BftRequest


@dataclass
class Prepare:
    view: int
    seq: int
    request_id: RequestId
    replica_id: str


@dataclass
class Commit:
    view: int
    seq: int
    request_id: RequestId
    replica_id: str


@dataclass
class ViewChange:
    new_view: int
    last_executed: int
    replica_id: str


@dataclass
class NewView:
    view: int


@dataclass
class Status:
    """Periodic (view, last-executed) gossip — the stand-in for PBFT's
    checkpoint messages. Without it a replica healed from a partition
    after the last client request never learns it missed anything."""
    view: int
    exec_seq: int


@dataclass
class _Slot:
    view: int
    request: Optional[BftRequest] = None
    ts: float = 0.0
    prepares: Set[str] = field(default_factory=set)
    commits: Set[str] = field(default_factory=set)
    prepared: bool = False
    committed: bool = False
    executed: bool = False


class BftPeer:
    """One replica's endpoint of the ordering protocol."""

    def __init__(self, env: Environment, node_id: str, replica_ids: List[str],
                 send: Callable[[str, object], None],
                 execute: Callable[[BftRequest, float], None],
                 config: Optional[BftConfig] = None,
                 send_many: Optional[
                     Callable[[List[str], object], None]] = None):
        self.env = env
        self.node_id = node_id
        self.replica_ids = list(replica_ids)
        self.n = len(replica_ids)
        self.f = (self.n - 1) // 3
        if self.n < 3 * self.f + 1 or self.f < 1:
            raise ValueError("BFT requires n = 3f + 1 with f >= 1")
        self._send = send
        self._send_many = send_many
        self._execute = execute
        #: everyone but us — the all-to-all fan-out destination list.
        self._others = [r for r in self.replica_ids if r != node_id]
        self.config = config or BftConfig()

        self.view = 0
        self._next_seq = 0          # primary: next sequence to assign
        self._exec_seq = 0          # all: last executed sequence
        self._slots: Dict[int, _Slot] = {}
        #: requests seen but not yet executed (for re-proposal + timeouts).
        self._pending: Dict[RequestId, Tuple[BftRequest, float]] = {}
        #: primary: request ids proposed but not yet executed.
        self._proposed_ids: Set[RequestId] = set()
        self._executed_ids: Set[RequestId] = set()
        self._view_votes: Dict[int, Dict[str, int]] = {}
        #: server hook: we are missing executions up to seq; fetch state.
        self.on_gap: Optional[Callable[[int], None]] = None
        #: highest sequence number seen in any protocol message — runs
        #: ahead of ``_exec_seq`` while we are missing slots for good.
        self._max_seen_seq = 0
        #: ``_exec_seq`` at the previous stall check (gap detection).
        self._stall_exec_seq = -1
        self._last_status = 0.0
        #: False while ``_exec_seq`` overstates the actually-applied
        #: state (a view-change horizon skip, healed by state transfer).
        self.exec_truthful = True
        self._alive = True
        env.process(self._timeout_sweep())

    # -- role ----------------------------------------------------------------

    @property
    def primary_id(self) -> str:
        return self.replica_ids[self.view % self.n]

    @property
    def is_primary(self) -> bool:
        return self.primary_id == self.node_id

    @property
    def leadership_epoch(self) -> int:
        """Fencing token per the :class:`~repro.core.broadcast.AtomicBroadcast`
        contract: views count from 0, epochs from 1."""
        return self.view + 1

    def _fan_out(self, msg: object) -> None:
        """Send ``msg`` to every other replica.

        With a batched ``send_many`` transport the payload is sized once
        for the whole all-to-all round; destinations, ordering, and
        per-destination latency draws match the sequential loop.
        """
        if self._send_many is not None:
            self._send_many(self._others, msg)
            return
        for replica in self._others:
            self._send(replica, msg)

    def crash(self) -> None:
        self._alive = False

    def recover(self) -> None:
        self._alive = True
        self.env.process(self._timeout_sweep())

    # -- client requests ---------------------------------------------------------

    def on_request(self, request: BftRequest) -> None:
        """A client request arrived at this replica (clients send to all)."""
        if not self._alive:
            return
        if request.request_id in self._executed_ids:
            return
        if request.request_id not in self._pending:
            self._pending[request.request_id] = (request, self.env.now)
        if self.is_primary:
            self._propose(request)

    def _propose(self, request: BftRequest) -> None:
        if request.request_id in self._proposed_ids:
            return
        self._proposed_ids.add(request.request_id)
        self._next_seq += 1
        seq = self._next_seq
        msg = PrePrepare(self.view, seq, self.env.now, request)
        slot = self._slot(seq)
        assert slot is not None, "primary assigned an already-executed seq"
        slot.request = request
        slot.ts = msg.ts
        slot.prepares.add(self.node_id)   # pre-prepare counts as the
        self._fan_out(msg)                # primary's prepare

    # -- protocol messages --------------------------------------------------

    def handle(self, src: str, msg: object) -> bool:
        """Process an ordering-protocol message; False if not ours."""
        if not self._alive:
            return True
        if isinstance(msg, (PrePrepare, Prepare, Commit)):
            self._note_view(msg.view)
            if msg.seq > self._max_seen_seq:
                self._max_seen_seq = msg.seq
        if isinstance(msg, Status):
            self._note_view(msg.view)
            if msg.exec_seq > self._max_seen_seq:
                self._max_seen_seq = msg.exec_seq
            return True
        if isinstance(msg, PrePrepare):
            self._on_preprepare(src, msg)
        elif isinstance(msg, Prepare):
            self._on_prepare(msg)
        elif isinstance(msg, Commit):
            self._on_commit(msg)
        elif isinstance(msg, ViewChange):
            self._on_view_change(msg)
        elif isinstance(msg, NewView):
            self._on_new_view(src, msg)
        else:
            return False
        return True

    def _note_view(self, view: int) -> None:
        """Catch up to a view we missed the change for.

        A correct replica only emits protocol traffic in a view it has
        installed (2f + 1 voted for it), so the view number itself is
        safe to adopt from evidence. Having missed the view change
        means we were crashed or cut off while it happened — we have
        almost certainly missed executions too, so hand off to server
        state transfer rather than waiting for a gap that in-order
        re-delivery will never fill.
        """
        if view <= self.view:
            return
        self.view = view
        self._slots = {}
        self._proposed_ids = set()
        self._next_seq = self._exec_seq
        if self.on_gap is not None:
            self.on_gap(self._exec_seq)

    def _slot(self, seq: int) -> Optional[_Slot]:
        if seq <= self._exec_seq:
            return None  # stale message for an already-executed slot
        slot = self._slots.get(seq)
        if slot is None or slot.view < self.view:
            slot = _Slot(view=self.view)
            self._slots[seq] = slot
        return slot

    def _on_preprepare(self, src: str, msg: PrePrepare) -> None:
        if msg.view != self.view or src != self.primary_id:
            return
        if msg.request.request_id in self._executed_ids:
            return
        slot = self._slot(msg.seq)
        if slot is None:
            return
        if slot.request is not None:
            return  # duplicate pre-prepare for this slot
        slot.request = msg.request
        slot.ts = msg.ts
        self._pending.setdefault(msg.request.request_id,
                                 (msg.request, self.env.now))
        slot.prepares.add(src)        # the primary's implicit prepare
        slot.prepares.add(self.node_id)
        prepare = Prepare(self.view, msg.seq, msg.request.request_id,
                          self.node_id)
        self._fan_out(prepare)
        self._check_prepared(msg.seq)

    def _on_prepare(self, msg: Prepare) -> None:
        if msg.view != self.view:
            return
        slot = self._slot(msg.seq)
        if slot is None:
            return
        slot.prepares.add(msg.replica_id)
        self._check_prepared(msg.seq)

    def _check_prepared(self, seq: int) -> None:
        slot = self._slots.get(seq)
        if (slot is None or slot.prepared or slot.request is None
                or len(slot.prepares) < 2 * self.f + 1):
            return
        slot.prepared = True
        slot.commits.add(self.node_id)
        commit = Commit(self.view, seq, slot.request.request_id, self.node_id)
        self._fan_out(commit)
        self._check_committed(seq)

    def _on_commit(self, msg: Commit) -> None:
        if msg.view != self.view:
            return
        slot = self._slot(msg.seq)
        if slot is None:
            return
        slot.commits.add(msg.replica_id)
        self._check_committed(msg.seq)

    def _check_committed(self, seq: int) -> None:
        slot = self._slots.get(seq)
        if (slot is None or slot.committed or not slot.prepared
                or len(slot.commits) < 2 * self.f + 1):
            return
        slot.committed = True
        self._execute_ready()

    def _execute_ready(self) -> None:
        if not self.exec_truthful:
            # Execution freezes during state transfer: running committed
            # slots on top of an incomplete prefix would corrupt the
            # local state, emit junk replies that count toward client
            # reply quorums, and inflate the exec_seq this replica
            # reports in view-change votes (dragging truthful peers
            # into skipping to a sequence nobody actually reached).
            # The snapshot install covers these slots and unfreezes.
            return
        while True:
            slot = self._slots.get(self._exec_seq + 1)
            if slot is None or not slot.committed or slot.request is None:
                return
            self._exec_seq += 1
            del self._slots[self._exec_seq]
            request = slot.request
            self._pending.pop(request.request_id, None)
            self._proposed_ids.discard(request.request_id)
            if request.request_id in self._executed_ids:
                continue  # re-proposed duplicate after a view change
            self._executed_ids.add(request.request_id)
            self._execute(request, slot.ts)

    # -- view changes ------------------------------------------------------------

    def _timeout_sweep(self):
        while self._alive:
            yield self.env.timeout(self.config.sweep_interval_ms)
            if not self._alive:
                return
            now = self.env.now
            stuck = [
                rid for rid, (_req, seen) in self._pending.items()
                if now - seen > self.config.request_timeout_ms
            ]
            if stuck:
                self._vote_view_change(self.view + 1)
                # Restart the clocks so we do not spam votes every sweep.
                for rid in stuck:
                    request, _ = self._pending[rid]
                    self._pending[rid] = (request, now)
            # Gap detection: protocol traffic runs ahead of our execution
            # point and two consecutive sweeps made zero progress. The
            # missing slots were shipped while we were cut off and will
            # never be re-sent (peers delete executed slots), so only a
            # state transfer can unstick us.
            if self._max_seen_seq > self._exec_seq:
                if (self._exec_seq == self._stall_exec_seq
                        and self.on_gap is not None):
                    self.on_gap(self._exec_seq)
                self._stall_exec_seq = self._exec_seq
            else:
                self._stall_exec_seq = -1
            if (self.config.status_interval_ms > 0 and now
                    - self._last_status >= self.config.status_interval_ms):
                self._last_status = now
                status = Status(self.view, self._exec_seq)
                self._fan_out(status)

    def _vote_view_change(self, new_view: int) -> None:
        if new_view <= self.view:
            return
        votes = self._view_votes.setdefault(new_view, {})
        if self.node_id in votes:
            return
        votes[self.node_id] = self._exec_seq
        msg = ViewChange(new_view, self._exec_seq, self.node_id)
        self._fan_out(msg)
        self._maybe_install_view(new_view)

    def _on_view_change(self, msg: ViewChange) -> None:
        if msg.new_view <= self.view:
            return
        votes = self._view_votes.setdefault(msg.new_view, {})
        votes[msg.replica_id] = msg.last_executed
        # Join the view change once f + 1 others want it (PBFT liveness rule).
        if len(votes) > self.f and self.node_id not in votes:
            self._vote_view_change(msg.new_view)
        self._maybe_install_view(msg.new_view)

    def _maybe_install_view(self, new_view: int) -> None:
        votes = self._view_votes.get(new_view, {})
        if len(votes) < 2 * self.f + 1 or new_view <= self.view:
            return
        self.view = new_view
        # Drop un-executed slots; their requests are still pending and will
        # be re-proposed by the new primary.
        self._slots = {}
        self._proposed_ids = set()
        # Sequence numbering resumes after the most-advanced voter so the
        # new primary never reuses a slot some replica already executed.
        horizon = max([self._exec_seq, *votes.values()])
        self._next_seq = horizon
        if self._exec_seq < horizon:
            self._skip_to(horizon)
        if self.is_primary:
            new_view_msg = NewView(self.view)
            self._fan_out(new_view_msg)
            for request, _seen in list(self._pending.values()):
                self._propose(request)

    def _skip_to(self, seq: int) -> None:
        """We missed executions up to ``seq``; defer to server state sync."""
        self._exec_seq = seq
        self.exec_truthful = False
        if self.on_gap is not None:
            self.on_gap(seq)

    def _on_new_view(self, src: str, msg: NewView) -> None:
        if msg.view <= self.view:
            return
        if self.replica_ids[msg.view % self.n] != src:
            return
        self.view = msg.view
        self._slots = {}
        self._proposed_ids = set()
        self._next_seq = self._exec_seq
