"""Wire-level operations and replies for the DepSpace substrate."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

__all__ = [
    "DsOp", "OutOp", "RdpOp", "InpOp", "RdOp", "InOp", "CasOp", "ReplaceOp",
    "RdAllOp", "RenewOp", "DsReply", "StateRequest", "StateResponse",
    "is_blocking", "is_insert",
]


class DsOp:
    """Marker base class for DepSpace operations."""


@dataclass
class OutOp(DsOp):
    entry: Tuple[Any, ...]
    space: str = "main"
    #: lease duration in ms; None means the tuple lives until taken.
    lease_ms: Optional[float] = None


@dataclass
class RdpOp(DsOp):
    template: Tuple[Any, ...]
    space: str = "main"


@dataclass
class InpOp(DsOp):
    template: Tuple[Any, ...]
    space: str = "main"


@dataclass
class RdOp(DsOp):
    """Blocking read: the reply is deferred until a match exists."""

    template: Tuple[Any, ...]
    space: str = "main"


@dataclass
class InOp(DsOp):
    """Blocking take: the reply is deferred until a match is removed."""

    template: Tuple[Any, ...]
    space: str = "main"


@dataclass
class CasOp(DsOp):
    """Insert ``entry`` iff nothing matches ``template``; returns bool."""

    template: Tuple[Any, ...]
    entry: Tuple[Any, ...]
    space: str = "main"
    lease_ms: Optional[float] = None


@dataclass
class ReplaceOp(DsOp):
    """Swap the oldest match of ``template`` for ``entry``; returns old."""

    template: Tuple[Any, ...]
    entry: Tuple[Any, ...]
    space: str = "main"


@dataclass
class RdAllOp(DsOp):
    template: Tuple[Any, ...]
    space: str = "main"


@dataclass
class RenewOp(DsOp):
    """Extend every lease owned by the calling client."""

    space: str = "main"


def is_blocking(op: DsOp) -> bool:
    return isinstance(op, (RdOp, InOp))


def is_insert(op: DsOp) -> bool:
    return isinstance(op, (OutOp, CasOp, ReplaceOp))


@dataclass
class DsReply:
    request_key: tuple          # (client_id, seq)
    replica_id: str
    ok: bool
    value: Any = None
    error_code: str = ""
    error_message: str = ""


@dataclass
class StateRequest:
    """A lagging replica asks peers for a snapshot."""

    upto_seq: int


@dataclass
class StateResponse:
    upto_seq: int
    snapshot: dict
    fingerprint: int
