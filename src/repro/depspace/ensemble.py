"""Convenience builder: a DepSpace ensemble (3f + 1 replicas) + clients."""

from __future__ import annotations

from typing import List, Optional

from ..sim import Environment, LatencyModel, Network
from .client import DsClient
from .server import DsConfig, DsReplica

__all__ = ["DsEnsemble"]


class DsEnsemble:
    """``3f + 1`` DepSpace replicas on one simulated network."""

    #: client implementation handed out by :meth:`client` (EDS overrides).
    client_class = DsClient

    def __init__(self, env: Optional[Environment] = None, f: int = 1,
                 config: Optional[DsConfig] = None,
                 net: Optional[Network] = None, seed: int = 0,
                 latency: Optional[LatencyModel] = None,
                 name_prefix: str = "ds"):
        if f < 1:
            raise ValueError("f must be >= 1")
        self.env = env or Environment()
        self.net = net or Network(self.env, latency=latency, seed=seed)
        self.config = config or DsConfig()
        self.f = f
        n = 3 * f + 1
        self.replica_ids = [f"{name_prefix}{i}" for i in range(n)]
        self.replicas: List[DsReplica] = [
            DsReplica(self.env, self.net, node_id, self.replica_ids,
                      self.config)
            for node_id in self.replica_ids
        ]
        self._client_count = 0

    def start(self) -> None:
        """Present for symmetry with ZkEnsemble (no bootstrap needed)."""

    def replica(self, node_id: str) -> DsReplica:
        return self.replicas[self.replica_ids.index(node_id)]

    @property
    def primary(self) -> DsReplica:
        if getattr(self.config, "kernel", "pbft") == "raft":
            for replica in self.replicas:
                if replica._alive and replica.ordering.is_primary:
                    return replica
            # Mid-election: fall back to the latest locally-known leader.
            leader_id = next(
                (r.ordering.primary_id for r in self.replicas
                 if r._alive and r.ordering.primary_id), self.replica_ids[0])
            return self.replica(leader_id)
        view = max(r.bft.view for r in self.replicas if r._alive)
        return self.replicas[view % len(self.replicas)]

    def client(self, node_id: Optional[str] = None,
               unordered_reads: Optional[bool] = None) -> DsClient:
        """Create a client.

        ``unordered_reads`` overrides the ensemble default per client
        (mirroring ZK's per-session read knobs): a recipe that tolerates
        BFT-SMaRt's weaker read guarantee opts in and pays 2f+1 matching
        replies instead of f+1, skipping the ordering protocol entirely.
        Only meaningful when the replicas run with
        ``DsConfig.unordered_reads`` — the fast path must exist
        server-side for the larger quorum to be answered.
        """
        if node_id is None:
            node_id = f"dsclient{self._client_count}"
        self._client_count += 1
        if unordered_reads is None:
            unordered_reads = self.config.unordered_reads
        return self.client_class(self.env, self.net, node_id,
                                 self.replica_ids, f=self.f,
                                 lease_ms=self.config.lease_ms,
                                 unordered_reads=unordered_reads)

    def spaces_consistent(self) -> bool:
        """True when every live replica holds the same tuple state."""
        fingerprints = {
            replica.fingerprint()
            for replica in self.replicas if replica._alive
        }
        return len(fingerprints) == 1
