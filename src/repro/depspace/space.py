"""The tuple-space layer: DepSpace's storage and synchronization kernel.

Implements the (non-blocking halves of the) DepSpace API:

* ``out(t)`` — insert a tuple,
* ``rdp(T)`` / ``inp(T)`` — read / take the oldest match, or None,
* ``rdall(T)`` — read every match (Table 2's ``rdAll``),
* ``cas(T, t)`` — insert ``t`` iff nothing matches ``T`` (the paper's
  "test-and-set-like" primitive),
* ``replace(T, t)`` — atomically swap the oldest match for ``t``.

Blocking (``rd``/``in``) is implemented by the replica on top of this
layer, since waiter bookkeeping must be coordinated with reply routing.
Determinism: "oldest match" is insertion order, and insertion order is
fixed by the BFT total order, so every correct replica returns the same
answers.

Lookups are indexed on the first field — the object convention
``(name, payload)`` makes that the discriminating field — with an
exact-value bucket index plus a sorted name list for ``Prefix``
templates, so matching cost stays logarithmic as the space grows.

Lease tuples (DepSpace's client-failure detection, Table 2's
``monitor``): a tuple may be registered with a lease; replicas purge
expired leases deterministically using the agreed timestamp that the
ordering protocol attaches to every delivered request.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .tuples import BadTupleError, Prefix, _Any, is_template, matches

__all__ = ["TupleSpace", "LeaseRecord"]


@dataclass
class LeaseRecord:
    owner: str
    expires_at: float


class TupleSpace:
    """Insertion-ordered multiset of tuples with template matching."""

    def __init__(self):
        self._entries: Dict[int, Tuple[Any, ...]] = {}
        self._next_key = 0
        self._leases: Dict[int, LeaseRecord] = {}
        #: exact first field -> insertion-ordered set of keys.
        self._buckets: Dict[Any, Dict[int, None]] = {}
        #: sorted (string first field, key) pairs for Prefix queries.
        self._names: List[Tuple[str, int]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    # -- index maintenance -------------------------------------------------

    def _index_add(self, key: int, entry: Tuple[Any, ...]) -> None:
        if not entry:
            return
        first = entry[0]
        try:
            self._buckets.setdefault(first, {})[key] = None
        except TypeError:
            pass  # unhashable first field: full scans will find it
        if isinstance(first, str):
            bisect.insort(self._names, (first, key))

    def _index_remove(self, key: int, entry: Tuple[Any, ...]) -> None:
        if not entry:
            return
        first = entry[0]
        try:
            bucket = self._buckets.get(first)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del self._buckets[first]
        except TypeError:
            pass
        if isinstance(first, str):
            index = bisect.bisect_left(self._names, (first, key))
            if index < len(self._names) and self._names[index] == (first, key):
                del self._names[index]

    def _candidates(self, template: Sequence[Any]) -> Iterator[int]:
        """Keys to test against ``template``, in insertion order."""
        if not template:
            return iter(())
        first = template[0]
        if isinstance(first, _Any):
            return iter(self._entries)
        if isinstance(first, Prefix):
            low = bisect.bisect_left(self._names, (first.prefix, -1))
            keys = []
            for name, key in self._names[low:]:
                if not name.startswith(first.prefix):
                    break
                keys.append(key)
            keys.sort()
            return iter(keys)
        try:
            bucket = self._buckets.get(first)
        except TypeError:
            return iter(self._entries)
        return iter(bucket) if bucket is not None else iter(())

    # -- core operations ---------------------------------------------------

    def out(self, entry: Sequence[Any], lease: Optional[LeaseRecord] = None) -> None:
        """Insert a concrete tuple (optionally lease-bound)."""
        entry = tuple(entry)
        if is_template(entry):
            raise BadTupleError("cannot out() a template")
        if not entry:
            raise BadTupleError("tuples must have at least one field")
        key = self._next_key
        self._next_key += 1
        self._entries[key] = entry
        self._index_add(key, entry)
        if lease is not None:
            self._leases[key] = lease

    def _find(self, template: Sequence[Any]) -> Optional[int]:
        for key in self._candidates(template):
            if matches(template, self._entries[key]):
                return key
        return None

    def rdp(self, template: Sequence[Any]) -> Optional[Tuple[Any, ...]]:
        """Oldest matching tuple, or None (non-destructive)."""
        key = self._find(template)
        return self._entries[key] if key is not None else None

    def _remove(self, key: int) -> Tuple[Any, ...]:
        entry = self._entries.pop(key)
        self._index_remove(key, entry)
        self._leases.pop(key, None)
        return entry

    def inp(self, template: Sequence[Any]) -> Optional[Tuple[Any, ...]]:
        """Remove and return the oldest matching tuple, or None."""
        key = self._find(template)
        return self._remove(key) if key is not None else None

    def rdall(self, template: Sequence[Any]) -> List[Tuple[Any, ...]]:
        """Every matching tuple, oldest first."""
        return [
            self._entries[key] for key in self._candidates(template)
            if matches(template, self._entries[key])
        ]

    def cas(self, template: Sequence[Any], entry: Sequence[Any]) -> bool:
        """Insert ``entry`` iff no tuple matches ``template``."""
        if self.rdp(template) is not None:
            return False
        self.out(entry)
        return True

    def replace(self, template: Sequence[Any],
                entry: Sequence[Any]) -> Optional[Tuple[Any, ...]]:
        """Swap the oldest match for ``entry``; returns the old tuple or None."""
        old = self.inp(template)
        if old is None:
            return None
        self.out(entry)
        return old

    # -- leases ----------------------------------------------------------------

    def renew_leases(self, owner: str, new_expiry: float) -> int:
        """Extend every lease held by ``owner``; returns how many."""
        count = 0
        for lease in self._leases.values():
            if lease.owner == owner:
                lease.expires_at = new_expiry
                count += 1
        return count

    def purge_expired(self, now: float) -> List[Tuple[Any, ...]]:
        """Remove tuples whose lease expired; returns them (oldest first)."""
        doomed_keys = [
            key for key, lease in self._leases.items()
            if lease.expires_at <= now
        ]
        return [self._remove(key) for key in sorted(doomed_keys)]

    def lease_of(self, entry: Sequence[Any]) -> Optional[LeaseRecord]:
        entry = tuple(entry)
        for key in self._candidates(entry):
            if self._entries[key] == entry and key in self._leases:
                return self._leases[key]
        return None

    # -- state transfer ----------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "entries": dict(self._entries),
            "next_key": self._next_key,
            "leases": {
                key: (lease.owner, lease.expires_at)
                for key, lease in self._leases.items()
            },
        }

    def restore(self, snapshot: dict) -> None:
        self._entries = dict(snapshot["entries"])
        self._next_key = snapshot["next_key"]
        self._leases = {
            key: LeaseRecord(owner, expires)
            for key, (owner, expires) in snapshot["leases"].items()
        }
        self._buckets = {}
        self._names = []
        pairs = []
        for key, entry in self._entries.items():
            if entry:
                first = entry[0]
                try:
                    self._buckets.setdefault(first, {})[key] = None
                except TypeError:
                    pass
                if isinstance(first, str):
                    pairs.append((first, key))
        pairs.sort()
        self._names = pairs

    def fingerprint(self) -> int:
        acc = hash(self._next_key)
        for key, entry in self._entries.items():
            acc ^= hash((key, entry))
        return acc
