"""A DepSpace replica: the layer stack of the paper's Figure 4.

From the bottom up: BFT ordering → **extension manager slot** (EDS hooks
in here; plain DepSpace passes straight through) → policy enforcement →
access control → tuple space. Every replica executes every ordered
request deterministically and replies; clients mask up to ``f``
Byzantine answers by voting.

Blocking semantics: ``rd``/``in`` with no match register a waiter (in
delivery order, identically at every correct replica); each insertion
re-evaluates waiters. EDS's event extensions can veto an unblock
(``unblock_filter``), making the operation block again (§5.2.2).

Client failure detection: tuples inserted with a lease expire unless
renewed; expiry is evaluated deterministically against the **agreed
timestamp** each ordered request carries, so all correct replicas purge
the same tuples at the same logical instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.broadcast import DS_KERNELS
from ..core.errors import ExtensionError
from ..obs import (M_INGRESS, M_REPLY, FourLetterReply, FourLetterRequest,
                   Observability, ObsConfig)
from ..raft import RaftConfig
from ..sim import Environment, FifoResource, Network
from .access import AccessControl, AccessDeniedError
from .bft import BftConfig, BftPeer, BftRequest, RequestId
from .ordering import RaftOrdering
from .policy import Policy, PolicyViolationError
from .protocol import (CasOp, DsOp, DsReply, InOp, InpOp, OutOp, RdAllOp,
                       RdOp, RdpOp, RenewOp, ReplaceOp, StateRequest,
                       StateResponse)
from .space import LeaseRecord, TupleSpace
from .tuples import BadTupleError, TupleSpaceError

__all__ = ["DsTimings", "DsConfig", "DsReplica", "DsEvent", "Waiter", "BLOCKED"]


@dataclass
class DsTimings:
    """Per-request CPU service times (ms) at one replica.

    BFT processing is more expensive than crash-tolerant processing
    (MAC verification on every protocol message); ``order_ms`` bundles
    that per-request protocol cost.
    """

    verify_ms: float = 0.015      # request authentication on arrival
    order_ms: float = 0.03        # per-request share of the 3-phase protocol
    execute_ms: float = 0.02      # tuple-space execution
    extension_exec_ms: float = 0.015
    fast_read_ms: float = 0.02    # unordered read-only execution


@dataclass
class DsConfig:
    timings: DsTimings = field(default_factory=DsTimings)
    bft: BftConfig = field(default_factory=BftConfig)
    lease_ms: float = 2000.0
    #: BFT-SMaRt's read-only optimization: rdp/rdAll answered directly
    #: from local state without ordering; clients then need 2f+1 (not
    #: f+1) matching replies. Off by default — the paper's DepSpace
    #: numbers are reproduced without it (see the ablation benchmark).
    unordered_reads: bool = False
    #: ordering kernel: ``"pbft"`` (default, Byzantine fault tolerant)
    #: or ``"raft"`` (crash-only, see :mod:`repro.depspace.ordering`).
    kernel: str = "pbft"
    #: Raft kernel tuning when ``kernel="raft"`` (None = defaults).
    raft: Optional[RaftConfig] = None
    #: observability plane (tracing + metrics + four-letter words).
    #: None (the default) leaves ``env.obs`` unset: no hook fires and
    #: simulated behaviour is byte-identical to pre-obs builds.
    obs: Optional[ObsConfig] = None


@dataclass
class DsEvent:
    """State-change event for EDS event extensions."""

    kind: str                     # "inserted" | "removed" | "expired"
    space: str
    entry: Tuple[Any, ...]


@dataclass
class Waiter:
    """A blocked rd/in registered deterministically at every replica."""

    request_id: RequestId
    op: DsOp
    take: bool                    # True for in, False for rd


#: Sentinel result: the operation blocked; no reply goes out yet.
BLOCKED = object()


class DsReplica:
    """One replica of the (extensible-ready) DepSpace service."""

    def __init__(self, env: Environment, net: Network, node_id: str,
                 replica_ids: List[str], config: Optional[DsConfig] = None):
        self.env = env
        self.net = net
        self.node_id = node_id
        self.replica_ids = list(replica_ids)
        self.config = config or DsConfig()
        self.timings = self.config.timings

        self.spaces: Dict[str, TupleSpace] = {"main": TupleSpace()}
        self.policies: Dict[str, Policy] = {}
        self.acls: Dict[str, AccessControl] = {}
        self._waiters: Dict[str, List[Waiter]] = {}
        self.cpu = FifoResource(env, name=f"{node_id}.cpu")
        #: last reply per client, resent on duplicate requests.
        self._reply_cache: Dict[str, DsReply] = {}

        kernel = getattr(self.config, "kernel", "pbft")
        if kernel == "pbft":
            self.ordering = BftPeer(env, node_id, replica_ids,
                                    send=self._bft_send,
                                    execute=self._execute_request,
                                    config=self.config.bft,
                                    send_many=self._bft_send_many)
        elif kernel == "raft":
            self.ordering = RaftOrdering(env, node_id, replica_ids,
                                         send=self._bft_send,
                                         execute=self._execute_request,
                                         config=self.config.bft,
                                         raft_config=self.config.raft,
                                         send_many=self._bft_send_many)
        else:
            raise ValueError(f"unknown kernel {kernel!r} (expected one "
                             f"of {DS_KERNELS})")
        self.ordering.on_gap = self._on_gap

        # EDS hooks (wired by repro.eds; None = plain DepSpace).
        #: (request, ts, replica, events) -> None | (consumed, value);
        #: value may be BLOCKED to suppress the reply.
        self.op_interceptor: Optional[
            Callable[[BftRequest, float, "DsReplica", List["DsEvent"]],
                     Optional[tuple]]] = None
        self.unblock_filter: Optional[
            Callable[[Waiter, Tuple[Any, ...], float, "DsReplica"], bool]] = None
        self.event_hook: Optional[
            Callable[[List[DsEvent], float, "DsReplica"], None]] = None
        #: called after a state-transfer install (EDS rebuilds its
        #: extension registry from the _em space, §3.8).
        self.on_state_installed: Optional[Callable[["DsReplica"], None]] = None
        #: (client_id, op) -> True when a read must be ordered anyway
        #: (EDS: an operation extension would consume it).
        self.read_router: Optional[Callable[[str, DsOp], bool]] = None

        if self.config.obs is not None:
            Observability.install(env, self.config.obs)

        #: fault-injection: corrupt every reply (Byzantine behaviour).
        self.byzantine = False
        self._alive = True
        self._state_synced = True
        self._resync_generation = 0
        net.register(node_id, self.handle_message)

    # -- administration ----------------------------------------------------

    @property
    def bft(self):
        """Back-compat alias: the ordering kernel endpoint (historically
        always a :class:`BftPeer`; ``kernel="raft"`` makes it a
        :class:`~repro.depspace.ordering.RaftOrdering`)."""
        return self.ordering

    def space(self, name: str = "main") -> TupleSpace:
        if name not in self.spaces:
            self.spaces[name] = TupleSpace()
        return self.spaces[name]

    def set_policy(self, space: str, policy: Policy) -> None:
        self.policies[space] = policy

    def set_acl(self, space: str, acl: AccessControl) -> None:
        self.acls[space] = acl

    # -- fault injection ---------------------------------------------------

    def crash(self) -> None:
        self._alive = False
        self.net.crash(self.node_id)
        self.ordering.crash()

    def recover(self) -> None:
        self._alive = True
        self.net.recover(self.node_id)
        self.ordering.recover()
        if self.config.kernel != "pbft":
            return  # the Raft leader backfills recovered replicas itself
        self._resync_generation += 1
        self.env.process(self._resync_loop(self._resync_generation))

    def _resync_loop(self, generation: int):
        """Retransmit StateRequest round-robin until a peer answers.

        A single-shot probe to a fixed peer is lost forever when that
        peer is itself crashed or partitioned away — the recovering
        replica would then stall behind the pipeline (missed slots
        never execute) while still counting as "live" for consistency
        checks. Rotating the target and retrying until a snapshot
        lands bounds the stall at however long the fault window keeps
        every eligible donor unreachable; the loop must not give up
        earlier, because an unsynced replica neither executes nor
        serves state.
        """
        peers = [p for p in self.replica_ids if p != self.node_id]
        self._state_synced = False
        attempt = 0
        while (self._alive and not self._state_synced
               and generation == self._resync_generation):
            self.net.send(self.node_id, peers[attempt % len(peers)],
                          StateRequest(self.ordering._exec_seq))
            attempt += 1
            yield self.env.timeout(self.config.bft.request_timeout_ms)

    def _any_peer(self) -> str:
        return next(p for p in self.replica_ids if p != self.node_id)

    # -- wiring ------------------------------------------------------------

    def _bft_send(self, dst: str, msg: object) -> None:
        self.net.send(self.node_id, dst, msg)

    def _bft_send_many(self, dsts, msg: object) -> None:
        # Fan-out path: size the payload once for the whole broadcast.
        self.net.broadcast(self.node_id, dsts, msg)

    def handle_message(self, src: str, msg: object) -> None:
        if not self._alive:
            return
        if isinstance(msg, BftRequest):
            self._on_client_request(src, msg)
            return
        if isinstance(msg, StateRequest):
            self._on_state_request(src, msg)
            return
        if isinstance(msg, StateResponse):
            self._on_state_response(src, msg)
            return
        if isinstance(msg, FourLetterRequest):
            self.net.send(self.node_id, src,
                          FourLetterReply(msg.xid, msg.command,
                                          self._four_letter(msg.command)))
            return
        self.ordering.handle(src, msg)

    # -- request intake ----------------------------------------------------

    def _on_client_request(self, src: str, request: BftRequest) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("ds.requests", self.node_id)
            if obs.tracer is not None:
                obs.tracer.mark(request.request_id.client_id,
                                request.request_id.seq, M_INGRESS,
                                self.env.now, self.node_id)
        if self._is_fast_read(request):
            work = self.cpu.submit(self.timings.verify_ms
                                   + self.timings.fast_read_ms)
            work.add_callback(lambda _e: self._execute_fast_read(request))
            return
        if request.request_id in self.ordering._executed_ids:
            cached = self._reply_cache.get(request.request_id.client_id)
            if (cached is not None and cached.request_key
                    == (request.request_id.client_id, request.request_id.seq)):
                self.net.send(self.node_id, src, cached)
            return
        work = self.cpu.submit(self.timings.verify_ms + self.timings.order_ms)
        work.add_callback(lambda _e: self.ordering.on_request(request))

    def _is_fast_read(self, request: BftRequest) -> bool:
        if not self.config.unordered_reads:
            return False
        op = request.op
        if not isinstance(op, (RdpOp, RdAllOp)):
            return False
        if self.read_router is not None and self.read_router(
                request.request_id.client_id, op):
            return False  # an extension consumes it: order normally
        return True

    def _execute_fast_read(self, request: BftRequest) -> None:
        """BFT-SMaRt read-only path: answer from local state, unordered.

        Correct replicas converge on ordered state, so 2f+1 matching
        replies (collected by the client) guarantee a value at least as
        fresh as the latest completed write.
        """
        if not self._alive:
            return
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("ds.fast_reads", self.node_id)
        client_id = request.request_id.client_id
        op = request.op
        try:
            space = self.space(op.space)
            if isinstance(op, RdpOp):
                self._check_layers("rdp", client_id, op.template, op.space)
                value = space.rdp(op.template)
            else:
                self._check_layers("rdall", client_id, op.template, op.space)
                value = space.rdall(op.template)
        except (TupleSpaceError, AccessDeniedError,
                PolicyViolationError) as error:
            self._reply_error(request.request_id, error, cache=False)
            return
        self._reply(request.request_id, value, cache=False)

    # -- ordered execution ------------------------------------------------------

    def _execute_request(self, request: BftRequest, ts: float) -> None:
        work = self.cpu.submit(self.timings.execute_ms)
        work.add_callback(lambda _e: self._execute_now(request, ts))

    def _execute_now(self, request: BftRequest, ts: float) -> None:
        if not self._alive:
            return
        obs = self.env.obs
        if obs is not None:
            obs.metrics.inc("ds.ordered", self.node_id)
        client_id = request.request_id.client_id
        op = request.op
        events: List[DsEvent] = []
        self._purge_leases(ts, events)

        if self.op_interceptor is not None:
            try:
                intercepted = self.op_interceptor(request, ts, self, events)
            except (TupleSpaceError, AccessDeniedError,
                    PolicyViolationError, ExtensionError) as error:
                self._reply_error(request.request_id, error)
                self._post_execute(events, ts)
                return
            if intercepted is not None:
                consumed, value = intercepted
                if consumed:
                    if value is not BLOCKED:
                        self._reply(request.request_id, value)
                    self._post_execute(events, ts)
                    return

        try:
            value = self._execute_op(client_id, op, ts, events,
                                     request_id=request.request_id)
        except (TupleSpaceError, AccessDeniedError,
                PolicyViolationError) as error:
            self._reply_error(request.request_id, error)
            self._post_execute(events, ts)
            return
        if value is not BLOCKED:
            self._reply(request.request_id, value)
        self._post_execute(events, ts)

    def _post_execute(self, events: List[DsEvent], ts: float) -> None:
        if self.event_hook is not None and events:
            self.event_hook(list(events), ts, self)

    # -- the layer stack ---------------------------------------------------------

    def _check_layers(self, op_name: str, client_id: str,
                      argument, space_name: str) -> None:
        """Policy enforcement, then access control (Figure 4 order)."""
        policy = self.policies.get(space_name)
        if policy is not None:
            policy.check(op_name, client_id, argument,
                         self.space(space_name))
        acl = self.acls.get(space_name)
        if acl is not None:
            acl.check(op_name, client_id)

    def _execute_op(self, client_id: str, op: DsOp, ts: float,
                    events: List[DsEvent],
                    request_id: Optional[RequestId] = None,
                    wake: bool = True) -> Any:
        """Run one operation through policy -> access -> tuple space.

        EDS extensions call this too (their ops run with the invoking
        client's privileges — the paper's sandbox requirement).
        """
        space = self.space(op.space)
        if isinstance(op, OutOp):
            self._check_layers("out", client_id, op.entry, op.space)
            lease = self._lease_for(client_id, op.lease_ms, ts)
            space.out(op.entry, lease=lease)
            events.append(DsEvent("inserted", op.space, tuple(op.entry)))
            if wake:
                self._wake_waiters(op.space, ts, events)
            return True
        if isinstance(op, RdpOp):
            self._check_layers("rdp", client_id, op.template, op.space)
            return space.rdp(op.template)
        if isinstance(op, InpOp):
            self._check_layers("inp", client_id, op.template, op.space)
            taken = space.inp(op.template)
            if taken is not None:
                events.append(DsEvent("removed", op.space, taken))
            return taken
        if isinstance(op, RdAllOp):
            self._check_layers("rdall", client_id, op.template, op.space)
            return space.rdall(op.template)
        if isinstance(op, CasOp):
            self._check_layers("cas", client_id, op.entry, op.space)
            if space.rdp(op.template) is not None:
                return False
            lease = self._lease_for(client_id, op.lease_ms, ts)
            space.out(op.entry, lease=lease)
            events.append(DsEvent("inserted", op.space, tuple(op.entry)))
            if wake:
                self._wake_waiters(op.space, ts, events)
            return True
        if isinstance(op, ReplaceOp):
            self._check_layers("replace", client_id, op.entry, op.space)
            old = space.replace(op.template, op.entry)
            if old is not None:
                events.append(DsEvent("removed", op.space, old))
                events.append(DsEvent("inserted", op.space, tuple(op.entry)))
                if wake:
                    self._wake_waiters(op.space, ts, events)
            return old
        if isinstance(op, RenewOp):
            self._check_layers("renew", client_id, None, op.space)
            return space.renew_leases(client_id, ts + self.config.lease_ms)
        if isinstance(op, (RdOp, InOp)):
            name = "in" if isinstance(op, InOp) else "rd"
            self._check_layers(name, client_id, op.template, op.space)
            take = isinstance(op, InOp)
            if take:
                found = space.inp(op.template)
                if found is not None:
                    events.append(DsEvent("removed", op.space, found))
            else:
                found = space.rdp(op.template)
            if found is not None:
                return found
            if request_id is None:
                raise BadTupleError(
                    "blocking operations cannot be nested in extensions")
            self._waiters.setdefault(op.space, []).append(
                Waiter(request_id, op, take))
            return BLOCKED
        raise BadTupleError(f"unknown operation: {op!r}")

    def _lease_for(self, client_id: str, lease_ms: Optional[float],
                   ts: float) -> Optional[LeaseRecord]:
        if lease_ms is None:
            return None
        return LeaseRecord(owner=client_id, expires_at=ts + lease_ms)

    # -- waiters ----------------------------------------------------------------

    def _wake_waiters(self, space_name: str, ts: float,
                      events: List[DsEvent]) -> None:
        waiters = self._waiters.get(space_name)
        if not waiters:
            return
        space = self.space(space_name)
        still_blocked: List[Waiter] = []
        for waiter in waiters:
            template = waiter.op.template  # type: ignore[union-attr]
            found = space.rdp(template)
            if found is None:
                still_blocked.append(waiter)
                continue
            if self.unblock_filter is not None and not self.unblock_filter(
                    waiter, found, ts, self):
                still_blocked.append(waiter)  # extension re-blocked it
                continue
            if waiter.take:
                space.inp(template)
                events.append(DsEvent("removed", space_name, found))
            self._reply(waiter.request_id, found)
        self._waiters[space_name] = still_blocked

    # -- lease expiry ------------------------------------------------------------

    def _purge_leases(self, ts: float, events: List[DsEvent]) -> None:
        for name, space in self.spaces.items():
            for entry in space.purge_expired(ts):
                events.append(DsEvent("expired", name, entry))

    # -- replies -----------------------------------------------------------------

    def _reply(self, request_id: RequestId, value: Any,
               cache: bool = True) -> None:
        if self.byzantine:
            value = ("CORRUPTED", value)
        reply = DsReply((request_id.client_id, request_id.seq),
                        self.node_id, True, value)
        if cache:
            self._reply_cache[request_id.client_id] = reply
        self._mark_reply(request_id)
        self.net.send(self.node_id, request_id.client_id, reply)

    def _reply_error(self, request_id: RequestId, error: Exception,
                     cache: bool = True) -> None:
        code = getattr(error, "code", "DS_ERROR")
        reply = DsReply((request_id.client_id, request_id.seq),
                        self.node_id, False, None, code, str(error))
        if cache:
            self._reply_cache[request_id.client_id] = reply
        self._mark_reply(request_id)
        self.net.send(self.node_id, request_id.client_id, reply)

    def _mark_reply(self, request_id: RequestId) -> None:
        obs = self.env.obs
        if obs is not None and obs.tracer is not None:
            obs.tracer.mark(request_id.client_id, request_id.seq,
                            M_REPLY, self.env.now, self.node_id)

    # -- introspection ------------------------------------------------------------

    def _four_letter(self, command: str) -> str:
        """Answer a four-letter admin word from local state only."""
        if command == "ruok":
            return "imok"
        if command == "stat":
            waiting = sum(len(ws) for ws in self._waiters.values())
            return (f"node: {self.node_id}\n"
                    f"kernel: {self.config.kernel}\n"
                    f"view: {getattr(self.ordering, 'view', 0)}\n"
                    f"exec_seq: {self.ordering._exec_seq}\n"
                    f"spaces: {len(self.spaces)}\n"
                    f"blocked_waiters: {waiting}")
        if command == "mntr":
            lines = [f"ds_kernel\t{self.config.kernel}",
                     f"ds_exec_seq\t{self.ordering._exec_seq}",
                     f"ds_spaces\t{len(self.spaces)}"]
            obs = self.env.obs
            if obs is not None:
                lines.extend(obs.metrics.mntr_lines(self.node_id))
            return "\n".join(lines)
        if command == "wchs":
            # DepSpace has no watches; report blocked waiters instead
            # (the closest notion of "who is parked on state changes").
            spaces = sum(1 for ws in self._waiters.values() if ws)
            total = sum(len(ws) for ws in self._waiters.values())
            return f"{spaces} spaces with waiters\nTotal waiters: {total}"
        return f"unknown command: {command!r}"

    # -- state transfer -----------------------------------------------------------

    def _on_gap(self, seq: int) -> None:
        if not self._state_synced:
            return  # a resync loop is already chasing a snapshot
        self._state_synced = False
        self._resync_generation += 1
        self.env.process(self._resync_loop(self._resync_generation))

    def _on_state_request(self, src: str, msg: StateRequest) -> None:
        if self.config.kernel != "pbft":
            return  # no snapshot protocol: the kernel backfills itself
        if not self.ordering.exec_truthful:
            # A view-change horizon skip advances exec_seq *before* the
            # matching snapshot arrives, so right now our spaces and
            # executed-ids lag the sequence number we would advertise.
            # Serving that snapshot poisons the receiver: it trusts
            # upto_seq, erases its own execution records, and later
            # re-executes requests behind the same client's reads. The
            # horizon maximum itself never skips (and crashed replicas
            # keep their state), so a truthful donor always exists.
            return
        snapshot = {
            "spaces": {name: sp.snapshot() for name, sp in self.spaces.items()},
            "exec_seq": self.ordering._exec_seq,
            "executed_ids": set(self.ordering._executed_ids),
            "view": self.ordering.view,
            # Blocked waiters are part of replicated state: they are
            # registered by ordered ops and consumed deterministically
            # by later inserts. A receiver that misses them would skip
            # the take a wake performs and diverge on the next insert.
            "waiters": {name: list(ws)
                        for name, ws in self._waiters.items() if ws},
            "reply_cache": dict(self._reply_cache),
        }
        fingerprint = self.fingerprint()
        self.net.send(self.node_id, src,
                      StateResponse(self.ordering._exec_seq, snapshot, fingerprint))

    def _on_state_response(self, src: str, msg: StateResponse) -> None:
        if self.config.kernel != "pbft":
            return
        if msg.upto_seq < self.ordering._exec_seq:
            # The donor is behind us. If our own state is sound we are
            # provably not the replica that needs a snapshot — stop
            # polling (stall detection restarts the chase if commits
            # later show we fell behind). If we skipped, keep rotating
            # until a donor at or past our skip target answers.
            if self.ordering.exec_truthful:
                self._state_synced = True
            return
        self._state_synced = True
        for name, snap in msg.snapshot["spaces"].items():
            self.space(name).restore(snap)
        self._waiters = {name: list(ws)
                         for name, ws in msg.snapshot.get("waiters",
                                                          {}).items()}
        self._reply_cache.update(msg.snapshot.get("reply_cache", {}))
        bft = self.ordering
        bft._exec_seq = msg.snapshot["exec_seq"]
        bft._executed_ids = set(msg.snapshot["executed_ids"])
        bft._next_seq = max(bft._next_seq, bft._exec_seq)
        donor_view = msg.snapshot.get("view", 0)
        if donor_view > bft.view:
            bft.view = donor_view
            bft._slots = {}
            bft._proposed_ids = set()
            bft._next_seq = bft._exec_seq
        # Requests the donor already executed must stop looking "stuck"
        # (they would otherwise drive view-change votes forever).
        for rid in list(bft._pending):
            if rid in bft._executed_ids:
                del bft._pending[rid]
        bft._stall_exec_seq = -1
        # The installed snapshot matches exec_seq again by definition;
        # drop slots it already covers and run any buffered committed
        # slots that execution skipped while it was frozen.
        bft.exec_truthful = True
        bft._slots = {s: sl for s, sl in bft._slots.items()
                      if s > bft._exec_seq}
        bft._execute_ready()
        if self.on_state_installed is not None:
            self.on_state_installed(self)

    def fingerprint(self) -> int:
        acc = 0
        for name, space in self.spaces.items():
            acc ^= hash(name) ^ space.fingerprint()
        return acc


