"""Four-letter-word-style introspection (``ruok``/``stat``/``mntr``/``wchs``).

ZooKeeper answers short diagnostic commands on its client port; the
analog here is a :class:`FourLetterRequest` message any live server
answers with a plain-text payload. The dispatch sits at the *end* of
each server's message ladder, so ordinary traffic never pays for it,
and no probe message exists unless a test or chaos run sends one —
default runs are untouched.

Servers implement the command set themselves (they know their own
state); this module owns the wire messages, the command list, and the
:func:`probe` helper that tests and chaos drivers use to ask a live
server for its state without reaching into private attributes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

__all__ = ["FOUR_LETTER_COMMANDS", "FourLetterRequest", "FourLetterReply",
           "probe"]

#: commands every introspectable server answers.
FOUR_LETTER_COMMANDS = ("ruok", "stat", "mntr", "wchs")

_probe_ids = itertools.count(1)


@dataclass
class FourLetterRequest:
    """Probe -> server: run one diagnostic command."""

    xid: int
    command: str


@dataclass
class FourLetterReply:
    """Server -> probe: the command's plain-text payload."""

    xid: int
    command: str
    payload: str


def probe(env, net, target: str, command: str,
          timeout_ms: float = 1000.0) -> str:
    """Ask a live server ``command``; returns the payload text.

    Registers a throwaway network endpoint, sends one request, and runs
    the simulation until the reply (or the timeout) arrives. Raises
    ``TimeoutError`` when the target never answers (crashed server).
    """
    node_id = f"obs-probe-{next(_probe_ids)}"
    done = env.event()

    def on_message(src: str, msg: object) -> None:
        if isinstance(msg, FourLetterReply) and not done.triggered:
            done.succeed(msg)

    net.register(node_id, on_message)
    net.send(node_id, target, FourLetterRequest(1, command))
    guard = env.any_of([done, env.timeout(timeout_ms)])
    env.run(until=guard)
    if not done.triggered:
        raise TimeoutError(f"{target} did not answer {command!r} "
                           f"within {timeout_ms:g} ms")
    return done.value.payload
