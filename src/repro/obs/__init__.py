"""Deterministic observability plane: traces, metrics, introspection.

Three pieces, all riding the simulation clock so instrumented runs stay
deterministic and replayable:

* :mod:`repro.obs.trace` — causal request traces keyed on the
  ``(client_node, xid)`` identity requests already carry (no wire-size
  changes), dumped as per-run JSONL and rendered by
  ``python -m repro.obs``;
* :mod:`repro.obs.metrics` — the counter/gauge/histogram registry the
  protocol layers report into;
* :mod:`repro.obs.introspect` — the four-letter-word endpoint
  (``ruok``/``stat``/``mntr``/``wchs``) live servers answer.

Everything is off by default: servers install the plane only when their
config carries an :class:`ObsConfig`, and every instrumentation point
is guarded by a single ``env.obs is None`` check that schedules nothing
and draws no randomness — the off path (and, for sim-side metrics, even
the on path) is byte-identical to an unobserved run.
"""

from .introspect import (FOUR_LETTER_COMMANDS, FourLetterReply,
                         FourLetterRequest, probe)
from .metrics import BUCKET_BOUNDS_MS, MetricsRegistry
from .report import (READ_MILESTONES, READ_PHASES, WRITE_MILESTONES,
                     WRITE_PHASES, breakdown, check_trace, format_breakdown,
                     format_waterfall, load_traces, phases_of)
from .trace import (M_DELIVER, M_INGRESS, M_PROPOSE, M_RECV, M_REPLY,
                    M_SEND, Observability, ObsConfig, Trace, Tracer)

__all__ = [
    "ObsConfig", "Observability", "Tracer", "Trace", "MetricsRegistry",
    "BUCKET_BOUNDS_MS", "FourLetterRequest", "FourLetterReply",
    "FOUR_LETTER_COMMANDS", "probe",
    "M_SEND", "M_INGRESS", "M_PROPOSE", "M_DELIVER", "M_REPLY", "M_RECV",
    "WRITE_MILESTONES", "WRITE_PHASES", "READ_MILESTONES", "READ_PHASES",
    "load_traces", "check_trace", "phases_of", "breakdown",
    "format_breakdown", "format_waterfall",
]
