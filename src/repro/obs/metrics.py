"""The metrics registry: counters, gauges, bucketed histograms.

Pure bookkeeping on plain dicts — incrementing a counter schedules
nothing, draws no randomness, and allocates at most one dict entry, so
an instrumented run produces *exactly* the same event stream as an
uninstrumented one (the property ``tests/test_obs.py`` pins). Every
metric is keyed ``(name, node)``; the empty node labels process-wide
metrics (client-side counters, run totals).

Histograms use fixed millisecond bucket bounds rather than adaptive
ones: adaptive bounds would depend on observation order and make the
``mntr`` output fragile across refactors that reorder instrumentation.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Tuple

__all__ = ["MetricsRegistry", "BUCKET_BOUNDS_MS"]

#: upper bounds (ms) of the histogram buckets; the last bucket is open.
BUCKET_BOUNDS_MS: Tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
    512.0, 1024.0, 2048.0)


class MetricsRegistry:
    """Counters/gauges/histograms shared by every instrumented component."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        #: (name, node) -> running total.
        self.counters: Dict[Tuple[str, str], float] = {}
        #: (name, node) -> last set value.
        self.gauges: Dict[Tuple[str, str], float] = {}
        #: (name, node) -> per-bucket counts (len(BUCKET_BOUNDS_MS) + 1).
        self.histograms: Dict[Tuple[str, str], List[int]] = {}

    # -- writes ------------------------------------------------------------

    def inc(self, name: str, node: str = "", value: float = 1.0) -> None:
        key = (name, node)
        self.counters[key] = self.counters.get(key, 0.0) + value

    def gauge(self, name: str, node: str, value: float) -> None:
        self.gauges[(name, node)] = value

    def observe(self, name: str, node: str, value_ms: float) -> None:
        key = (name, node)
        buckets = self.histograms.get(key)
        if buckets is None:
            buckets = [0] * (len(BUCKET_BOUNDS_MS) + 1)
            self.histograms[key] = buckets
        buckets[bisect_right(BUCKET_BOUNDS_MS, value_ms)] += 1

    # -- reads -------------------------------------------------------------

    def counter(self, name: str, node: str = "") -> float:
        return self.counters.get((name, node), 0.0)

    def total(self, name: str) -> float:
        """Sum of a counter across every node label."""
        return sum(v for (n, _node), v in self.counters.items() if n == name)

    def snapshot(self) -> Dict[str, object]:
        """Deterministic (sorted) dump of everything in the registry."""
        return {
            "counters": {f"{name}{{{node}}}": value for (name, node), value
                         in sorted(self.counters.items())},
            "gauges": {f"{name}{{{node}}}": value for (name, node), value
                       in sorted(self.gauges.items())},
            "histograms": {f"{name}{{{node}}}": list(counts)
                           for (name, node), counts
                           in sorted(self.histograms.items())},
        }

    def mntr_lines(self, node: str) -> List[str]:
        """``mntr``-style ``key\\tvalue`` lines for one node's metrics."""
        lines = [f"{name}\t{value:g}"
                 for (name, metric_node), value
                 in sorted(self.counters.items()) if metric_node == node]
        lines += [f"{name}\t{value:g}"
                  for (name, metric_node), value
                  in sorted(self.gauges.items()) if metric_node == node]
        return lines
