"""Trace-file analysis: phase decomposition, waterfalls, well-formedness.

Consumed by ``python -m repro.obs`` (the CLI renderer), the wallclock
bench (per-phase EXPERIMENTS.md table) and the obs test suite. Works on
the dict form of traces — either ``Trace.to_dict()`` objects straight
from a live tracer or lines parsed back from a JSONL dump.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple

from .trace import (M_DELIVER, M_INGRESS, M_PROPOSE, M_RECV, M_REPLY,
                    M_SEND)

__all__ = ["load_traces", "check_trace", "phases_of", "breakdown",
           "format_breakdown", "format_waterfall", "end_to_end_ms"]

#: canonical phase orders (the later milestone names the phase).
WRITE_MILESTONES = (M_SEND, M_INGRESS, M_PROPOSE, M_DELIVER, M_REPLY,
                    M_RECV)
WRITE_PHASES = ("ingress", "broadcast", "quorum", "apply", "reply")
READ_MILESTONES = (M_SEND, M_INGRESS, M_REPLY, M_RECV)
READ_PHASES = ("ingress", "execute", "reply")


def load_traces(path) -> List[dict]:
    traces = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                traces.append(json.loads(line))
    return traces


def end_to_end_ms(trace: dict) -> float:
    marks = trace["marks"]
    return marks[-1][1] - marks[0][1]


def check_trace(trace: dict) -> Optional[str]:
    """Well-formedness; returns a reason string or None when clean.

    * mark timestamps must be nondecreasing (they are appended in
      event-execution order, so a violation means a broken clock);
    * a finished trace must start at ``send`` and end at ``recv``;
    * a finished, non-retried trace must visit its canonical milestone
      sequence (write or read) in order;
    * aux spans must sit inside the trace's time envelope.
    """
    marks = trace["marks"]
    if not marks:
        return "no marks"
    times = [m[1] for m in marks]
    if any(b < a for a, b in zip(times, times[1:])):
        return "non-monotone mark timestamps"
    if not trace["done"]:
        return None               # abandoned in flight: nothing more to say
    if marks[0][0] != M_SEND or marks[-1][0] != M_RECV:
        return "finished trace does not span send..recv"
    if not trace["retried"] and trace["ok"]:
        names = [m[0] for m in marks]
        expected = (WRITE_MILESTONES if M_PROPOSE in names
                    else READ_MILESTONES)
        walk = iter(names)
        if not all(milestone in walk for milestone in expected):
            return (f"milestones {names} missing canonical order "
                    f"{expected}")
    for name, t0, t1, _node, _detail in trace.get("aux", ()):
        if t1 < t0:
            return f"aux span {name} ends before it starts"
        if t0 < times[0] or t1 > times[-1]:
            return f"aux span {name} escapes the trace envelope"
    return None


def phases_of(trace: dict) -> Optional[Dict[str, float]]:
    """Named phase durations for a finished, non-retried trace.

    Durations are deltas between consecutive canonical milestones, so
    ``sum(phases.values()) == end_to_end_ms(trace)`` exactly (floating
    addition aside). Returns None for traces that cannot be tiled
    (retried, unfinished, or missing milestones).
    """
    if not trace["done"] or trace["retried"]:
        return None
    names = [m[0] for m in trace["marks"]]
    times = [m[1] for m in trace["marks"]]
    milestones = (WRITE_MILESTONES if M_PROPOSE in names
                  else READ_MILESTONES)
    phase_names = (WRITE_PHASES if M_PROPOSE in names else READ_PHASES)
    stamps = []
    start = 0
    for milestone in milestones:
        try:
            index = names.index(milestone, start)
        except ValueError:
            return None
        stamps.append(times[index])
        start = index + 1
    return {phase: stamps[i + 1] - stamps[i]
            for i, phase in enumerate(phase_names)}


def _pct(ordered: List[float], p: float) -> float:
    if not ordered:
        return float("nan")
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def breakdown(traces: List[dict]) -> Dict[str, dict]:
    """Aggregate per-phase stats, split into write and read pipelines.

    Returns ``{"write": {phase: {count, mean_ms, p99_ms}, ...},
    "read": {...}}`` plus a ``_recon`` entry per pipeline recording how
    the phase sums reconcile against end-to-end latency.
    """
    samples: Dict[str, Dict[str, List[float]]] = {"write": {}, "read": {}}
    recon = {"write": [0.0, 0.0, 0], "read": [0.0, 0.0, 0]}
    for trace in traces:
        phases = phases_of(trace)
        if phases is None or not trace.get("ok"):
            continue
        pipeline = "write" if "quorum" in phases else "read"
        for phase, value in phases.items():
            samples[pipeline].setdefault(phase, []).append(value)
        recon[pipeline][0] += sum(phases.values())
        recon[pipeline][1] += end_to_end_ms(trace)
        recon[pipeline][2] += 1
    out: Dict[str, dict] = {}
    for pipeline, order in (("write", WRITE_PHASES), ("read", READ_PHASES)):
        rows = {}
        for phase in order:
            values = sorted(samples[pipeline].get(phase, []))
            if not values:
                continue
            rows[phase] = {
                "count": len(values),
                "mean_ms": sum(values) / len(values),
                "p99_ms": _pct(values, 99.0),
            }
        phase_sum, e2e_sum, count = recon[pipeline]
        rows["_recon"] = {
            "traces": count,
            "phase_sum_ms": phase_sum,
            "end_to_end_ms": e2e_sum,
        }
        out[pipeline] = rows
    return out


def format_breakdown(stats: Dict[str, dict]) -> str:
    lines = []
    for pipeline in ("write", "read"):
        rows = stats.get(pipeline, {})
        recon = rows.get("_recon", {})
        if not recon.get("traces"):
            continue
        lines.append(f"{pipeline} pipeline ({recon['traces']} traces):")
        for phase, row in rows.items():
            if phase == "_recon":
                continue
            lines.append(f"  {phase:<10} n={row['count']:<6} "
                         f"mean={row['mean_ms']:.4f} ms  "
                         f"p99={row['p99_ms']:.4f} ms")
        e2e = recon["end_to_end_ms"]
        drift = (abs(recon["phase_sum_ms"] - e2e) / e2e if e2e else 0.0)
        lines.append(f"  phase sum {recon['phase_sum_ms']:.4f} ms vs "
                     f"end-to-end {e2e:.4f} ms "
                     f"(drift {drift:.3%})")
    return "\n".join(lines) if lines else "no finished traces"


def format_waterfall(trace: dict, width: int = 48) -> str:
    """One trace as an offset-aligned waterfall of its marks."""
    marks = trace["marks"]
    t0, t1 = marks[0][1], marks[-1][1]
    span = (t1 - t0) or 1.0
    header = (f"trace {trace['trace_id']} {trace['op']} "
              f"client={trace['client']} xid={trace['xid']} "
              f"{'ok' if trace.get('ok') else 'failed'} "
              f"{t1 - t0:.4f} ms"
              f"{' (retried)' if trace.get('retried') else ''}")
    lines = [header]
    for phase, t, node, epoch, zxid in marks:
        offset = int((t - t0) / span * (width - 1))
        bar = " " * offset + "|"
        extra = f" epoch={epoch}" if epoch else ""
        extra += f" zxid={zxid:#x}" if zxid else ""
        lines.append(f"  {phase:<8} +{t - t0:9.4f} ms  {bar:<{width + 1}}"
                     f" {node}{extra}")
    for name, s0, s1, node, detail in trace.get("aux", ()):
        tag = f" {detail}" if detail else ""
        lines.append(f"  ~{name:<12} {s0 - t0:9.4f}..{s1 - t0:.4f} ms "
                     f"on {node}{tag}")
    return "\n".join(lines)
