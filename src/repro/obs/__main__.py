"""Render a trace dump: waterfalls + per-phase latency breakdown.

Usage::

    PYTHONPATH=src python -m repro.obs trace.jsonl
    PYTHONPATH=src python -m repro.obs trace.jsonl --waterfall 5
    PYTHONPATH=src python -m repro.obs trace.jsonl --check

``--check`` validates every trace (monotone marks, canonical milestone
order, aux spans inside the envelope) and exits 1 on the first defect —
the CI ``obs-smoke`` job leans on it.
"""

from __future__ import annotations

import argparse
import sys

from .report import (breakdown, check_trace, format_breakdown,
                     format_waterfall, load_traces)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs", description="render a JSONL trace dump")
    parser.add_argument("path", help="trace file (one JSON trace per line)")
    parser.add_argument("--waterfall", type=int, default=0, metavar="N",
                        help="print per-request waterfalls for the first "
                             "N finished traces")
    parser.add_argument("--check", action="store_true",
                        help="validate well-formedness; exit 1 on defects")
    args = parser.parse_args(argv)

    traces = load_traces(args.path)
    print(f"{len(traces)} traces "
          f"({sum(1 for t in traces if t['done'])} finished, "
          f"{sum(1 for t in traces if t['retried'])} retried)")

    if args.check:
        defects = 0
        for trace in traces:
            reason = check_trace(trace)
            if reason is not None:
                defects += 1
                print(f"MALFORMED trace {trace['trace_id']}: {reason}")
        if defects:
            print(f"{defects} malformed traces")
            return 1
        print("all traces well-formed")

    shown = 0
    for trace in traces:
        if shown >= args.waterfall:
            break
        if trace["done"]:
            print(format_waterfall(trace))
            shown += 1

    print(format_breakdown(breakdown(traces)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
