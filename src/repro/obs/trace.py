"""Causal request traces over the simulation clock.

A trace follows one client request by its ``(client_node, xid)``
identity — the pair the existing :class:`~repro.zk.txn.RequestMeta`
already carries end-to-end — so tracing adds **no wire fields**: any
new field on the client/server envelopes would change their
``estimate_size`` and shift every simulated latency (see the warning in
``zk/txn.py``). Correlation happens in an in-process side table instead.

A trace is an ordered list of **milestone marks** ``(phase, t, node,
epoch, zxid)`` appended in event-execution order. Because the simulator
executes events in nondecreasing time order, mark timestamps are
monotone by construction, and the per-phase latencies — the deltas
between consecutive milestones — telescope to *exactly* the end-to-end
latency (``recv - send``). That is the determinism-plus-reconciliation
argument in DESIGN.md §13.

Write-path milestones::

    send -> ingress -> propose -> deliver -> reply -> recv
    |ingress |broadcast|  quorum  |  apply  | reply |

Read-path milestones: ``send -> ingress -> reply -> recv`` (phases
ingress / execute / reply). Side activity that does not sit on the
request's critical path — watch fan-out, lease-gate waits — is recorded
as **aux spans** attached to the owning trace, exempt from phase tiling.

Trace ids are assigned in ``begin()`` order from a plain counter; with
identical seeds the event order is identical, so two runs dump
byte-identical JSONL files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = ["ObsConfig", "Observability", "Tracer", "Trace",
           "M_SEND", "M_INGRESS", "M_PROPOSE", "M_DELIVER", "M_REPLY",
           "M_RECV"]

# milestone names (the later mark names the phase that ends at it).
M_SEND = "send"
M_INGRESS = "ingress"
M_PROPOSE = "propose"
M_DELIVER = "deliver"
M_REPLY = "reply"
M_RECV = "recv"


@dataclass
class ObsConfig:
    """Observability knobs (attach to ``ZkConfig.obs`` / ``DsConfig.obs``).

    ``runtime`` is populated at install time with the shared
    :class:`Observability` instance so drivers that handed a config into
    a workload can retrieve the tracer afterwards without changing any
    workload return type.
    """

    trace: bool = True
    metrics: bool = True
    runtime: Optional["Observability"] = field(
        default=None, repr=False, compare=False)


class Trace:
    """One request's milestone marks and aux spans."""

    __slots__ = ("trace_id", "client", "xid", "op", "marks", "aux",
                 "retried", "done", "ok")

    def __init__(self, trace_id: int, client: str, xid: int, op: str):
        self.trace_id = trace_id
        self.client = client
        self.xid = xid
        self.op = op
        #: [(phase, t, node, epoch, zxid)], appended in event order.
        self.marks: List[Tuple[str, float, str, int, int]] = []
        #: [(name, t0, t1, node, detail)] off-critical-path activity.
        self.aux: List[Tuple[str, float, float, str, str]] = []
        self.retried = False
        self.done = False
        self.ok: Optional[bool] = None

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "client": self.client,
            "xid": self.xid,
            "op": self.op,
            "retried": self.retried,
            "done": self.done,
            "ok": self.ok,
            "marks": [list(m) for m in self.marks],
            "aux": [list(a) for a in self.aux],
        }


class Tracer:
    """The per-run side table of active and finished traces."""

    def __init__(self) -> None:
        self._next_id = 0
        self.active: Dict[Tuple[str, int], Trace] = {}
        self.finished: List[Trace] = []

    # -- client side -------------------------------------------------------

    def begin(self, client: str, xid: int, op: str, now: float) -> None:
        self._next_id += 1
        trace = Trace(self._next_id, client, xid, op)
        trace.marks.append((M_SEND, now, client, 0, 0))
        self.active[(client, xid)] = trace

    def retry(self, client: str, xid: int, now: float) -> None:
        trace = self.active.get((client, xid))
        if trace is not None:
            trace.retried = True
            trace.marks.append((M_SEND, now, client, 0, 0))

    def finish(self, client: str, xid: int, now: float, ok: bool) -> None:
        trace = self.active.pop((client, xid), None)
        if trace is not None:
            trace.marks.append((M_RECV, now, client, 0, 0))
            trace.done = True
            trace.ok = ok
            self.finished.append(trace)

    # -- server side -------------------------------------------------------

    def mark(self, client: str, xid: int, phase: str, now: float,
             node: str, epoch: int = 0, zxid: int = 0) -> None:
        trace = self.active.get((client, xid))
        if trace is not None:
            trace.marks.append((phase, now, node, epoch, zxid))

    def aux(self, client: str, xid: int, name: str, t0: float, t1: float,
            node: str, detail: str = "") -> None:
        trace = self.active.get((client, xid))
        if trace is not None:
            trace.aux.append((name, t0, t1, node, detail))

    # -- output ------------------------------------------------------------

    def traces(self) -> List[Trace]:
        """Every trace (finished first, then abandoned), by trace id."""
        abandoned = sorted(self.active.values(), key=lambda t: t.trace_id)
        return sorted(self.finished + abandoned, key=lambda t: t.trace_id)

    def dump_jsonl(self) -> str:
        """Deterministic JSONL: one trace per line, ordered by trace id."""
        lines = [json.dumps(trace.to_dict(), sort_keys=True,
                            separators=(",", ":"))
                 for trace in self.traces()]
        return "\n".join(lines) + ("\n" if lines else "")


class Observability:
    """The shared per-run observability plane (lives on ``env.obs``).

    Components reach it with one attribute read (``env.obs``), guarded
    by a ``None`` test; when no config asked for it the attribute stays
    ``None`` and every instrumentation point costs a single comparison.
    """

    __slots__ = ("config", "metrics", "tracer")

    def __init__(self, config: ObsConfig):
        self.config = config
        self.metrics = MetricsRegistry()
        self.tracer = Tracer() if config.trace else None

    @staticmethod
    def install(env, config: ObsConfig) -> "Observability":
        """Idempotently attach an observability plane to ``env``.

        The first server constructed with an obs-bearing config creates
        the plane; later servers (and other configs pointing at the same
        env) share it. The config's ``runtime`` back-reference lets the
        driver that built the config fetch the tracer after the run.
        """
        obs = env.obs
        if obs is None:
            obs = Observability(config)
            env.obs = obs
        config.runtime = obs
        return obs
