"""Operation-history recording for the chaos harness.

Every client operation is logged as an *invoke* event when it starts
and an *ok*/*fail* event when it returns, stamped with the virtual
time, the process (client) name, and — for ZooKeeper-family clients —
the session's last-seen zxid. The checker consumes paired events as
:class:`OpRecord` objects; the replay test consumes the raw event
stream through :meth:`History.canonical`, which is deterministic down
to the byte for a fixed seed and schedule.

:class:`RecordingCoord` wraps any :class:`~repro.recipes.CoordClient`
so recipe code runs unmodified while producing a history.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional

from ..recipes import CoordClient

__all__ = ["HistoryEvent", "OpRecord", "History", "RecordingCoord"]


@dataclasses.dataclass(frozen=True)
class HistoryEvent:
    """One invoke/ok/fail line in the history log."""

    seq: int            # global order of recording (total order)
    time: float         # virtual ms
    proc: str           # client / process name
    phase: str          # "invoke" | "ok" | "fail"
    op: str             # operation name ("read", "inc", "remove", ...)
    key: str = ""       # object id / path the op targets
    value: Any = None   # argument (invoke) or result/error (ok/fail)
    zxid: int = 0       # session's last-seen zxid at completion


@dataclasses.dataclass
class OpRecord:
    """An invoke paired with its completion (or left pending)."""

    proc: str
    op: str
    key: str
    arg: Any
    status: str                 # "ok" | "fail" | "pending"
    result: Any
    invoke_time: float
    return_time: Optional[float]
    zxid: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def pending(self) -> bool:
        return self.status == "pending"

    @property
    def in_doubt(self) -> bool:
        """Fail/pending updates *may* have taken effect server-side."""
        return self.status != "ok"


class History:
    """Append-only event log shared by all recorded clients of one run."""

    def __init__(self) -> None:
        self.events: List[HistoryEvent] = []
        self._open: dict = {}   # token -> index of the invoke event

    # -- recording ---------------------------------------------------------

    def invoke(self, time: float, proc: str, op: str, key: str = "",
               value: Any = None) -> int:
        """Log an invocation; returns a token to close it with."""
        token = len(self.events)
        self.events.append(HistoryEvent(token, time, proc, "invoke",
                                        op, key, value))
        self._open[token] = token
        return token

    def ok(self, token: int, time: float, value: Any = None,
           zxid: int = 0) -> None:
        invoke = self.events[self._open.pop(token)]
        self.events.append(HistoryEvent(len(self.events), time, invoke.proc,
                                        "ok", invoke.op, invoke.key,
                                        value, zxid))

    def fail(self, token: int, time: float, error: str) -> None:
        invoke = self.events[self._open.pop(token)]
        self.events.append(HistoryEvent(len(self.events), time, invoke.proc,
                                        "fail", invoke.op, invoke.key,
                                        error))

    # -- consumption -------------------------------------------------------

    def ops(self) -> List[OpRecord]:
        """Pair invokes with completions; unmatched invokes are pending."""
        records: List[OpRecord] = []
        open_by_token: dict = {}
        for event in self.events:
            if event.phase == "invoke":
                record = OpRecord(event.proc, event.op, event.key,
                                  event.value, "pending", None,
                                  event.time, None)
                open_by_token[event.seq] = record
                records.append(record)
            else:
                # Completions close the oldest open op of the same
                # proc/op/key (each sim process has ≤1 outstanding op,
                # so this is unambiguous).
                for token, record in open_by_token.items():
                    if (record.proc == event.proc and record.op == event.op
                            and record.key == event.key):
                        record.status = event.phase
                        record.result = event.value
                        record.return_time = event.time
                        record.zxid = event.zxid
                        del open_by_token[token]
                        break
        return records

    def canonical(self) -> str:
        """Deterministic byte representation (replay comparisons)."""
        lines = []
        for e in self.events:
            lines.append(f"{e.seq}\t{e.time:.6f}\t{e.proc}\t{e.phase}\t"
                         f"{e.op}\t{e.key}\t{e.value!r}\t{e.zxid}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)


class RecordingCoord(CoordClient):
    """A :class:`CoordClient` that logs every call to a :class:`History`.

    Also exposes :meth:`mark` for recipe-level operations (increment,
    remove, enter, ...) whose semantics the checkers reason about —
    the raw object ops underneath stay in the log for replay and
    debugging, but checkers filter on the recipe-level marks.
    """

    def __init__(self, inner: CoordClient, history: History, proc: str,
                 env) -> None:
        self.inner = inner
        self.history = history
        self.proc = proc
        self.env = env

    @property
    def client_id(self) -> str:
        return self.inner.client_id

    def _zxid(self) -> int:
        zk = getattr(self.inner, "zk", None)
        return getattr(zk, "last_zxid", 0) if zk is not None else 0

    def _record(self, op: str, key: str, arg: Any, gen):
        token = self.history.invoke(self.env.now, self.proc, op, key, arg)
        try:
            value = yield from gen
        except Exception as exc:
            self.history.fail(token, self.env.now,
                              f"{exc.__class__.__name__}: {exc}")
            raise
        self.history.ok(token, self.env.now, value, self._zxid())
        return value

    def mark(self, op: str, key: str, arg: Any, gen):
        """Record a recipe-level operation wrapping generator ``gen``."""
        return self._record(op, key, arg, gen)

    # -- CoordClient surface (all delegated + recorded) --------------------

    def create(self, object_id: str, data: bytes = b""):
        return self._record("create", object_id, data,
                            self.inner.create(object_id, data))

    def delete(self, object_id: str):
        return self._record("delete", object_id, None,
                            self.inner.delete(object_id))

    def read(self, object_id: str):
        return self._record("read", object_id, None,
                            self.inner.read(object_id))

    def update(self, object_id: str, data: bytes):
        return self._record("update", object_id, data,
                            self.inner.update(object_id, data))

    def cas(self, object_id: str, expected: bytes, new: bytes):
        return self._record("cas", object_id, (expected, new),
                            self.inner.cas(object_id, expected, new))

    def sub_objects(self, object_id: str, with_data: bool = True):
        return self._record("sub_objects", object_id, None,
                            self.inner.sub_objects(object_id, with_data))

    def block(self, object_id: str):
        return self._record("block", object_id, None,
                            self.inner.block(object_id))

    def monitor(self, object_id: str, data: bytes = b""):
        return self._record("monitor", object_id, data,
                            self.inner.monitor(object_id, data))

    def wait_deletion(self, object_id: str):
        return self._record("wait_deletion", object_id, None,
                            self.inner.wait_deletion(object_id))

    def register_extension(self, name: str, source: str):
        return self._record("register_extension", name, None,
                            self.inner.register_extension(name, source))

    def acknowledge_extension(self, name: str):
        return self._record("acknowledge_extension", name, None,
                            self.inner.acknowledge_extension(name))

    def __getattr__(self, name: str):
        # Adapter extras (ensure_liveness, zk, ds, ...) pass through.
        return getattr(self.inner, name)
