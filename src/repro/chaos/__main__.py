"""Replay one chaos run from the command line.

The repro line printed by a failing test lands here::

    PYTHONPATH=src python -m repro.chaos --system ezk --recipe queue --seed 17

Exit status 0 when the checker passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys

from ..bench.systems import SYSTEMS
from ..obs import ObsConfig
from .explorer import RECIPES, run_chaos
from .storms import SESSION_SCENARIOS, run_session_chaos


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.chaos", description="replay one seeded chaos run")
    parser.add_argument("--system", required=True, choices=SYSTEMS)
    parser.add_argument("--recipe", required=True,
                        choices=RECIPES + SESSION_SCENARIOS)
    parser.add_argument("--seed", required=True, type=int)
    parser.add_argument("--kernel", choices=("zab", "pbft", "raft"),
                        default=None,
                        help="consensus kernel (default: family default — "
                             "zab for zk/ezk, pbft for ds/eds)")
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--ops", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--history", action="store_true",
                        help="dump the full canonical history")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a causal trace of the replay as JSONL "
                             "(render with: python -m repro.obs PATH)")
    args = parser.parse_args(argv)

    obs_cfg = ObsConfig() if args.trace else None
    if args.recipe in SESSION_SCENARIOS:
        run = run_session_chaos(args.system, args.recipe, args.seed,
                                kernel=args.kernel, obs=obs_cfg)
    else:
        run = run_chaos(args.system, args.recipe, args.seed,
                        n_clients=args.clients, ops_per_client=args.ops,
                        rounds=args.rounds, kernel=args.kernel, obs=obs_cfg)
    if obs_cfg is not None and obs_cfg.runtime is not None:
        with open(args.trace, "w", encoding="utf-8") as fh:
            fh.write(obs_cfg.runtime.tracer.dump_jsonl())
        print(f"# trace written to {args.trace}")
    print(f"# {run.repro}")
    print("-- schedule --")
    print(run.schedule.describe())
    print("-- nemesis --")
    for line in run.nemesis_log:
        print(line)
    if args.history:
        print("-- history --")
        print(run.history.canonical())
    print("-- verdict --")
    print("PASS" if run.ok else f"FAIL: {run.result.reason}")
    return 0 if run.ok else 1


if __name__ == "__main__":
    sys.exit(main())
