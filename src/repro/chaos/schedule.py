"""Declarative fault schedules: the grammar the nemesis executes.

A :class:`Schedule` is a sorted list of :class:`FaultAction` items plus
a quiesce time at which every outstanding fault is healed. Schedules
are pure data — deterministic to build, trivial to print, and
replayable: :func:`random_schedule` derives everything from a string-
seeded RNG, so the same seed always yields byte-identical faults.

Action kinds (``target`` picks the victim; durations are self-healing
windows):

==================  =====================================================
``crash_leader``    crash the current leader/primary, restart after
                    ``duration_ms``
``crash_follower``  same for a non-leader voter (rotates per schedule)
``partition_leader``  isolate the leader from all other replicas
``partition_follower``  isolate one follower
``partition_oneway``  asymmetric: follower hears the others, its own
                    messages are dropped
``drop_burst``      drop replication messages with ``probability``
``delay_burst``     add ``extra_ms`` to replication message latency
``kill_client``     abrupt client death (session-expiry paths); never
                    generated randomly, only in hand-written schedules
``session_storm``   spawn ``count`` short-lived sessions over the
                    window (half close gracefully, half go silent and
                    probe the expiry fence); zk family only
``watch_storm``     spawn ``count`` watchers of one hot path plus a
                    writer hammering it over the window; zk family only
``lease_storm``     spawn ``count`` lease-caching readers of one hot
                    path plus writers mutating it over the window,
                    recording (ack, read) observations for the
                    stale-read checker; zk family only
==================  =====================================================
"""

from __future__ import annotations

import dataclasses
import random
from typing import Tuple

__all__ = ["FaultAction", "Schedule", "random_schedule",
           "random_storm_schedule", "KINDS"]

KINDS = ("crash_leader", "crash_follower", "partition_leader",
         "partition_follower", "partition_oneway", "drop_burst",
         "delay_burst", "kill_client", "session_storm", "watch_storm",
         "lease_storm")

#: storm kinds carry a client ``count`` and may overlap a classic fault.
STORM_KINDS = ("session_storm", "watch_storm", "lease_storm")


@dataclasses.dataclass(frozen=True)
class FaultAction:
    at_ms: float
    kind: str
    target: str = ""            # node id for kill_client; else advisory
    duration_ms: float = 0.0    # fault window; 0 = permanent until quiesce
    probability: float = 1.0    # drop_burst
    extra_ms: float = 0.0       # delay_burst
    count: int = 0              # storm kinds: clients to spawn

    def describe(self) -> str:
        parts = [f"t={self.at_ms:g}ms {self.kind}"]
        if self.target:
            parts.append(f"target={self.target}")
        if self.duration_ms:
            parts.append(f"for={self.duration_ms:g}ms")
        if self.kind == "drop_burst":
            parts.append(f"p={self.probability:g}")
        if self.kind == "delay_burst":
            parts.append(f"+{self.extra_ms:g}ms")
        if self.kind in STORM_KINDS:
            parts.append(f"n={self.count}")
        return " ".join(parts)


@dataclasses.dataclass(frozen=True)
class Schedule:
    actions: Tuple[FaultAction, ...]
    quiesce_ms: float

    def describe(self) -> str:
        lines = [action.describe() for action in self.actions]
        lines.append(f"t={self.quiesce_ms:g}ms quiesce (heal everything)")
        return "\n".join(lines)


def random_schedule(seed: int) -> Schedule:
    """1–3 serialized fault windows drawn from a string-seeded RNG.

    Windows never overlap (each action's window closes before the next
    opens), so a single fault domain is stressed at a time while the
    service still sees crash→partition→burst compositions across the
    run. Times are rounded to µs so ``describe()`` output is stable.
    """
    rng = random.Random(f"chaos-schedule-{seed}")
    kinds = ("crash_leader", "crash_follower", "partition_leader",
             "partition_follower", "partition_oneway", "drop_burst",
             "delay_burst")
    n_actions = rng.randint(1, 3)
    actions = []
    t = rng.uniform(150.0, 500.0)
    for _ in range(n_actions):
        kind = rng.choice(kinds)
        duration = rng.uniform(400.0, 1600.0)
        action = FaultAction(
            at_ms=round(t, 3),
            kind=kind,
            duration_ms=round(duration, 3),
            probability=round(rng.uniform(0.05, 0.25), 3),
            extra_ms=round(rng.uniform(5.0, 40.0), 3),
        )
        actions.append(action)
        t += duration + rng.uniform(400.0, 1200.0)
    return Schedule(tuple(actions), quiesce_ms=round(t + 500.0, 3))


def random_storm_schedule(seed: int, scenario: str) -> Schedule:
    """1–2 storm windows, most overlapped by one classic fault each.

    ``scenario`` is ``"churn"`` (session storms: connect/expire churn),
    ``"watch_storm"`` (watch fan-out storms) or ``"lease_storm"``
    (lease-caching readers racing writers). Storm windows stay
    serialized with each other; the optional classic fault fires
    *inside* its storm window (starting in the first half, ending by
    the window's close), because reconnect/fencing under a concurrently
    crashing or partitioned ensemble is exactly what the session
    machinery must survive. Seeded independently of
    :func:`random_schedule` so existing schedules stay byte-identical.
    """
    if scenario == "churn":
        storm_kind, lo, hi = "session_storm", 4, 10
    elif scenario == "watch_storm":
        storm_kind, lo, hi = "watch_storm", 5, 12
    elif scenario == "lease_storm":
        storm_kind, lo, hi = "lease_storm", 4, 10
    else:
        raise ValueError(f"unknown storm scenario {scenario!r}")
    rng = random.Random(f"chaos-storm-{scenario}-{seed}")
    classic = ("crash_leader", "crash_follower", "partition_leader",
               "partition_follower", "partition_oneway", "drop_burst",
               "delay_burst")
    actions = []
    t = rng.uniform(150.0, 500.0)
    for _ in range(rng.randint(1, 2)):
        duration = rng.uniform(600.0, 1500.0)
        actions.append(FaultAction(
            at_ms=round(t, 3), kind=storm_kind,
            duration_ms=round(duration, 3), count=rng.randint(lo, hi)))
        if rng.random() < 0.7:
            fault_at = t + rng.uniform(0.0, duration / 2.0)
            fault_len = rng.uniform(200.0, duration / 2.0)
            actions.append(FaultAction(
                at_ms=round(fault_at, 3), kind=rng.choice(classic),
                duration_ms=round(fault_len, 3),
                probability=round(rng.uniform(0.05, 0.25), 3),
                extra_ms=round(rng.uniform(5.0, 40.0), 3)))
        t += duration + rng.uniform(400.0, 900.0)
    actions.sort(key=lambda a: a.at_ms)
    return Schedule(tuple(actions), quiesce_ms=round(t + 500.0, 3))
