"""Deterministic fault-schedule harness + history checkers.

The chaos harness closes the loop the benchmarks leave open: the
paper's extensions claim the *same* coordination semantics as the
traditional recipes, so this package injects seeded fault schedules
(crashes, partitions, message drop/delay bursts) into running
ensembles while recording every client operation, then checks the
histories — Wing & Gong linearizability for small ones, linear-time
recipe invariants for large ones. Every run is replayable from its
``(system, recipe, seed)`` triple alone::

    PYTHONPATH=src python -m repro.chaos --system ezk --recipe queue --seed 17
"""

from .checker import (CheckResult, CounterModel, RegisterModel,
                      check_barrier_history, check_counter_history,
                      check_election_history, check_lease_reads,
                      check_linearizable, check_queue_history,
                      check_session_log)
from .explorer import RECIPES, ChaosRun, repro_line, run_chaos
from .history import History, HistoryEvent, OpRecord, RecordingCoord
from .nemesis import Nemesis
from .schedule import (FaultAction, Schedule, random_schedule,
                       random_storm_schedule)
from .storms import SESSION_SCENARIOS, run_session_chaos

__all__ = [
    "CheckResult",
    "RegisterModel",
    "CounterModel",
    "check_linearizable",
    "check_counter_history",
    "check_queue_history",
    "check_barrier_history",
    "check_election_history",
    "History",
    "HistoryEvent",
    "OpRecord",
    "RecordingCoord",
    "Nemesis",
    "FaultAction",
    "Schedule",
    "random_schedule",
    "random_storm_schedule",
    "RECIPES",
    "SESSION_SCENARIOS",
    "ChaosRun",
    "run_chaos",
    "run_session_chaos",
    "check_session_log",
    "check_lease_reads",
    "repro_line",
]
