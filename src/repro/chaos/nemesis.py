"""The nemesis: applies a fault schedule to a running ensemble.

One driver covers both service families through small adapters that
answer three questions — who are the replicas, who currently leads,
and which message types carry replication traffic. Every action is
self-healing (its window closes before the next opens, by schedule
construction) and the quiesce step restores full health: every crashed
node restarts, partitions heal, and traffic rules clear, so the
post-run checkers observe a converged system.

Determinism: the nemesis introduces no randomness of its own. Victim
selection is a deterministic function of the schedule (followers
rotate in id order), and drop bursts draw from the *network's* seeded
RNG, so a (seed, schedule) pair replays byte-identically.
"""

from __future__ import annotations

from typing import List, Optional

from ..depspace import DsEnsemble
from ..zk import ZkEnsemble
from .schedule import FaultAction, Schedule

__all__ = ["Nemesis"]


class _ZkAdapter:
    """ZooKeeper family: voters lead; observers are never crashed (the
    harness crashes voters to exercise elections; observer faults are
    covered by partitions, which pick from all nodes)."""

    #: payload classes carrying replication traffic (drop/delay bursts),
    #: per consensus kernel. For Raft, AppendEntries doubles as
    #: heartbeat/backfill and InstallSnapshot as the full-sync analog.
    _MSG_TYPES = {
        "zab": ("Proposal", "BatchProposal", "Commit",
                "Heartbeat", "NewLeader"),
        "raft": ("AppendEntries", "InstallSnapshot"),
    }

    def __init__(self, ensemble: ZkEnsemble):
        self.ensemble = ensemble
        kernel = getattr(ensemble.config, "kernel", "zab")
        self.replication_msg_types = self._MSG_TYPES[kernel]

    @property
    def voter_ids(self) -> List[str]:
        return list(self.ensemble.replica_ids)

    @property
    def node_ids(self) -> List[str]:
        return list(self.ensemble.all_ids)

    def leader_id(self) -> str:
        leader = self.ensemble.leader
        if leader is not None:
            return leader.node_id
        # Mid-election: treat the first live voter as the victim — it
        # is the likeliest next winner and keeps selection deterministic.
        for node_id in self.ensemble.replica_ids:
            if self.ensemble.server(node_id)._alive:
                return node_id
        return self.ensemble.replica_ids[0]

    def crash(self, node_id: str) -> None:
        self.ensemble.server(node_id).crash()

    def recover(self, node_id: str) -> None:
        self.ensemble.server(node_id).recover()

    def is_alive(self, node_id: str) -> bool:
        return self.ensemble.server(node_id)._alive


class _DsAdapter:
    """DepSpace family: all 3f+1 replicas vote; the primary 'leads'."""

    _MSG_TYPES = {
        "pbft": ("PrePrepare", "Prepare", "Commit"),
        "raft": ("AppendEntries", "InstallSnapshot"),
    }

    def __init__(self, ensemble: DsEnsemble):
        self.ensemble = ensemble
        kernel = getattr(ensemble.config, "kernel", "pbft")
        self.replication_msg_types = self._MSG_TYPES[kernel]

    @property
    def voter_ids(self) -> List[str]:
        return list(self.ensemble.replica_ids)

    @property
    def node_ids(self) -> List[str]:
        return list(self.ensemble.replica_ids)

    def leader_id(self) -> str:
        return self.ensemble.primary.node_id

    def crash(self, node_id: str) -> None:
        self.ensemble.replica(node_id).crash()

    def recover(self, node_id: str) -> None:
        self.ensemble.replica(node_id).recover()

    def is_alive(self, node_id: str) -> bool:
        return self.ensemble.replica(node_id)._alive


class Nemesis:
    """Executes a :class:`~repro.chaos.schedule.Schedule` at sim time.

    ``clients`` (raw client objects with a ``kill()`` method) are only
    needed for ``kill_client`` actions.
    """

    def __init__(self, ensemble, schedule: Schedule,
                 clients: Optional[list] = None):
        if isinstance(ensemble, ZkEnsemble):
            self.adapter = _ZkAdapter(ensemble)
        elif isinstance(ensemble, DsEnsemble):
            self.adapter = _DsAdapter(ensemble)
        else:
            raise TypeError(f"unsupported ensemble {type(ensemble)!r}")
        self.ensemble = ensemble
        self.env = ensemble.env
        self.net = ensemble.net
        self.schedule = schedule
        self.clients = list(clients or [])
        #: human-readable record of what was actually done (repro aid).
        self.log: List[str] = []
        self._follower_rotation = 0
        self._active_rules: List[int] = []
        #: storm bookkeeping: spawned client processes (the driver
        #: awaits them before settling) and counters the session
        #: checkers consume (see repro.chaos.storms).
        self.storm_procs: List[object] = []
        self.storm_stats: dict = {
            "churn_connects": 0, "churn_closed": 0, "churn_abandoned": 0,
            "zombie_fenced": 0, "zombie_applied": 0, "zombie_lost": 0,
            "watch_notifications": 0, "watchers_served": 0,
            "lease_reads": 0, "lease_writes": 0, "lease_cache_hits": 0,
            "lease_events": [],
        }
        self._storm_index = 0

    def start(self) -> None:
        """Arm every schedule action plus the final quiesce."""
        for action in self.schedule.actions:
            self.env.defer(max(0.0, action.at_ms - self.env.now),
                           self._fire, action)
        self.env.defer(max(0.0, self.schedule.quiesce_ms - self.env.now),
                       self._quiesce)

    # -- victim selection --------------------------------------------------

    def _pick_follower(self) -> str:
        """Deterministic rotation over live non-leader voters."""
        leader = self.adapter.leader_id()
        voters = [v for v in self.adapter.voter_ids if v != leader]
        candidates = [v for v in voters if self.adapter.is_alive(v)] or voters
        victim = candidates[self._follower_rotation % len(candidates)]
        self._follower_rotation += 1
        return victim

    def _note(self, text: str) -> None:
        self.log.append(f"t={self.env.now:g}ms {text}")

    # -- action execution --------------------------------------------------

    def _fire(self, action: FaultAction) -> None:
        handler = getattr(self, f"_do_{action.kind}", None)
        if handler is None:
            raise ValueError(f"unknown fault kind {action.kind!r}")
        handler(action)

    def _crash(self, node_id: str, duration_ms: float) -> None:
        # Quorum preservation: never hold two voters down at once. The
        # schedule serializes windows, but a restart callback may still
        # be pending when the next crash fires right at a boundary.
        for other in self.adapter.voter_ids:
            if other != node_id and not self.adapter.is_alive(other):
                self.adapter.recover(other)
                self._note(f"recover {other} (quorum guard)")
        if not self.adapter.is_alive(node_id):
            return
        self.adapter.crash(node_id)
        self._note(f"crash {node_id}")
        if duration_ms > 0:
            self.env.defer(duration_ms, self._restart, node_id)

    def _restart(self, node_id: str) -> None:
        if not self.adapter.is_alive(node_id):
            self.adapter.recover(node_id)
            self._note(f"restart {node_id}")

    def _do_crash_leader(self, action: FaultAction) -> None:
        self._crash(self.adapter.leader_id(), action.duration_ms)

    def _do_crash_follower(self, action: FaultAction) -> None:
        self._crash(self._pick_follower(), action.duration_ms)

    def _partition(self, node_id: str, duration_ms: float,
                   oneway: bool) -> None:
        others = [n for n in self.adapter.node_ids if n != node_id]
        if oneway:
            # The victim still hears the cluster; its own messages die.
            self.net.partition_oneway([node_id], others)
            self._note(f"partition-oneway {node_id} -> *")
        else:
            self.net.partition([node_id], others)
            self._note(f"partition {node_id} <-> *")
        if duration_ms > 0:
            self.env.defer(duration_ms, self._heal)

    def _heal(self) -> None:
        self.net.heal()
        self._note("heal")

    def _do_partition_leader(self, action: FaultAction) -> None:
        self._partition(self.adapter.leader_id(), action.duration_ms,
                        oneway=False)

    def _do_partition_follower(self, action: FaultAction) -> None:
        self._partition(self._pick_follower(), action.duration_ms,
                        oneway=False)

    def _do_partition_oneway(self, action: FaultAction) -> None:
        self._partition(self._pick_follower(), action.duration_ms,
                        oneway=True)

    def _burst(self, action: FaultAction, kind: str) -> None:
        nodes = frozenset(self.adapter.node_ids)
        types = self.adapter.replication_msg_types
        if kind == "drop":
            rule = self.net.add_drop_rule(probability=action.probability,
                                          msg_types=types, src=nodes,
                                          dst=nodes)
            self._note(f"drop-burst p={action.probability:g} on {types}")
        else:
            rule = self.net.add_delay_rule(action.extra_ms, msg_types=types,
                                           src=nodes, dst=nodes)
            self._note(f"delay-burst +{action.extra_ms:g}ms on {types}")
        self._active_rules.append(rule)
        if action.duration_ms > 0:
            self.env.defer(action.duration_ms, self._end_burst, rule)

    def _end_burst(self, rule: int) -> None:
        self.net.remove_rule(rule)
        if rule in self._active_rules:
            self._active_rules.remove(rule)
        self._note("burst over")

    def _do_drop_burst(self, action: FaultAction) -> None:
        self._burst(action, "drop")

    def _do_delay_burst(self, action: FaultAction) -> None:
        self._burst(action, "delay")

    def _do_session_storm(self, action: FaultAction) -> None:
        self._spawn_storm(action, "session")

    def _do_watch_storm(self, action: FaultAction) -> None:
        self._spawn_storm(action, "watch")

    def _do_lease_storm(self, action: FaultAction) -> None:
        self._spawn_storm(action, "lease")

    def _spawn_storm(self, action: FaultAction, flavor: str) -> None:
        # Late import: storms drive Nemesis-run schedules, so the
        # modules reference each other.
        from .storms import (spawn_lease_storm, spawn_session_storm,
                             spawn_watch_storm)
        if not isinstance(self.adapter, _ZkAdapter):
            raise ValueError(f"{action.kind} requires the zk family")
        storm_id = self._storm_index
        self._storm_index += 1
        spawn = {"session": spawn_session_storm,
                 "watch": spawn_watch_storm,
                 "lease": spawn_lease_storm}[flavor]
        self.storm_procs.extend(spawn(self, action, storm_id))
        self._note(f"{action.kind} #{storm_id} n={action.count} "
                   f"for={action.duration_ms:g}ms")

    def _do_kill_client(self, action: FaultAction) -> None:
        for client in self.clients:
            if getattr(client, "node_id", "") == action.target:
                client.kill()
                self._note(f"kill client {action.target}")
                return
        raise ValueError(f"kill_client: no client {action.target!r}")

    # -- quiesce -----------------------------------------------------------

    def _quiesce(self) -> None:
        self.net.heal()
        self.net.clear_rules()
        self._active_rules.clear()
        for node_id in self.adapter.node_ids:
            if not self.adapter.is_alive(node_id):
                self.adapter.recover(node_id)
                self._note(f"restart {node_id} (quiesce)")
        self._note("quiesce")
